"""Unit tests for the two-qubit dependency DAG."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.exceptions import SchedulingError


def serial_chain() -> QuantumCircuit:
    """cx(0,1); cx(1,2); cx(2,3) — a strictly serial dependency chain."""
    circuit = QuantumCircuit(4)
    circuit.cx(0, 1).cx(1, 2).cx(2, 3)
    return circuit


def parallel_pairs() -> QuantumCircuit:
    """cx(0,1); cx(2,3) — two independent gates."""
    circuit = QuantumCircuit(4)
    circuit.cx(0, 1).cx(2, 3)
    return circuit


class TestConstruction:
    def test_only_two_qubit_gates_become_nodes(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.3, 1)
        dag = DependencyDAG(circuit)
        assert dag.num_nodes == 1

    def test_serial_frontier_has_one_gate(self):
        dag = DependencyDAG(serial_chain())
        assert [node.index for node in dag.frontier()] == [0]

    def test_parallel_frontier_has_all_independent_gates(self):
        dag = DependencyDAG(parallel_pairs())
        assert len(dag.frontier()) == 2

    def test_empty_circuit_is_done(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        dag = DependencyDAG(circuit)
        assert dag.is_done
        assert dag.frontier() == []


class TestExecution:
    def test_execute_promotes_successors(self):
        dag = DependencyDAG(serial_chain())
        ready = dag.execute(0)
        assert [node.index for node in ready] == [1]
        assert [node.index for node in dag.frontier()] == [1]

    def test_execute_counts_down(self):
        dag = DependencyDAG(serial_chain())
        assert dag.num_remaining == 3
        dag.execute(0)
        dag.execute(1)
        dag.execute(2)
        assert dag.is_done

    def test_execute_non_frontier_raises(self):
        dag = DependencyDAG(serial_chain())
        with pytest.raises(SchedulingError):
            dag.execute(2)

    def test_execute_twice_raises(self):
        dag = DependencyDAG(serial_chain())
        dag.execute(0)
        with pytest.raises(SchedulingError):
            dag.execute(0)

    def test_execute_unknown_index_raises(self):
        dag = DependencyDAG(serial_chain())
        with pytest.raises(SchedulingError):
            dag.execute(99)


class TestLookahead:
    def test_lookahead_depth_one_is_frontier(self):
        dag = DependencyDAG(serial_chain())
        nodes = dag.lookahead(1)
        assert [n.index for n in nodes] == [0]

    def test_lookahead_depth_two(self):
        dag = DependencyDAG(serial_chain())
        nodes = dag.lookahead(2)
        assert [n.index for n in nodes] == [0, 1]

    def test_lookahead_skip_frontier(self):
        dag = DependencyDAG(serial_chain())
        nodes = dag.lookahead(2, skip_frontier=True)
        assert [n.index for n in nodes] == [1, 2]

    def test_lookahead_zero_depth_is_empty(self):
        dag = DependencyDAG(serial_chain())
        assert dag.lookahead(0) == []

    def test_gates_in_first_layers(self):
        dag = DependencyDAG(serial_chain())
        gates = dag.gates_in_first_layers(2)
        assert len(gates) == 2
        assert gates[0].qubits == (0, 1)


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2).cx(0, 3)
        dag = DependencyDAG(circuit)
        order = [node.index for node in dag.topological_order()]
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(2)
        assert order.index(2) < order.index(3)
        assert sorted(order) == [0, 1, 2, 3]

    def test_order_covers_all_nodes_after_partial_execution(self):
        dag = DependencyDAG(serial_chain())
        dag.execute(0)
        assert len(dag.topological_order()) == 3
