"""Unit tests for the OpenQASM 2.0 import/export helpers."""

from __future__ import annotations

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import qft_circuit
from repro.circuit.qasm import circuit_to_qasm, qasm_to_circuit
from repro.exceptions import CircuitError


class TestExport:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        text = circuit_to_qasm(circuit)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_two_qubit_gate_and_params(self):
        circuit = QuantumCircuit(2)
        circuit.cp(0.5, 0, 1)
        text = circuit_to_qasm(circuit)
        assert "cp(0.5) q[0],q[1];" in text

    def test_measure_gates_are_skipped(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        text = circuit_to_qasm(circuit)
        assert "measure" not in text


class TestImport:
    def test_round_trip_preserves_structure(self):
        original = qft_circuit(5)
        text = circuit_to_qasm(original)
        parsed = qasm_to_circuit(text)
        assert parsed.num_qubits == original.num_qubits
        assert parsed.num_two_qubit_gates == original.num_two_qubit_gates
        assert [g.name for g in parsed] == [
            g.name for g in original if g.name != "measure"
        ]

    def test_pi_expressions(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\n'
        circuit = qasm_to_circuit(text)
        assert circuit[0].params[0] == pytest.approx(math.pi / 2)

    def test_comments_and_blank_lines_ignored(self):
        text = "// a comment\nOPENQASM 2.0;\n\nqreg q[2];\ncx q[0], q[1]; // inline\n"
        circuit = qasm_to_circuit(text)
        assert circuit.num_two_qubit_gates == 1

    def test_measure_parsed(self):
        text = "qreg q[2];\ncreg c[2];\nmeasure q[1] -> c[1];\n"
        circuit = qasm_to_circuit(text)
        assert circuit[0].name == "measure"
        assert circuit[0].qubits == (1,)

    def test_u1_alias_maps_to_rz(self):
        text = "qreg q[1];\nu1(0.3) q[0];\n"
        circuit = qasm_to_circuit(text)
        assert circuit[0].name == "rz"

    def test_missing_register_inferred_from_gates(self):
        text = "h q[4];\n"
        circuit = qasm_to_circuit(text)
        assert circuit.num_qubits == 5

    def test_duplicate_register_rejected(self):
        text = "qreg q[2];\nqreg r[2];\n"
        with pytest.raises(CircuitError):
            qasm_to_circuit(text)

    def test_bad_parameter_expression_rejected(self):
        text = "qreg q[1];\nrz(__import__) q[0];\n"
        with pytest.raises(CircuitError):
            qasm_to_circuit(text)

    def test_empty_text_rejected(self):
        with pytest.raises(CircuitError):
            qasm_to_circuit("OPENQASM 2.0;\n")
