"""Unit tests for the QuantumCircuit container."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import CircuitError


class TestConstruction:
    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_validates_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(0, 2)

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.5, 2).swap(1, 2)
        assert len(circuit) == 4
        assert circuit[0].name == "h"
        assert circuit[-1].name == "swap"

    def test_extend_and_iter(self):
        circuit = QuantumCircuit(2)
        circuit.extend([Gate("h", (0,)), Gate("cx", (0, 1))])
        names = [g.name for g in circuit]
        assert names == ["h", "cx"]

    def test_equality(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        assert a == b
        b.h(0)
        assert a != b


class TestQueries:
    def test_gate_counts(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).rz(0.1, 2)
        assert circuit.num_two_qubit_gates == 2
        assert circuit.num_single_qubit_gates == 2
        assert len(circuit.two_qubit_gates()) == 2

    def test_count_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1)
        assert circuit.count_ops() == {"h": 2, "cx": 1}

    def test_used_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 3)
        assert circuit.used_qubits() == {0, 3}

    def test_depth_counts_longest_chain(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        assert circuit.depth() == 3

    def test_depth_parallel_gates_share_level(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)
        assert circuit.depth() == 1

    def test_depth_two_qubit_only_ignores_singles(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).cx(0, 1)
        assert circuit.depth(two_qubit_only=True) == 1
        assert circuit.depth() == 3

    def test_interaction_graph_weights(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 1).cx(1, 2)
        graph = circuit.interaction_graph()
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1
        assert not graph.has_edge(0, 2)

    def test_two_qubit_layers(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        layers = circuit.two_qubit_layers()
        assert len(layers) == 2
        assert len(layers[0]) == 2
        assert len(layers[1]) == 1


class TestTransforms:
    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        clone = circuit.copy()
        clone.h(0)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        wider = circuit.remap_qubits({0: 3, 1: 0}, num_qubits=4)
        assert wider.gates[0].qubits == (3, 0)
        assert wider.num_qubits == 4

    def test_compose(self):
        first = QuantumCircuit(3)
        first.h(0)
        second = QuantumCircuit(2)
        second.cx(0, 1)
        combined = first.compose(second)
        assert [g.name for g in combined] == ["h", "cx"]

    def test_compose_rejects_wider_circuit(self):
        narrow = QuantumCircuit(2)
        wide = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            narrow.compose(wide)
