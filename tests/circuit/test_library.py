"""Unit tests for the benchmark circuit generators (Table 2)."""

from __future__ import annotations

import pytest

from repro.circuit.library import (
    PAPER_BENCHMARKS,
    adder_two_qubit_gate_count,
    alt_two_qubit_gate_count,
    alternating_layered_ansatz,
    benchmark_spec,
    bernstein_vazirani_circuit,
    build_benchmark,
    build_family,
    cuccaro_adder_circuit,
    ghz_circuit,
    heisenberg_circuit,
    heisenberg_two_qubit_gate_count,
    paper_benchmark_suite,
    qaoa_circuit,
    qaoa_two_qubit_gate_count,
    qft_circuit,
    qft_two_qubit_gate_count,
    random_circuit,
    ring_edges,
)
from repro.exceptions import CircuitError


class TestQFT:
    def test_gate_count_matches_paper_24(self):
        assert qft_circuit(24).num_two_qubit_gates == 552

    def test_gate_count_matches_paper_64(self):
        assert qft_two_qubit_gate_count(64) == 4032

    def test_closed_form_matches_generator(self):
        for n in (2, 5, 9):
            assert qft_circuit(n).num_two_qubit_gates == qft_two_qubit_gate_count(n)

    def test_undeciomposed_uses_cp(self):
        circuit = qft_circuit(4, decompose=False)
        assert "cp" in circuit.count_ops()
        assert circuit.num_two_qubit_gates == qft_two_qubit_gate_count(4, decompose=False)

    def test_include_swaps_adds_reversal_network(self):
        with_swaps = qft_circuit(6, include_swaps=True)
        without = qft_circuit(6)
        assert with_swaps.num_two_qubit_gates == without.num_two_qubit_gates + 3

    def test_every_qubit_used(self):
        assert qft_circuit(7).used_qubits() == set(range(7))

    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            qft_circuit(0)


class TestAdder:
    def test_width_is_2n_plus_2(self):
        assert cuccaro_adder_circuit(32).num_qubits == 66

    def test_gate_count_closed_form(self):
        for n in (1, 4, 8):
            circuit = cuccaro_adder_circuit(n)
            assert circuit.num_two_qubit_gates == adder_two_qubit_gate_count(n)

    def test_paper_scale_count_is_close_to_reported(self):
        # Paper reports 545 with its Toffoli expansion; ours gives 513.
        count = cuccaro_adder_circuit(32).num_two_qubit_gates
        assert 500 <= count <= 560

    def test_undecomposed_toffoli_kept_as_ccx(self):
        circuit = cuccaro_adder_circuit(2, decompose_toffoli=False)
        assert "ccx" in circuit.count_ops()

    def test_communication_is_short_distance(self):
        circuit = cuccaro_adder_circuit(6)
        max_span = max(abs(g.qubits[0] - g.qubits[1]) for g in circuit.two_qubit_gates())
        assert max_span <= 3

    def test_rejects_zero_bits(self):
        with pytest.raises(CircuitError):
            cuccaro_adder_circuit(0)


class TestBV:
    def test_width_and_gate_count(self):
        circuit = bernstein_vazirani_circuit(64)
        assert circuit.num_qubits == 65
        assert circuit.num_two_qubit_gates == 64

    def test_secret_controls_cx_count(self):
        circuit = bernstein_vazirani_circuit(6, secret=[1, 0, 1, 0, 0, 1])
        assert circuit.num_two_qubit_gates == 3

    def test_all_cx_target_ancilla(self):
        circuit = bernstein_vazirani_circuit(5)
        targets = {g.qubits[1] for g in circuit.two_qubit_gates()}
        assert targets == {5}

    def test_bad_secret_length_rejected(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit(4, secret=[1, 0])

    def test_non_binary_secret_rejected(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit(2, secret=[1, 2])


class TestQAOA:
    def test_default_ring_gate_count(self):
        circuit = qaoa_circuit(16, layers=4)
        assert circuit.num_two_qubit_gates == qaoa_two_qubit_gate_count(16, layers=4)

    def test_nearest_neighbour_communication(self):
        circuit = qaoa_circuit(10, layers=1)
        spans = {
            min(abs(a - b), 10 - abs(a - b))
            for a, b in (g.qubits for g in circuit.two_qubit_gates())
        }
        assert spans == {1}

    def test_custom_edges(self):
        circuit = qaoa_circuit(4, layers=2, edges=[(0, 2), (1, 3)])
        assert circuit.num_two_qubit_gates == 2 * 2 * 2

    def test_native_rzz_option(self):
        circuit = qaoa_circuit(6, layers=1, decompose_zz=False)
        assert "rzz" in circuit.count_ops()
        assert circuit.num_two_qubit_gates == 6

    def test_invalid_edge_rejected(self):
        with pytest.raises(CircuitError):
            qaoa_circuit(4, edges=[(0, 0)])
        with pytest.raises(CircuitError):
            qaoa_circuit(4, edges=[(0, 9)])

    def test_angle_length_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            qaoa_circuit(4, layers=2, gammas=[0.1], betas=[0.2, 0.3])

    def test_ring_edges_helper(self):
        assert len(ring_edges(8)) == 8
        with pytest.raises(CircuitError):
            ring_edges(2)


class TestALT:
    def test_gate_count_closed_form(self):
        for n, layers in ((8, 5), (9, 6), (12, 20)):
            circuit = alternating_layered_ansatz(n, layers=layers)
            assert circuit.num_two_qubit_gates == alt_two_qubit_gate_count(n, layers)

    def test_alternating_offsets(self):
        circuit = alternating_layered_ansatz(6, layers=2, rotations_per_layer=0)
        pairs = [g.qubits for g in circuit.two_qubit_gates()]
        assert (0, 1) in pairs and (1, 2) in pairs

    def test_cz_entangler(self):
        circuit = alternating_layered_ansatz(4, layers=1, entangler="cz")
        assert "cz" in circuit.count_ops()

    def test_invalid_entangler_rejected(self):
        with pytest.raises(CircuitError):
            alternating_layered_ansatz(4, entangler="cnotty")


class TestHeisenberg:
    def test_paper_gate_count(self):
        assert heisenberg_two_qubit_gate_count(48) == 13536

    def test_generator_matches_closed_form(self):
        circuit = heisenberg_circuit(6, trotter_steps=3)
        assert circuit.num_two_qubit_gates == heisenberg_two_qubit_gate_count(6, 3)

    def test_native_rotations_option(self):
        circuit = heisenberg_circuit(4, trotter_steps=1, decompose=False)
        ops = circuit.count_ops()
        assert {"rxx", "ryy", "rzz"} <= set(ops)

    def test_rejects_one_spin(self):
        with pytest.raises(CircuitError):
            heisenberg_circuit(1)


class TestMisc:
    def test_ghz_ladder_vs_star(self):
        ladder = ghz_circuit(6)
        star = ghz_circuit(6, ladder=False)
        assert ladder.num_two_qubit_gates == star.num_two_qubit_gates == 5
        assert {g.qubits[0] for g in star.two_qubit_gates()} == {0}

    def test_random_circuit_is_seeded(self):
        a = random_circuit(8, 20, seed=3)
        b = random_circuit(8, 20, seed=3)
        c = random_circuit(8, 20, seed=4)
        assert a == b
        assert a != c

    def test_random_circuit_two_qubit_budget(self):
        circuit = random_circuit(6, 15, seed=1)
        assert circuit.num_two_qubit_gates == 15

    def test_random_circuit_locality(self):
        circuit = random_circuit(20, 50, seed=2, locality=2)
        assert all(abs(a - b) <= 2 for a, b in (g.qubits for g in circuit.two_qubit_gates()))

    def test_random_circuit_validation(self):
        with pytest.raises(CircuitError):
            random_circuit(1, 5)
        with pytest.raises(CircuitError):
            random_circuit(4, -1)
        with pytest.raises(CircuitError):
            random_circuit(4, 5, locality=0)


class TestSuite:
    def test_build_benchmark_names(self):
        circuit = build_benchmark("qft_12")
        assert circuit.num_qubits == 12
        adder = build_benchmark("adder_4")
        assert adder.num_qubits == 10

    def test_build_family_unknown_rejected(self):
        with pytest.raises(CircuitError):
            build_family("grover", 8)

    def test_build_benchmark_bad_name_rejected(self):
        with pytest.raises(CircuitError):
            build_benchmark("qft")

    def test_paper_suite_metadata_consistent(self):
        for spec in PAPER_BENCHMARKS:
            assert benchmark_spec(spec.name) is spec
            circuit = build_benchmark(spec.name)
            assert circuit.num_qubits == spec.num_qubits

    def test_benchmark_spec_unknown_rejected(self):
        with pytest.raises(CircuitError):
            benchmark_spec("qft_128")

    @pytest.mark.slow
    def test_full_paper_suite_gate_counts_close(self):
        suite = paper_benchmark_suite()
        for spec in PAPER_BENCHMARKS:
            actual = suite[spec.name].num_two_qubit_gates
            # Within 10% of the paper's reported counts (decomposition details differ).
            assert abs(actual - spec.paper_two_qubit_gates) <= 0.1 * spec.paper_two_qubit_gates
