"""Unit tests for the Gate primitive."""

from __future__ import annotations

import pytest

from repro.circuit.gate import Gate
from repro.exceptions import CircuitError


class TestGateConstruction:
    def test_name_is_lowercased(self):
        assert Gate("CX", (0, 1)).name == "cx"

    def test_qubits_are_ints(self):
        gate = Gate("cx", (0.0, 1.0))  # type: ignore[arg-type]
        assert gate.qubits == (0, 1)
        assert all(isinstance(q, int) for q in gate.qubits)

    def test_params_are_floats(self):
        gate = Gate("rz", (0,), (1,))
        assert gate.params == (1.0,)

    def test_rejects_empty_qubits(self):
        with pytest.raises(CircuitError):
            Gate("h", ())

    def test_rejects_negative_qubits(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0, -1))

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(CircuitError):
            Gate("cx", (3, 3))

    def test_rejects_wrong_arity_single(self):
        with pytest.raises(CircuitError):
            Gate("h", (0, 1))

    def test_rejects_wrong_arity_two_qubit(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0,))

    def test_unknown_gate_name_any_arity(self):
        gate = Gate("ccx", (0, 1, 2))
        assert gate.num_qubits == 3


class TestGatePredicates:
    def test_single_qubit_flag(self):
        assert Gate("h", (0,)).is_single_qubit
        assert not Gate("h", (0,)).is_two_qubit

    def test_two_qubit_flag(self):
        gate = Gate("cx", (0, 1))
        assert gate.is_two_qubit
        assert not gate.is_single_qubit

    def test_swap_flag(self):
        assert Gate("swap", (0, 1)).is_swap
        assert not Gate("cx", (0, 1)).is_swap

    def test_symmetric_flag(self):
        assert Gate("cz", (0, 1)).is_symmetric
        assert Gate("rzz", (0, 1), (0.5,)).is_symmetric
        assert not Gate("cx", (0, 1)).is_symmetric

    def test_expected_arity_lookup(self):
        assert Gate.expected_arity("h") == 1
        assert Gate.expected_arity("CX") == 2
        assert Gate.expected_arity("ccx") is None


class TestGateTransforms:
    def test_on_returns_new_gate(self):
        gate = Gate("cx", (0, 1))
        moved = gate.on(4, 5)
        assert moved.qubits == (4, 5)
        assert gate.qubits == (0, 1)

    def test_remap(self):
        gate = Gate("cx", (0, 1))
        remapped = gate.remap({0: 7, 1: 2})
        assert remapped.qubits == (7, 2)

    def test_remap_missing_key_raises(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0, 1)).remap({0: 7})

    def test_iteration_and_str(self):
        gate = Gate("rz", (3,), (0.25,))
        assert list(gate) == [3]
        assert "rz" in str(gate)
        assert "3" in str(gate)

    def test_equality_and_hash(self):
        assert Gate("cx", (0, 1)) == Gate("cx", (0, 1))
        assert Gate("cx", (0, 1)) != Gate("cx", (1, 0))
        assert hash(Gate("cx", (0, 1))) == hash(Gate("CX", (0, 1)))
