"""Seeded random generators: QAOA-on-random-graph and random Clifford.

Both feed the scenario fuzzer, so the critical property is fingerprint
stability — rebuilding with the same arguments must produce the same
circuit, byte for byte, across processes and runs.
"""

from __future__ import annotations

import pytest

from repro.circuit.library import (
    CLIFFORD_1Q_GATES,
    CLIFFORD_2Q_GATES,
    erdos_renyi_edges,
    random_clifford,
    random_qaoa,
)
from repro.exceptions import CircuitError
from repro.runtime.jobs import circuit_fingerprint


class TestErdosRenyiEdges:
    def test_deterministic(self):
        assert erdos_renyi_edges(8, 0.4, seed=3) == erdos_renyi_edges(8, 0.4, seed=3)

    def test_never_empty(self):
        # Even with probability 0 the generator falls back to one edge.
        edges = erdos_renyi_edges(6, 0.0, seed=1)
        assert len(edges) == 1

    def test_edges_are_canonical(self):
        for a, b in erdos_renyi_edges(10, 0.7, seed=5):
            assert 0 <= a < b < 10


class TestRandomQaoa:
    def test_fingerprint_stable_across_rebuilds(self):
        first = random_qaoa(8, layers=2, edge_probability=0.4, seed=11)
        second = random_qaoa(8, layers=2, edge_probability=0.4, seed=11)
        assert circuit_fingerprint(first) == circuit_fingerprint(second)
        assert first.name == "random_qaoa_8_11"

    def test_seeds_diverge(self):
        a = random_qaoa(8, seed=0)
        b = random_qaoa(8, seed=1)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_structure(self):
        circuit = random_qaoa(6, layers=3, seed=2)
        assert circuit.num_qubits == 6
        assert circuit.num_two_qubit_gates > 0
        # Decomposed ZZ: only cx/rz/rx/h primitives appear.
        assert {g.name for g in circuit} <= {"h", "cx", "rz", "rx"}

    def test_undecomposed_uses_rzz(self):
        circuit = random_qaoa(6, layers=1, seed=2, decompose_zz=False)
        assert "rzz" in {g.name for g in circuit}

    def test_validation(self):
        with pytest.raises(CircuitError):
            random_qaoa(1)


class TestRandomClifford:
    def test_fingerprint_stable_across_rebuilds(self):
        first = random_clifford(9, depth=6, seed=11)
        second = random_clifford(9, depth=6, seed=11)
        assert circuit_fingerprint(first) == circuit_fingerprint(second)
        assert first.name == "random_clifford_9_11"

    def test_seeds_diverge(self):
        assert circuit_fingerprint(random_clifford(8, seed=0)) != circuit_fingerprint(
            random_clifford(8, seed=1)
        )

    def test_only_clifford_gates(self):
        circuit = random_clifford(10, depth=12, seed=4)
        allowed = set(CLIFFORD_1Q_GATES) | set(CLIFFORD_2Q_GATES)
        assert {g.name for g in circuit} <= allowed
        assert circuit.num_two_qubit_gates > 0

    def test_two_qubit_gates_touch_distinct_qubits(self):
        for gate in random_clifford(8, depth=10, seed=9):
            assert len(set(gate.qubits)) == len(gate.qubits)

    def test_validation(self):
        with pytest.raises(CircuitError):
            random_clifford(1)
        with pytest.raises(CircuitError):
            random_clifford(4, depth=0)
