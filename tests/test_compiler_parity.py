"""Cross-compiler parity suite.

Every compiler in the registry must compile the whole circuit-library
suite (one scaled-down instance per Table-2 family) on the paper's
``G-2x3`` topology, produce a schedule that passes the legality
verifier, execute exactly the program's two-qubit gates, and report
per-pass timings that account for (approximately) the whole compile
time.  This is the contract that lets backends be swapped freely in
sweeps, manifests and the CLI.
"""

from __future__ import annotations

import pytest

from repro.circuit.library.suite import benchmark_families, build_family
from repro.hardware.presets import paper_device
from repro.registry import make_pipeline, registered_names
from repro.schedule.verify import verify_schedule

#: One scaled-down circuit per Table-2 family (sizes keep the suite fast
#: while forcing inter-trap traffic on G-2x3 at capacity 4).
_SUITE_SIZES = {
    "adder": 5,  # 12 qubits
    "qaoa": 12,
    "alt": 12,
    "bv": 12,
    "qft": 12,
    "heisenberg": 12,
}


@pytest.fixture(scope="module")
def device():
    return paper_device("G-2x3", 4)


@pytest.fixture(scope="module")
def suite():
    assert set(_SUITE_SIZES) == set(benchmark_families())
    return {f: build_family(f, s) for f, s in _SUITE_SIZES.items()}


@pytest.mark.parametrize("compiler", sorted(registered_names()))
@pytest.mark.parametrize("family", sorted(_SUITE_SIZES))
class TestParity:
    def test_compiles_verifies_and_accounts_time(self, compiler, family, device, suite):
        circuit = suite[family]
        result = make_pipeline(compiler, device).compile(circuit)

        # The result is attributed to the right compiler and executes
        # exactly the program's two-qubit gates.
        assert result.compiler_name == compiler
        assert result.two_qubit_gate_count == circuit.num_two_qubit_gates
        assert result.statistics.executed_two_qubit_gates == circuit.num_two_qubit_gates

        # The schedule is physically legal from its own initial state.
        report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates

        # Per-pass timings account for (approximately) the whole compile.
        pass_total = sum(t.wall_time_s for t in result.pass_timings)
        assert 0 < pass_total <= result.compile_time_s
        assert result.compile_time_s - pass_total < 0.05 + 0.1 * result.compile_time_s
