"""Unit tests for the single compiler registry (repro.registry)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import compile_with
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncCompiler
from repro.exceptions import ReproError
from repro.pipeline import CompilerPipeline
from repro.registry import (
    available_compilers,
    compiler_spec,
    make_pipeline,
    normalize_compiler_name,
    register_compiler,
    registered_names,
    unregister_compiler,
)
from repro.runtime.api import run_batch
from repro.runtime.jobs import CompileJob


class TestBuiltins:
    def test_all_three_compilers_registered(self):
        assert registered_names() == ("dai", "murali", "s-sync")

    def test_aliases_resolve(self):
        assert normalize_compiler_name("This Work") == "s-sync"
        assert normalize_compiler_name("ssync") == "s-sync"
        assert normalize_compiler_name("S-SYNC") == "s-sync"
        assert normalize_compiler_name("Murali") == "murali"
        assert normalize_compiler_name("dai") == "dai"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ReproError, match="registered: dai, murali, s-sync"):
            normalize_compiler_name("qiskit")

    def test_specs_describe_capabilities(self):
        ssync = compiler_spec("s-sync")
        assert ssync.accepts_mapping and ssync.accepts_config
        assert ssync.default_mapping == "gathering"
        for baseline in ("murali", "dai"):
            spec = compiler_spec(baseline)
            assert not spec.accepts_mapping and not spec.accepts_config

    def test_make_pipeline_builds_every_compiler(self, grid_2x2):
        for spec in available_compilers():
            pipeline = make_pipeline(spec.name, grid_2x2)
            assert isinstance(pipeline, CompilerPipeline)
            assert pipeline.name == spec.name
            assert pipeline.pass_names()[0] == "initial-mapping"
            assert "routing" in pipeline.pass_names()
            assert pipeline.pass_names()[-1] == "metrics"

    def test_make_pipeline_with_verification(self, grid_2x2):
        pipeline = make_pipeline("s-sync", grid_2x2, verify=True)
        names = pipeline.pass_names()
        assert names.index("verify") == names.index("metrics") - 1

    def test_legacy_import_paths_still_resolve(self):
        """The deprecation shims in jobs/metrics forward to the registry."""
        from repro.analysis.metrics import normalize_compiler_name as from_metrics
        from repro.runtime.jobs import normalize_compiler_name as from_jobs

        assert from_jobs is normalize_compiler_name
        assert from_metrics is normalize_compiler_name


@pytest.fixture
def custom_compiler():
    """Register a throwaway backend (an S-SYNC pipeline under a new name)."""

    def factory(device, config=None):
        return CompilerPipeline(
            "custom-router", device, SSyncCompiler(device, config).pipeline().passes
        )

    spec = register_compiler(
        "custom-router",
        factory,
        aliases=("custom",),
        description="test backend",
        accepts_config=True,
    )
    yield spec
    unregister_compiler("custom-router")


class TestRegistration:
    def test_registered_name_and_alias_resolve(self, custom_compiler):
        assert normalize_compiler_name("Custom") == "custom-router"
        assert "custom-router" in registered_names()

    def test_unregister_removes_name_and_aliases(self, custom_compiler):
        unregister_compiler("custom")
        with pytest.raises(ReproError):
            normalize_compiler_name("custom-router")
        # Re-register so the fixture's cleanup unregister still succeeds.
        register_compiler("custom-router", custom_compiler.factory, aliases=("custom",))

    def test_duplicate_name_rejected_without_overwrite(self, custom_compiler):
        with pytest.raises(ReproError, match="already registered"):
            register_compiler("custom-router", custom_compiler.factory)

    def test_overwrite_replaces_spec(self, custom_compiler):
        replacement = register_compiler(
            "custom-router",
            custom_compiler.factory,
            description="replaced",
            overwrite=True,
        )
        assert compiler_spec("custom-router") is replacement
        with pytest.raises(ReproError):  # old alias dropped by the overwrite
            normalize_compiler_name("custom")
        register_compiler(
            "custom-router", custom_compiler.factory, aliases=("custom",), overwrite=True
        )

    def test_alias_collision_rejected(self, custom_compiler):
        with pytest.raises(ReproError, match="alias"):
            register_compiler("another", custom_compiler.factory, aliases=("ssync",))

    def test_builtin_alias_cannot_become_a_name(self, custom_compiler):
        with pytest.raises(ReproError, match="alias"):
            register_compiler("ssync", custom_compiler.factory)


class TestCustomCompilerEndToEnd:
    """A registered backend works through every entry point unchanged."""

    def test_compile_with_dispatches_custom_name(self, custom_compiler, grid_2x2):
        result = compile_with("custom", qft_circuit(10), grid_2x2)
        assert result.compiler_name == "custom-router"
        assert result.pass_timings  # pipeline profiling comes for free

    def test_batch_runtime_runs_custom_jobs(self, custom_compiler):
        job = CompileJob(circuit="qft_10", device="G-2x2", compiler="custom")
        batch = run_batch([job], workers=1)
        assert batch.records()[0]["compiler"] == "custom-router"

    def test_custom_fingerprint_differs_from_builtin(self, custom_compiler):
        builtin = CompileJob(circuit="qft_10", device="G-2x2")
        custom = CompileJob(circuit="qft_10", device="G-2x2", compiler="custom")
        assert builtin.compile_fingerprint() != custom.compile_fingerprint()

    def test_spawn_pool_falls_back_to_parent_for_custom_compilers(
        self, custom_compiler, monkeypatch
    ):
        """Spawned workers only know the built-ins; runtime-registered
        backends must compile in the parent process instead of crashing."""
        import multiprocessing

        from repro.runtime import pool as pool_module

        monkeypatch.setattr(
            pool_module, "_pool_context", lambda: multiprocessing.get_context("spawn")
        )
        jobs = [
            CompileJob(circuit="qft_10", device="G-2x2", compiler="custom"),
            CompileJob(circuit="qft_10", device="G-2x2", compiler="murali"),
            CompileJob(circuit="bv_12", device="G-2x2", compiler="s-sync"),
        ]
        batch = run_batch(jobs, workers=2)
        assert [r["compiler"] for r in batch.records()] == [
            "custom-router",
            "murali",
            "s-sync",
        ]

    def test_cli_lists_custom_compiler(self, custom_compiler, capsys):
        from repro.cli import main

        assert main(["compilers"]) == 0
        out = capsys.readouterr().out
        assert "custom-router" in out
        assert "s-sync" in out and "murali" in out and "dai" in out
