"""Unit tests for the initial mapping strategies (paper §3.4)."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import cuccaro_adder_circuit, qft_circuit, random_circuit
from repro.core.mapping import (
    EvenDividedMapper,
    GatheringMapper,
    MAPPER_REGISTRY,
    STAMapper,
    get_mapper,
)
from repro.core.mapping.intra_trap import (
    is_mountain_shaped,
    location_scores,
    mountain_arrange,
    mountain_order,
)
from repro.exceptions import MappingError
from repro.hardware.topologies import grid_device, linear_device


def all_mappers():
    return [EvenDividedMapper(), GatheringMapper(), STAMapper()]


class TestRegistry:
    def test_all_paper_strategies_registered(self):
        assert set(MAPPER_REGISTRY) == {"even-divided", "gathering", "sta"}

    def test_get_mapper_by_name(self):
        assert isinstance(get_mapper("gathering"), GatheringMapper)
        assert isinstance(get_mapper("EVEN_DIVIDED"), EvenDividedMapper)

    def test_get_mapper_passthrough(self):
        mapper = STAMapper()
        assert get_mapper(mapper) is mapper

    def test_unknown_name_rejected(self):
        with pytest.raises(MappingError):
            get_mapper("random")


class TestCommonBehaviour:
    @pytest.mark.parametrize("mapper", all_mappers(), ids=lambda m: m.name)
    def test_every_qubit_placed_exactly_once(self, mapper):
        device = grid_device(2, 2, 6)
        circuit = qft_circuit(14)
        state = mapper.map(circuit, device)
        state.validate()
        assert state.all_qubits() == set(range(14))

    @pytest.mark.parametrize("mapper", all_mappers(), ids=lambda m: m.name)
    def test_capacity_respected(self, mapper):
        device = linear_device(3, 5)
        circuit = random_circuit(12, 30, seed=9)
        state = mapper.map(circuit, device)
        for trap in device.traps:
            assert state.chain_length(trap.trap_id) <= trap.capacity

    @pytest.mark.parametrize("mapper", all_mappers(), ids=lambda m: m.name)
    def test_too_many_qubits_rejected(self, mapper):
        device = linear_device(2, 4)
        circuit = QuantumCircuit(9)
        circuit.cx(0, 8)
        with pytest.raises(MappingError):
            mapper.map(circuit, device)

    @pytest.mark.parametrize("mapper", all_mappers(), ids=lambda m: m.name)
    def test_completely_full_device_rejected(self, mapper):
        device = linear_device(2, 4)
        circuit = QuantumCircuit(8)
        circuit.cx(0, 7)
        with pytest.raises(MappingError):
            mapper.map(circuit, device)

    def test_reserve_validation(self):
        with pytest.raises(MappingError):
            EvenDividedMapper(reserve_per_trap=-1)
        with pytest.raises(MappingError):
            GatheringMapper(intra_trap_lookahead=0)


class TestEvenDivided:
    def test_distribution_is_balanced(self):
        device = linear_device(4, 10)
        circuit = qft_circuit(14)
        state = EvenDividedMapper().map(circuit, device)
        sizes = sorted(state.chain_length(t.trap_id) for t in device.traps)
        assert max(sizes) - min(sizes) <= 1

    def test_overflow_spills_to_other_traps(self):
        device = linear_device(3, 5)
        circuit = qft_circuit(13)
        state = EvenDividedMapper().map(circuit, device)
        assert state.all_qubits() == set(range(13))


class TestGathering:
    def test_packs_few_traps(self):
        device = linear_device(4, 10)
        circuit = qft_circuit(14)
        state = GatheringMapper().map(circuit, device)
        occupied = [t.trap_id for t in device.traps if state.chain_length(t.trap_id) > 0]
        assert len(occupied) == 2  # 9 + 5 with one reserved slot per trap

    def test_leaves_one_reserved_slot(self):
        device = linear_device(4, 10)
        circuit = qft_circuit(14)
        state = GatheringMapper().map(circuit, device)
        fullest = max(state.chain_length(t.trap_id) for t in device.traps)
        assert fullest == 9

    def test_uses_fewer_traps_than_even_divided(self):
        device = grid_device(2, 3, 8)
        circuit = qft_circuit(20)
        gathering = GatheringMapper().map(circuit, device)
        even = EvenDividedMapper().map(circuit, device)
        used = lambda state: sum(1 for t in device.traps if state.chain_length(t.trap_id) > 0)
        assert used(gathering) < used(even)


class TestSTA:
    def test_interacting_qubits_share_traps(self):
        device = linear_device(4, 6)
        # Two independent cliques of 5 qubits each.
        circuit = QuantumCircuit(10)
        for a in range(5):
            for b in range(a + 1, 5):
                circuit.cx(a, b)
                circuit.cx(a + 5, b + 5)
        state = STAMapper().map(circuit, device)
        first_clique_traps = {state.trap_of(q) for q in range(5)}
        second_clique_traps = {state.trap_of(q) for q in range(5, 10)}
        assert len(first_clique_traps) == 1
        assert len(second_clique_traps) == 1
        assert first_clique_traps != second_clique_traps

    def test_handles_circuits_with_idle_qubits(self):
        device = linear_device(3, 5)
        circuit = QuantumCircuit(9)
        circuit.cx(0, 1)
        state = STAMapper().map(circuit, device)
        assert state.all_qubits() == set(range(9))


class TestIntraTrapMountain:
    def test_location_scores_count_internal_and_external(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(0, 2).cx(0, 3)
        scores = location_scores(circuit, [0, 1], {0, 1}, lookahead_layers=8)
        # Qubit 0: one internal partner (1), two external (2, 3) -> -2 + 1 = -1.
        assert scores[0] == pytest.approx(-1.0)
        assert scores[1] == pytest.approx(1.0)

    def test_mountain_arrange_puts_low_scores_at_edges(self):
        scores = {0: 5.0, 1: 1.0, 2: 3.0, 3: 0.0, 4: 4.0}
        order = mountain_arrange(scores)
        values = [scores[q] for q in order]
        assert is_mountain_shaped(values)
        assert values[0] <= values[1] and values[-1] <= values[-2]

    def test_mountain_order_small_traps(self):
        circuit = cuccaro_adder_circuit(3)
        assert mountain_order(circuit, [], set()) == []
        assert mountain_order(circuit, [2], {2}) == [2]

    def test_is_mountain_shaped(self):
        assert is_mountain_shaped([1, 2, 3, 2, 1])
        assert is_mountain_shaped([1, 1, 1])
        assert not is_mountain_shaped([1, 3, 1, 3])

    def test_lookahead_validation(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(MappingError):
            location_scores(circuit, [0], {0}, lookahead_layers=0)
