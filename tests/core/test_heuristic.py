"""Unit tests for the heuristic cost functions (Eqs. 1-2) and decay tracking."""

from __future__ import annotations

import pytest

from repro.core.generic_swap import GenericSwap, GenericSwapKind
from repro.core.heuristic import DecayTracker, HeuristicCost, apply_generic_swap
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.graph import GraphWeights
from repro.hardware.topologies import grid_device, linear_device


def _state_two_traps():
    device = linear_device(2, 4)
    return DeviceState.from_mapping(device, {0: [0, 1, 2], 1: [3, 4]})


class TestDecayTracker:
    def test_factor_defaults_to_one(self):
        decay = DecayTracker()
        assert decay.factor((0, 1)) == pytest.approx(1.0)

    def test_recently_touched_qubits_penalised(self):
        decay = DecayTracker(delta=0.5, reset_interval=3)
        decay.record((2,))
        assert decay.factor((2, 5)) == pytest.approx(1.5)
        assert decay.factor((0, 1)) == pytest.approx(1.0)

    def test_reset_after_interval(self):
        decay = DecayTracker(delta=0.5, reset_interval=2)
        decay.record((7,))
        decay.advance()
        assert decay.factor((7,)) == pytest.approx(1.5)
        decay.advance()
        assert decay.factor((7,)) == pytest.approx(1.0)

    def test_reset_clears_history(self):
        decay = DecayTracker(delta=0.5)
        decay.record((1,))
        decay.reset()
        assert decay.factor((1,)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            DecayTracker(delta=-0.1)
        with pytest.raises(SchedulingError):
            DecayTracker(reset_interval=0)


class TestPairDistance:
    def test_same_trap_distance_uses_inner_weight(self):
        state = _state_two_traps()
        cost = HeuristicCost(GraphWeights())
        assert cost.pair_distance(state, 0, 1) == pytest.approx(0.001)
        assert cost.pair_distance(state, 0, 2) == pytest.approx(0.002)

    def test_cross_trap_distance_includes_shuttle_and_edge_terms(self):
        state = _state_two_traps()
        cost = HeuristicCost(GraphWeights())
        # qubit 0 is 2 hops from trap 0's right end; qubit 3 is at trap 1's left end.
        assert cost.pair_distance(state, 0, 3) == pytest.approx(1.0 + 0.002)
        assert cost.pair_distance(state, 2, 3) == pytest.approx(1.0)

    def test_distance_symmetry(self):
        state = _state_two_traps()
        cost = HeuristicCost()
        assert cost.pair_distance(state, 0, 4) == pytest.approx(cost.pair_distance(state, 4, 0))

    def test_junction_raises_distance(self):
        grid = grid_device(1, 2, 4)
        state = DeviceState.from_mapping(grid, {0: [0], 1: [1]})
        line = linear_device(2, 4)
        state_line = DeviceState.from_mapping(line, {0: [0], 1: [1]})
        cost = HeuristicCost()
        assert cost.pair_distance(state, 0, 1) > cost.pair_distance(state_line, 0, 1)

    def test_penalty_counts_full_traps(self):
        device = linear_device(2, 2)
        state = DeviceState.from_mapping(device, {0: [0, 1], 1: [2]})
        cost = HeuristicCost()
        assert cost.blocked_trap_penalty(state) == pytest.approx(1.0)
        assert cost.gate_score(state, 0, 2) == pytest.approx(
            cost.pair_distance(state, 0, 2) + 1.0
        )


class TestSwapScore:
    def test_shuttle_that_joins_operands_scores_best(self):
        state = _state_two_traps()
        cost = HeuristicCost()
        decay = DecayTracker()
        frontier = [(2, 3)]
        shuttle = GenericSwap(GenericSwapKind.SHUTTLE, 2, None, 0, 1, 1.0)
        useless_swap = GenericSwap(GenericSwapKind.SWAP_GATE, 2, 0, 0, None, 0.002)
        assert cost.swap_score(state, shuttle, frontier, decay) < cost.swap_score(
            state, useless_swap, frontier, decay
        )

    def test_score_does_not_mutate_state(self):
        state = _state_two_traps()
        cost = HeuristicCost()
        decay = DecayTracker()
        shuttle = GenericSwap(GenericSwapKind.SHUTTLE, 2, None, 0, 1, 1.0)
        cost.swap_score(state, shuttle, [(2, 3)], decay)
        assert state.trap_of(2) == 0

    def test_decay_inflates_scores(self):
        state = _state_two_traps()
        cost = HeuristicCost()
        frontier = [(0, 3)]
        candidate = GenericSwap(GenericSwapKind.SWAP_GATE, 0, 2, 0, None, 0.002)
        calm = DecayTracker(delta=0.0)
        eager = DecayTracker(delta=2.0)
        eager.record((0,))
        assert cost.swap_score(state, candidate, frontier, eager) > cost.swap_score(
            state, candidate, frontier, calm
        )

    def test_lookahead_term_breaks_ties(self):
        state = _state_two_traps()
        cost = HeuristicCost()
        decay = DecayTracker()
        frontier = [(2, 3)]
        lookahead = [(2, 4)]
        shuttle = GenericSwap(GenericSwapKind.SHUTTLE, 2, None, 0, 1, 1.0)
        without = cost.swap_score(state, shuttle, frontier, decay)
        with_lookahead = cost.swap_score(
            state, shuttle, frontier, decay, lookahead_pairs=lookahead, lookahead_weight=1.0
        )
        assert with_lookahead > without  # the future pair still costs something

    def test_empty_frontier_rejected(self):
        state = _state_two_traps()
        cost = HeuristicCost()
        candidate = GenericSwap(GenericSwapKind.SWAP_GATE, 0, 1, 0, None, 0.001)
        with pytest.raises(SchedulingError):
            cost.swap_score(state, candidate, [], DecayTracker())


class TestApplyGenericSwap:
    def test_apply_swap_gate(self):
        state = _state_two_traps()
        apply_generic_swap(state, GenericSwap(GenericSwapKind.SWAP_GATE, 0, 2, 0, None, 0.002))
        assert state.chain(0) == (2, 1, 0)

    def test_apply_shuttle(self):
        state = _state_two_traps()
        apply_generic_swap(state, GenericSwap(GenericSwapKind.SHUTTLE, 2, None, 0, 1, 1.0))
        assert state.trap_of(2) == 1
