"""Unit tests for generic swap candidates and generation rules."""

from __future__ import annotations

import pytest

from repro.core.generic_swap import GenericSwap, GenericSwapKind, GenericSwapRules
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.graph import GraphWeights
from repro.hardware.topologies import grid_device, linear_device


def swap_candidate(qubit_a=0, qubit_b=1, weight=0.001):
    return GenericSwap(
        GenericSwapKind.SWAP_GATE,
        qubit_a=qubit_a,
        qubit_b=qubit_b,
        trap=0,
        target_trap=None,
        weight=weight,
    )


def shuttle_candidate(qubit=0, trap=0, target=1, weight=1.0):
    return GenericSwap(
        GenericSwapKind.SHUTTLE,
        qubit_a=qubit,
        qubit_b=None,
        trap=trap,
        target_trap=target,
        weight=weight,
    )


class TestGenericSwapRecord:
    def test_swap_gate_validation(self):
        with pytest.raises(SchedulingError):
            GenericSwap(GenericSwapKind.SWAP_GATE, 0, None, 0, None, 0.1)
        with pytest.raises(SchedulingError):
            GenericSwap(GenericSwapKind.SWAP_GATE, 0, 0, 0, None, 0.1)
        with pytest.raises(SchedulingError):
            GenericSwap(GenericSwapKind.SWAP_GATE, 0, 1, 0, 1, 0.1)

    def test_shuttle_validation(self):
        with pytest.raises(SchedulingError):
            GenericSwap(GenericSwapKind.SHUTTLE, 0, 1, 0, 1, 0.1)
        with pytest.raises(SchedulingError):
            GenericSwap(GenericSwapKind.SHUTTLE, 0, None, 0, None, 0.1)
        with pytest.raises(SchedulingError):
            GenericSwap(GenericSwapKind.SHUTTLE, 0, None, 2, 2, 0.1)

    def test_weight_must_be_positive(self):
        with pytest.raises(SchedulingError):
            swap_candidate(weight=0.0)

    def test_moved_qubits(self):
        assert swap_candidate(3, 5).moved_qubits == (3, 5)
        assert shuttle_candidate(qubit=4).moved_qubits == (4,)

    def test_reverses_swap_gate(self):
        assert swap_candidate(0, 1).reverses(swap_candidate(1, 0))
        assert not swap_candidate(0, 2).reverses(swap_candidate(0, 1))
        assert not swap_candidate(0, 1).reverses(None)

    def test_reverses_shuttle(self):
        forward = shuttle_candidate(qubit=2, trap=0, target=1)
        backward = shuttle_candidate(qubit=2, trap=1, target=0)
        assert backward.reverses(forward)
        assert not forward.reverses(forward)
        assert not forward.reverses(swap_candidate())


class TestWeights:
    def test_swap_gate_weight_scales_with_distance(self):
        rules = GenericSwapRules(GraphWeights())
        assert rules.swap_gate_weight(1) == pytest.approx(0.001)
        assert rules.swap_gate_weight(4) == pytest.approx(0.004)
        with pytest.raises(SchedulingError):
            rules.swap_gate_weight(0)

    def test_shuttle_weight_is_junctions_plus_one(self):
        rules = GenericSwapRules(GraphWeights())
        assert rules.shuttle_weight(0) == pytest.approx(1.0)
        assert rules.shuttle_weight(2) == pytest.approx(3.0)
        with pytest.raises(SchedulingError):
            rules.shuttle_weight(-1)


class TestCandidateGeneration:
    def _linear_state(self):
        device = linear_device(2, 4)
        state = DeviceState.from_mapping(device, {0: [0, 1, 2], 1: [3]})
        return state

    def test_interior_qubit_gets_swap_candidates(self):
        state = self._linear_state()
        rules = GenericSwapRules()
        candidates = rules.candidates_for_qubit(state, 0, goal_trap=1)
        kinds = {c.kind for c in candidates}
        assert kinds == {GenericSwapKind.SWAP_GATE}
        # Swap with the end ion (qubit 2) must be among them.
        assert any(c.qubit_b == 2 for c in candidates)

    def test_edge_qubit_gets_shuttle_candidate(self):
        state = self._linear_state()
        rules = GenericSwapRules()
        candidates = rules.candidates_for_qubit(state, 2, goal_trap=1)
        assert any(c.kind is GenericSwapKind.SHUTTLE and c.target_trap == 1 for c in candidates)

    def test_qubit_already_at_goal_has_no_candidates(self):
        state = self._linear_state()
        rules = GenericSwapRules()
        assert rules.candidates_for_qubit(state, 3, goal_trap=1) == []

    def test_full_destination_yields_evictions(self):
        device = linear_device(3, 2)
        state = DeviceState.from_mapping(device, {0: [0, 1], 1: [2, 3], 2: [4]})
        rules = GenericSwapRules()
        candidates = rules.candidates_for_qubit(state, 1, goal_trap=2)
        evictions = [
            c for c in candidates if c.kind is GenericSwapKind.SHUTTLE and c.trap == 1
        ]
        assert evictions
        assert all(c.qubit_a in (2, 3) for c in evictions)

    def test_eviction_candidates_respect_exclusions(self):
        device = linear_device(2, 2)
        state = DeviceState.from_mapping(device, {0: [0], 1: [1, 2]})
        rules = GenericSwapRules()
        evictions = rules.eviction_candidates(state, full_trap=1, exclude=(1,))
        assert all(c.qubit_a != 1 for c in evictions)

    def test_candidates_for_gates_deduplicates(self):
        state = self._linear_state()
        rules = GenericSwapRules()
        pairs = [(2, 3), (2, 3)]
        candidates = rules.candidates_for_gates(state, pairs)
        keys = [(c.kind, c.qubit_a, c.qubit_b, c.trap, c.target_trap) for c in candidates]
        assert len(keys) == len(set(keys))

    def test_candidates_for_gates_skips_colocated_pairs(self):
        state = self._linear_state()
        rules = GenericSwapRules()
        assert rules.candidates_for_gates(state, [(0, 1)]) == []

    def test_grid_junction_weight_in_shuttle_candidate(self):
        device = grid_device(1, 2, 3)
        state = DeviceState.from_mapping(device, {0: [0, 1], 1: [2]})
        rules = GenericSwapRules()
        candidates = rules.candidates_for_qubit(state, 1, goal_trap=1)
        shuttle = next(c for c in candidates if c.kind is GenericSwapKind.SHUTTLE)
        assert shuttle.weight == pytest.approx(2.0)


class TestApplyUndo:
    """GenericSwap.apply_to / undo restore the state bit-for-bit."""

    def _state(self):
        device = linear_device(2, 4)
        return DeviceState.from_mapping(device, {0: [0, 1, 2], 1: [3]})

    def test_swap_apply_and_undo(self):
        state = self._state()
        snapshot = state.occupancy()
        candidate = GenericSwap(GenericSwapKind.SWAP_GATE, 0, 2, 0, None, 0.002)
        candidate.apply_to(state)
        assert state.chain(0) == (2, 1, 0)
        candidate.undo(state)
        assert state.occupancy() == snapshot
        state.validate()

    def test_shuttle_apply_and_undo(self):
        state = self._state()
        snapshot = state.occupancy()
        candidate = GenericSwap(GenericSwapKind.SHUTTLE, 2, None, 0, 1, 1.0)
        candidate.apply_to(state)
        assert state.trap_of(2) == 1
        candidate.undo(state)
        assert state.occupancy() == snapshot
        state.validate()

    def test_touched_traps(self):
        swap = GenericSwap(GenericSwapKind.SWAP_GATE, 0, 2, 0, None, 0.002)
        shuttle = GenericSwap(GenericSwapKind.SHUTTLE, 2, None, 0, 1, 1.0)
        assert swap.touched_traps == (0,)
        assert shuttle.touched_traps == (0, 1)
