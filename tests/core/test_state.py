"""Unit tests for the mutable device occupancy state."""

from __future__ import annotations

import pytest

from repro.core.state import LEFT, RIGHT, DeviceState
from repro.exceptions import StateError
from repro.hardware.topologies import grid_device, linear_device


def make_state():
    device = linear_device(3, 4)
    state = DeviceState(device)
    for q in (0, 1, 2):
        state.place(q, 0)
    state.place(3, 1)
    state.place(4, 2)
    return device, state


class TestPlacement:
    def test_place_appends_right_by_default(self):
        _, state = make_state()
        assert state.chain(0) == (0, 1, 2)

    def test_place_left(self):
        device = linear_device(1, 4)
        state = DeviceState(device)
        state.place(0, 0)
        state.place(1, 0, end=LEFT)
        assert state.chain(0) == (1, 0)

    def test_place_twice_rejected(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.place(0, 1)

    def test_place_in_full_trap_rejected(self):
        device = linear_device(1, 2)
        state = DeviceState(device)
        state.place(0, 0)
        state.place(1, 0)
        with pytest.raises(StateError):
            state.place(2, 0)

    def test_place_unknown_trap_rejected(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.place(9, 7)

    def test_from_mapping(self):
        device = linear_device(2, 4)
        state = DeviceState.from_mapping(device, {0: [0, 1], 1: [2]})
        assert state.chain(0) == (0, 1)
        assert state.trap_of(2) == 1


class TestQueries:
    def test_locations_and_positions(self):
        _, state = make_state()
        assert state.trap_of(1) == 0
        assert state.position(1) == 1
        assert state.is_placed(2)
        assert not state.is_placed(9)

    def test_unplaced_qubit_raises(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.trap_of(10)

    def test_chain_length_and_free_slots(self):
        _, state = make_state()
        assert state.chain_length(0) == 3
        assert state.free_slots(0) == 1
        assert state.has_space(0)

    def test_full_trap_count(self):
        device = linear_device(2, 2)
        state = DeviceState(device)
        state.place(0, 0)
        state.place(1, 0)
        state.place(2, 1)
        assert state.full_trap_count() == 1

    def test_ion_separation(self):
        _, state = make_state()
        assert state.ion_separation(0, 1) == 0
        assert state.ion_separation(0, 2) == 1
        with pytest.raises(StateError):
            state.ion_separation(0, 3)

    def test_same_trap(self):
        _, state = make_state()
        assert state.same_trap(0, 2)
        assert not state.same_trap(0, 3)

    def test_all_qubits_and_occupancy(self):
        _, state = make_state()
        assert state.all_qubits() == {0, 1, 2, 3, 4}
        assert state.occupancy()[1] == (3,)


class TestChainGeometry:
    def test_facing_end_follows_trap_ids(self):
        _, state = make_state()
        assert state.facing_end(1, 2) == RIGHT
        assert state.facing_end(1, 0) == LEFT
        with pytest.raises(StateError):
            state.facing_end(1, 1)

    def test_end_qubit(self):
        _, state = make_state()
        assert state.end_qubit(0, LEFT) == 0
        assert state.end_qubit(0, RIGHT) == 2
        device = linear_device(1, 3)
        empty = DeviceState(device)
        assert empty.end_qubit(0, LEFT) is None

    def test_is_at_end(self):
        _, state = make_state()
        assert state.is_at_end(0, LEFT)
        assert state.is_at_end(2, RIGHT)
        assert state.is_at_end(2)
        assert not state.is_at_end(1)

    def test_distance_to_end(self):
        _, state = make_state()
        assert state.distance_to_end(1, LEFT) == 1
        assert state.distance_to_end(1, RIGHT) == 1
        assert state.distance_to_end(0, RIGHT) == 2

    def test_unknown_end_rejected(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.distance_to_end(0, "middle")


class TestMutations:
    def test_swap_qubits(self):
        _, state = make_state()
        state.swap_qubits(0, 2)
        assert state.chain(0) == (2, 1, 0)
        assert state.position(0) == 2

    def test_swap_across_traps_rejected(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.swap_qubits(0, 3)

    def test_swap_with_self_rejected(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.swap_qubits(1, 1)

    def test_shuttle_moves_end_ion(self):
        _, state = make_state()
        state.shuttle(2, 1)
        assert state.trap_of(2) == 1
        # Arriving from a lower-id trap, the ion joins the left end of trap 1.
        assert state.chain(1) == (2, 3)
        assert state.chain(0) == (0, 1)

    def test_shuttle_requires_edge_position(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.shuttle(1, 1)

    def test_shuttle_requires_direct_connection(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.shuttle(2, 2)

    def test_shuttle_requires_space(self):
        device = linear_device(2, 2)
        state = DeviceState(device)
        state.place(0, 0)
        state.place(1, 1)
        state.place(2, 1)
        with pytest.raises(StateError):
            state.shuttle(0, 1)

    def test_shuttle_same_trap_rejected(self):
        _, state = make_state()
        with pytest.raises(StateError):
            state.shuttle(0, 0)

    def test_grid_shuttle_orientation(self):
        device = grid_device(2, 2, 3)
        state = DeviceState(device)
        state.place(0, 3)
        state.place(1, 1)
        # Trap 3 faces trap 1 through its left end (1 < 3).
        state.shuttle(0, 1)
        # Arriving at trap 1 from the higher-id trap 3, ion joins the right end.
        assert state.chain(1) == (1, 0)


class TestCopyAndValidate:
    def test_copy_is_independent(self):
        _, state = make_state()
        clone = state.copy()
        clone.swap_qubits(0, 2)
        assert state.chain(0) == (0, 1, 2)
        assert clone.chain(0) == (2, 1, 0)

    def test_validate_passes_on_consistent_state(self):
        _, state = make_state()
        state.validate()

    def test_validate_detects_corruption(self):
        _, state = make_state()
        state._locations[0] = 2  # type: ignore[attr-defined]
        with pytest.raises(StateError):
            state.validate()

    def test_repr_shows_chains(self):
        _, state = make_state()
        assert "0:[0, 1, 2]" in repr(state)


class TestIncrementalIndices:
    """The maintained position index and O(1) full-trap counter."""

    def test_full_trap_counter_tracks_shuttles(self):
        device, state = make_state()
        capacity = device.capacity(0)
        # Fill trap 1 up to capacity from trap 0's right end.
        before = state.full_trap_count()
        chain = state.chain(0)
        state.shuttle(chain[-1], 1)
        recount = sum(1 for t in range(device.num_traps) if not state.has_space(t))
        assert state.full_trap_count() == recount
        state.validate()

    def test_positions_follow_swaps_and_shuttles(self):
        _, state = make_state()
        state.swap_qubits(0, 2)
        assert state.position(0) == 2 and state.position(2) == 0
        state.validate()

    def test_unchecked_shuttle_is_its_own_inverse(self):
        device, state = make_state()
        snapshot = state.occupancy()
        full = state.full_trap_count()
        qubit = state.chain(0)[-1]
        state.unchecked_shuttle(qubit, 0, 1)
        state.unchecked_shuttle(qubit, 1, 0)
        assert state.occupancy() == snapshot
        assert state.full_trap_count() == full
        state.validate()

    def test_unchecked_swap_is_its_own_inverse(self):
        _, state = make_state()
        snapshot = state.occupancy()
        state.unchecked_swap(0, 2)
        state.unchecked_swap(0, 2)
        assert state.occupancy() == snapshot
        state.validate()

    def test_views_alias_the_live_state(self):
        _, state = make_state()
        locations = state.locations
        positions = state.positions
        state.swap_qubits(0, 2)
        assert positions[0] == 2
        clone = state.copy()
        assert clone.locations is not locations
        assert clone.locations == locations
