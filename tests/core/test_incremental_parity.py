"""Randomized parity suite: incremental scheduler == naive reference.

The incremental core (delta-evaluated H(swap), per-gate score caches,
candidate regeneration by touched trap) must be *bit-for-bit*
behaviour-preserving: for any circuit, topology and lookahead depth, the
schedule it emits — serialised byte-for-byte — and the scheduler
statistics must equal those of the naive reference scorer
(``SchedulerConfig(incremental=False)``: a fresh state copy and a full
rescore per candidate, the seed implementation's strategy).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping import get_mapper
from repro.core.scheduler import GenericSwapScheduler, SchedulerConfig
from repro.hardware.presets import paper_device
from repro.schedule.serialize import schedule_to_dict

TOPOLOGIES = ("G-2x2", "G-2x3", "L-4")
LOOKAHEAD_DEPTHS = (0, 4)
SEEDS = (7, 23, 101)


def random_circuit(rng: random.Random, num_qubits: int, num_gates: int) -> QuantumCircuit:
    """A random mix of single- and two-qubit gates over ``num_qubits``."""
    circuit = QuantumCircuit(num_qubits, name=f"random-{num_qubits}q-{num_gates}g")
    for _ in range(num_gates):
        if rng.random() < 0.35:
            circuit.add_gate(rng.choice(("h", "x", "rz")), rng.randrange(num_qubits))
        else:
            qubit_a, qubit_b = rng.sample(range(num_qubits), 2)
            circuit.add_gate(rng.choice(("cx", "cz", "ms")), qubit_a, qubit_b)
    return circuit


def serialized(schedule) -> str:
    return json.dumps(schedule_to_dict(schedule), sort_keys=True)


def run_both(circuit: QuantumCircuit, device, lookahead_depth: int):
    """Schedule with the incremental core and the naive reference scorer."""
    state = get_mapper("gathering").map(circuit, device)
    results = []
    for incremental in (True, False):
        config = SchedulerConfig(lookahead_depth=lookahead_depth, incremental=incremental)
        scheduler = GenericSwapScheduler(device, config)
        schedule, final_state, stats = scheduler.run(circuit, state)
        final_state.validate()
        results.append((schedule, final_state, stats))
    return results


class TestRandomizedParity:
    """Byte-identical schedules across topologies, seeds and lookaheads."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("lookahead_depth", LOOKAHEAD_DEPTHS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_circuits(self, topology: str, lookahead_depth: int, seed: int) -> None:
        rng = random.Random((hash(topology) & 0xFFFF) * 1000 + lookahead_depth * 100 + seed)
        num_qubits = rng.randrange(6, 15)
        num_gates = rng.randrange(20, 70)
        # A small capacity forces evictions and congested routing.
        device = paper_device(topology, capacity=max(3, num_qubits // 2))
        circuit = random_circuit(rng, num_qubits, num_gates)

        (inc_schedule, inc_state, inc_stats), (ref_schedule, ref_state, ref_stats) = run_both(
            circuit, device, lookahead_depth
        )
        assert serialized(inc_schedule) == serialized(ref_schedule)
        assert inc_stats == ref_stats
        assert inc_state.occupancy() == ref_state.occupancy()

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_library_circuits(self, topology: str) -> None:
        from repro.circuit.library import build_family

        device = paper_device(topology, capacity=8)
        for family, size in (("qft", 12), ("alt", 12), ("adder", 5)):
            circuit = build_family(family, size)
            (inc_schedule, _, inc_stats), (ref_schedule, _, ref_stats) = run_both(
                circuit, device, 4
            )
            assert serialized(inc_schedule) == serialized(ref_schedule)
            assert inc_stats == ref_stats

    def test_congested_device_with_forced_routes(self) -> None:
        """Parity must survive the stall/force-route fallback path."""
        rng = random.Random(1234)
        device = paper_device("G-2x2", capacity=4)
        circuit = random_circuit(rng, 12, 80)
        (inc_schedule, _, inc_stats), (ref_schedule, _, ref_stats) = run_both(circuit, device, 4)
        assert serialized(inc_schedule) == serialized(ref_schedule)
        assert inc_stats == ref_stats
