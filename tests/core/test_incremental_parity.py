"""Randomized parity suite: all three scheduler backends are bit-identical.

The fast cores (``"incremental"``: delta-evaluated H(swap) on the live
state; ``"flat"``: batched candidate scoring on integer slot vectors)
must be *bit-for-bit* behaviour-preserving: for any circuit, topology
and lookahead depth, the schedule each emits — serialised
byte-for-byte — and the scheduler statistics must equal those of the
naive reference scorer (``SchedulerConfig(backend="naive")``: a fresh
state copy and a full rescore per candidate, the seed implementation's
strategy).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping import get_mapper
from repro.core.scheduler import SCHEDULER_BACKENDS, GenericSwapScheduler, SchedulerConfig
from repro.hardware.device import QCCDDevice
from repro.hardware.presets import paper_device
from repro.hardware.trap import Connection, Trap
from repro.schedule.serialize import schedule_to_dict

TOPOLOGIES = ("G-2x2", "G-2x3", "L-4")
LOOKAHEAD_DEPTHS = (0, 4)
SEEDS = (7, 23, 101)


def random_circuit(rng: random.Random, num_qubits: int, num_gates: int) -> QuantumCircuit:
    """A random mix of single- and two-qubit gates over ``num_qubits``."""
    circuit = QuantumCircuit(num_qubits, name=f"random-{num_qubits}q-{num_gates}g")
    for _ in range(num_gates):
        if rng.random() < 0.35:
            circuit.add_gate(rng.choice(("h", "x", "rz")), rng.randrange(num_qubits))
        else:
            qubit_a, qubit_b = rng.sample(range(num_qubits), 2)
            circuit.add_gate(rng.choice(("cx", "cz", "ms")), qubit_a, qubit_b)
    return circuit


def serialized(schedule) -> str:
    return json.dumps(schedule_to_dict(schedule), sort_keys=True)


def run_backends(circuit: QuantumCircuit, device, lookahead_depth: int):
    """Schedule with every backend, in :data:`SCHEDULER_BACKENDS` order."""
    state = get_mapper("gathering").map(circuit, device)
    results = []
    for backend in SCHEDULER_BACKENDS:
        config = SchedulerConfig(lookahead_depth=lookahead_depth, backend=backend)
        scheduler = GenericSwapScheduler(device, config)
        schedule, final_state, stats = scheduler.run(circuit, state)
        final_state.validate()
        results.append((schedule, final_state, stats))
    return results


def assert_three_way(results) -> None:
    """Schedules, statistics and final occupancy equal across backends."""
    (ref_schedule, ref_state, ref_stats) = results[-1]  # the naive reference
    reference = serialized(ref_schedule)
    for schedule, final_state, stats in results[:-1]:
        assert serialized(schedule) == reference
        assert stats == ref_stats
        assert final_state.occupancy() == ref_state.occupancy()


class TestRandomizedParity:
    """Byte-identical schedules across topologies, seeds and lookaheads."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("lookahead_depth", LOOKAHEAD_DEPTHS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_circuits(self, topology: str, lookahead_depth: int, seed: int) -> None:
        rng = random.Random((hash(topology) & 0xFFFF) * 1000 + lookahead_depth * 100 + seed)
        num_qubits = rng.randrange(6, 15)
        num_gates = rng.randrange(20, 70)
        # A small capacity forces evictions and congested routing.
        device = paper_device(topology, capacity=max(3, num_qubits // 2))
        circuit = random_circuit(rng, num_qubits, num_gates)
        assert_three_way(run_backends(circuit, device, lookahead_depth))

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_library_circuits(self, topology: str) -> None:
        from repro.circuit.library import build_family

        device = paper_device(topology, capacity=8)
        for family, size in (("qft", 12), ("alt", 12), ("adder", 5)):
            circuit = build_family(family, size)
            assert_three_way(run_backends(circuit, device, 4))

    def test_congested_device_with_forced_routes(self) -> None:
        """Parity must survive the stall/force-route fallback path."""
        rng = random.Random(1234)
        device = paper_device("G-2x2", capacity=4)
        circuit = random_circuit(rng, 12, 80)
        assert_three_way(run_backends(circuit, device, 4))


class TestLargeDeviceParity:
    """Three-way parity at benchmark scale: 48/64 qubits, tight slack."""

    @pytest.mark.parametrize(
        ("topology", "capacity", "num_qubits"),
        (("G-2x4", 10, 48), ("G-3x3", 8, 64)),
    )
    def test_random_circuits_at_scale(
        self, topology: str, capacity: int, num_qubits: int
    ) -> None:
        rng = random.Random(num_qubits * 31 + capacity)
        device = paper_device(topology, capacity=capacity)
        circuit = random_circuit(rng, num_qubits, 120)
        assert_three_way(run_backends(circuit, device, 4))

    def test_library_circuits_at_scale(self) -> None:
        from repro.circuit.library import build_family

        device = paper_device("G-3x3", capacity=8)
        for family in ("qft", "alt"):
            circuit = build_family(family, 48)
            assert_three_way(run_backends(circuit, device, 4))


def _heterogeneous_linear_device(capacities: tuple[int, ...]) -> QCCDDevice:
    """A linear device whose traps have *different* capacities."""
    traps = [Trap(i, capacity, name=f"H{i}") for i, capacity in enumerate(capacities)]
    connections = [
        Connection(i, i + 1, junctions=0, segments=1) for i in range(len(capacities) - 1)
    ]
    return QCCDDevice(traps, connections, name=f"L-{len(capacities)}-hetero")


def _heterogeneous_grid_device(rows: int, cols: int, capacities: tuple[int, ...]) -> QCCDDevice:
    """A grid device whose traps have *different* capacities."""
    assert len(capacities) == rows * cols
    traps = [Trap(i, capacity, name=f"HG{i}") for i, capacity in enumerate(capacities)]
    connections = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connections.append(Connection(r * cols + c, r * cols + c + 1, junctions=1, segments=2))
            if r + 1 < rows:
                connections.append(Connection(r * cols + c, (r + 1) * cols + c, junctions=1, segments=2))
    return QCCDDevice(traps, connections, name=f"G-{rows}x{cols}-hetero")


class TestHeterogeneousCapacityParity:
    """Three-way parity when per-trap capacities differ.

    The flat mirror stores capacity per trap (the slab bases are
    prefix sums of the capacity vector) and the full-trap penalty
    counts per-trap fullness, so nothing may assume a uniform cap.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    def test_linear_mixed_capacities(self, seed: int) -> None:
        rng = random.Random(seed * 7919)
        device = _heterogeneous_linear_device((4, 9, 3, 7))
        circuit = random_circuit(rng, 14, 70)
        for depth in LOOKAHEAD_DEPTHS:
            assert_three_way(run_backends(circuit, device, depth))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_grid_mixed_capacities(self, seed: int) -> None:
        rng = random.Random(seed * 104729)
        device = _heterogeneous_grid_device(2, 3, (3, 8, 4, 6, 3, 5))
        circuit = random_circuit(rng, 16, 80)
        assert_three_way(run_backends(circuit, device, 4))
