"""Unit tests for the generic-swap scheduler (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import ghz_circuit, qft_circuit, random_circuit
from repro.core.scheduler import GenericSwapScheduler, SchedulerConfig
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.graph import GraphWeights
from repro.hardware.topologies import grid_device, linear_device, star_device
from repro.schedule.operations import OperationKind
from repro.schedule.verify import verify_schedule


def run(circuit, device, assignment, config=None):
    state = DeviceState.from_mapping(device, assignment)
    scheduler = GenericSwapScheduler(device, config)
    return scheduler.run(circuit, state), state


class TestLocalExecution:
    def test_colocated_gates_need_no_routing(self):
        device = linear_device(2, 4)
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        (schedule, final_state, stats), initial = run(circuit, device, {0: [0, 1, 2]})
        assert schedule.shuttle_count == 0
        assert schedule.swap_count == 0
        assert schedule.two_qubit_gate_count == 2
        assert schedule.single_qubit_gate_count == 1
        assert stats.generic_swap_iterations == 0
        assert final_state.occupancy() == initial.occupancy()

    def test_single_qubit_gates_attached_before_their_two_qubit_gate(self):
        device = linear_device(1, 4)
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1).h(1)
        (schedule, _, _), _ = run(circuit, device, {0: [0, 1]})
        kinds = [op.kind for op in schedule]
        assert kinds[:3] == [OperationKind.GATE_1Q, OperationKind.GATE_1Q, OperationKind.GATE_2Q]
        assert kinds[3] == OperationKind.GATE_1Q  # trailing single-qubit gate

    def test_gate_context_recorded(self):
        device = linear_device(1, 6)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        (schedule, _, _), _ = run(circuit, device, {0: [0, 1, 2, 3]})
        gate_op = schedule.executed_two_qubit_gates()[0]
        assert gate_op.chain_length == 4
        assert gate_op.ion_separation == 2


class TestRouting:
    def test_cross_trap_gate_triggers_shuttle(self):
        device = linear_device(2, 4)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        (schedule, final_state, _), initial = run(circuit, device, {0: [0], 1: [1]})
        assert schedule.shuttle_count >= 1
        assert schedule.two_qubit_gate_count == 1
        verify_schedule(schedule, initial, circuit=circuit)
        assert final_state.same_trap(0, 1)

    def test_interior_qubit_needs_swap_before_shuttle(self):
        device = linear_device(2, 4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        # Qubit 0 starts buried at the far end of trap 0's chain.
        (schedule, _, _), initial = run(circuit, device, {0: [0, 1, 2], 1: [3]})
        assert schedule.shuttle_count >= 1
        verify_schedule(schedule, initial, circuit=circuit)

    def test_star_topology_long_range(self):
        device = star_device(4, 4)
        circuit = ghz_circuit(8, ladder=False)
        (schedule, _, _), initial = run(
            circuit, device, {0: [0, 1], 1: [2, 3], 2: [4, 5], 3: [6, 7]}
        )
        verify_schedule(schedule, initial, circuit=circuit)
        assert schedule.two_qubit_gate_count == 7

    def test_grid_topology_routes_through_junctions(self):
        device = grid_device(2, 2, 3)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        (schedule, _, _), initial = run(circuit, device, {0: [0], 1: [1], 2: [2], 3: [3]})
        verify_schedule(schedule, initial, circuit=circuit)
        assert schedule.junction_crossings >= 1

    def test_full_destination_forces_eviction(self):
        device = linear_device(3, 3)
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        # Trap 1 (the only route between 0 and 2) is completely full.
        (schedule, _, _), initial = run(
            circuit, device, {0: [0, 1], 1: [2, 3, 4], 2: [5]}
        )
        verify_schedule(schedule, initial, circuit=circuit)
        assert schedule.two_qubit_gate_count == 1

    def test_every_gate_of_qft_is_executed(self):
        device = linear_device(3, 5)
        circuit = qft_circuit(9)
        (schedule, _, _), initial = run(circuit, device, {0: [0, 1, 2], 1: [3, 4, 5], 2: [6, 7, 8]})
        report = verify_schedule(schedule, initial, circuit=circuit)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates


class TestConfiguration:
    def test_unplaced_qubit_rejected(self):
        device = linear_device(2, 4)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        state = DeviceState.from_mapping(device, {0: [0, 1]})
        with pytest.raises(SchedulingError):
            GenericSwapScheduler(device).run(circuit, state)

    def test_generic_swap_budget_enforced(self):
        device = linear_device(2, 4)
        circuit = qft_circuit(6)
        config = SchedulerConfig(max_generic_swaps=1, stall_limit=100)
        state = DeviceState.from_mapping(device, {0: [0, 1, 2], 1: [3, 4, 5]})
        with pytest.raises(SchedulingError):
            GenericSwapScheduler(device, config).run(circuit, state)

    def test_config_validation(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(stall_limit=0)
        with pytest.raises(SchedulingError):
            SchedulerConfig(max_generic_swaps=0)
        with pytest.raises(SchedulingError):
            SchedulerConfig(lookahead_depth=-1)

    def test_paper_faithful_configuration_still_works(self):
        device = linear_device(3, 4)
        circuit = random_circuit(9, 30, seed=5)
        config = SchedulerConfig(lookahead_depth=0)
        (schedule, _, _), initial = run(
            circuit, device, {0: [0, 1, 2], 1: [3, 4, 5], 2: [6, 7, 8]}, config
        )
        verify_schedule(schedule, initial, circuit=circuit)

    def test_custom_weights_change_behaviour(self):
        device = linear_device(3, 4)
        circuit = random_circuit(9, 30, seed=5)
        heavy = SchedulerConfig(
            weights=GraphWeights(inner_weight=0.001, shuttle_weight=100.0, threshold=0.5)
        )
        assignment = {0: [0, 1, 2], 1: [3, 4, 5], 2: [6, 7, 8]}
        (schedule_heavy, _, _), _ = run(circuit, device, assignment, heavy)
        (schedule_default, _, _), _ = run(circuit, device, assignment)
        # Making shuttles 100x more expensive should never increase their number.
        assert schedule_heavy.shuttle_count <= schedule_default.shuttle_count + 2

    def test_statistics_are_populated(self):
        device = linear_device(2, 4)
        circuit = qft_circuit(6)
        (schedule, _, stats), _ = run(circuit, device, {0: [0, 1, 2], 1: [3, 4, 5]})
        assert stats.executed_two_qubit_gates == circuit.num_two_qubit_gates
        assert stats.candidate_evaluations > 0
        assert stats.generic_swap_iterations >= schedule.shuttle_count
