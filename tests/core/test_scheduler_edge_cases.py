"""Edge-case and regression tests for the scheduler and baselines.

The regression tests pin down two bugs found during development: an
eviction merging an ion into the departing end of the source trap could
displace the ion that had just been staged for shuttling (both in the
baseline router and in the S-SYNC force-route fallback).
"""

from __future__ import annotations

import pytest

from repro.baselines import DaiCompiler, MuraliCompiler
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import build_benchmark, qft_circuit, random_circuit
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.core.scheduler import SchedulerConfig
from repro.core.state import DeviceState
from repro.hardware.presets import paper_device
from repro.hardware.topologies import grid_device, linear_device
from repro.schedule.verify import verify_schedule


class TestDegenerateCircuits:
    def test_single_qubit_only_circuit(self, linear_2x6):
        circuit = QuantumCircuit(4)
        circuit.h(0).x(1).rz(0.3, 2).measure(3)
        result = SSyncCompiler(linear_2x6).compile(circuit)
        assert result.two_qubit_gate_count == 0
        assert result.schedule.single_qubit_gate_count == 4
        assert result.shuttle_count == 0

    def test_empty_two_qubit_workload_on_every_compiler(self, linear_2x6):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        for compiler in (SSyncCompiler(linear_2x6), MuraliCompiler(linear_2x6), DaiCompiler(linear_2x6)):
            result = compiler.compile(circuit)
            assert result.two_qubit_gate_count == 0

    def test_repeated_identical_gates(self, linear_2x6):
        circuit = QuantumCircuit(6)
        for _ in range(25):
            circuit.cx(0, 5)
        result = SSyncCompiler(linear_2x6).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        # After the first co-location no further routing should be needed.
        assert result.shuttle_count <= 2
        assert result.two_qubit_gate_count == 25

    def test_two_qubit_device_wide_circuit(self):
        device = linear_device(2, 2)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        result = SSyncCompiler(device).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_single_trap_device_never_shuttles(self):
        device = linear_device(1, 12)
        circuit = qft_circuit(10)
        result = SSyncCompiler(device).compile(circuit)
        assert result.shuttle_count == 0
        assert result.swap_count == 0


class TestCongestedDevices:
    def test_only_one_free_slot_total(self):
        # 11 qubits on a 12-slot device: routing must funnel through the
        # single free slot without deadlocking.
        device = linear_device(3, 4)
        circuit = random_circuit(11, 40, seed=13)
        result = SSyncCompiler(device).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_only_one_free_slot_total_on_grid(self):
        device = grid_device(2, 2, 3)
        circuit = random_circuit(11, 30, seed=17)
        result = SSyncCompiler(device).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_baselines_survive_single_free_slot(self):
        device = linear_device(3, 4)
        circuit = random_circuit(11, 30, seed=19)
        for compiler in (MuraliCompiler(device), DaiCompiler(device)):
            result = compiler.compile(circuit)
            verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_tiny_stall_limit_still_terminates(self):
        device = grid_device(2, 2, 4)
        circuit = qft_circuit(12)
        config = SSyncConfig(scheduler=SchedulerConfig(stall_limit=1))
        result = SSyncCompiler(device, config).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert result.statistics.forced_routes > 0


class TestEvictionRegression:
    """Regression: evictions into the source trap must not displace the mover."""

    def test_murali_eviction_into_source_trap(self):
        # Reproduces the original failure: heavy congestion forces evictions
        # back into the trap the moving ion departs from.
        device = paper_device("G-2x3")
        circuit = build_benchmark("qft_24")
        result = MuraliCompiler(device).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_force_route_with_expensive_shuttles(self):
        # Reproduces the original failure in the force-route fallback: with a
        # huge shuttle weight the heuristic stalls and force-routing kicks in
        # on a congested device.
        from repro.hardware.graph import GraphWeights

        device = linear_device(3, 4)
        circuit = random_circuit(9, 30, seed=5)
        config = SSyncConfig(
            scheduler=SchedulerConfig(
                weights=GraphWeights(inner_weight=0.001, shuttle_weight=100.0, threshold=0.5),
                stall_limit=4,
            )
        )
        state = DeviceState.from_mapping(device, {0: [0, 1, 2], 1: [3, 4, 5], 2: [6, 7, 8]})
        result = SSyncCompiler(device, config).compile(circuit, initial_state=state)
        verify_schedule(result.schedule, state, circuit=circuit)

    @pytest.mark.parametrize("seed", range(6))
    def test_randomised_congestion_fuzz(self, seed):
        device = grid_device(2, 3, 3)
        circuit = random_circuit(14, 60, seed=100 + seed)
        for compiler in (SSyncCompiler(device), MuraliCompiler(device), DaiCompiler(device)):
            result = compiler.compile(circuit)
            verify_schedule(result.schedule, result.initial_state, circuit=circuit)
