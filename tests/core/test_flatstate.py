"""Unit tests for the flat-array scheduler core building blocks.

The randomized parity suite (``test_incremental_parity.py``) holds the
whole flat backend against the reference end-to-end; these tests pin the
pieces in isolation — the array mirror's mutation semantics, the
flattened routing tables, the deferred candidate batch, and the
once-only backend resolution in ``SchedulerConfig``.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.flatstate import FlatCandidateBatch, FlatState
from repro.core.generic_swap import GenericSwap, GenericSwapKind
from repro.core.mapping import get_mapper
from repro.core.scheduler import SCHEDULER_BACKENDS, SchedulerConfig
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.hardware.presets import paper_device
from repro.hardware.trap import Connection, Trap


def _random_circuit(rng: random.Random, num_qubits: int, num_gates: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=f"random-{num_qubits}q-{num_gates}g")
    for _ in range(num_gates):
        if rng.random() < 0.35:
            circuit.add_gate("h", rng.randrange(num_qubits))
        else:
            qubit_a, qubit_b = rng.sample(range(num_qubits), 2)
            circuit.add_gate("cx", qubit_a, qubit_b)
    return circuit


def _mapped_state(num_qubits: int, topology: str = "G-2x3", capacity: int = 6) -> DeviceState:
    device = paper_device(topology, capacity=capacity)
    circuit = _random_circuit(random.Random(5), num_qubits, 30)
    return get_mapper("gathering").map(circuit, device)


class TestFlatState:
    def test_snapshot_mirrors_initial_state(self) -> None:
        state = _mapped_state(14)
        flat = FlatState(state)
        flat.assert_mirrors(state)
        for trap_id in range(state.device.num_traps):
            assert tuple(flat.chain(trap_id)) == state.chain(trap_id)

    def test_mirrors_under_random_moves(self) -> None:
        """The mirror tracks swaps and shuttles move-for-move."""
        rng = random.Random(77)
        state = _mapped_state(16, capacity=5)
        device = state.device
        flat = FlatState(state)
        moves = 0
        while moves < 300:
            if rng.random() < 0.5:
                # Random legal SWAP: two ions of one non-trivial chain.
                traps = [t for t in range(device.num_traps) if state.chain_length(t) >= 2]
                if not traps:
                    continue
                trap = rng.choice(traps)
                qubit_a, qubit_b = rng.sample(state.chain(trap), 2)
                state.swap_qubits(qubit_a, qubit_b)
                flat.apply_swap(qubit_a, qubit_b)
            else:
                # Random legal shuttle: an end ion to a neighbour with space.
                options = []
                for trap in range(device.num_traps):
                    if state.chain_length(trap) == 0:
                        continue
                    for neighbour in device.neighbors(trap):
                        if state.has_space(neighbour):
                            options.append((trap, neighbour))
                if not options:
                    continue
                source, target = rng.choice(options)
                end = state.facing_end(source, target)
                qubit = state.end_qubit(source, end)
                assert qubit is not None
                state.shuttle(qubit, target)
                flat.apply_shuttle(qubit, source, target)
            moves += 1
            flat.assert_mirrors(state)

    def test_full_count_tracks_pen_term(self) -> None:
        state = _mapped_state(16, capacity=5)
        flat = FlatState(state)
        assert flat.full_count == state.full_trap_count()


class TestFlatRoutingTables:
    @pytest.mark.parametrize("topology", ("G-2x3", "G-3x3", "L-4", "S-4"))
    def test_matches_dense_matrices(self, topology: str) -> None:
        device = paper_device(topology, capacity=4)
        dist, next_hop, penultimate = device.flat_routing_tables
        n = device.num_traps
        distance_matrix = device.distance_matrix
        assert len(dist) == len(next_hop) == len(penultimate) == n * n
        for a in range(n):
            for b in range(n):
                assert dist[a * n + b] == distance_matrix[a][b]
                if a != b:
                    assert next_hop[a * n + b] == device.next_hop(a, b)
                    assert penultimate[a * n + b] == device.penultimate_hop(a, b)

    def test_tables_are_cached(self) -> None:
        device = paper_device("G-2x2", capacity=4)
        assert device.flat_routing_tables is device.flat_routing_tables


class TestFlatCandidateBatch:
    def test_build_materialises_only_the_winner(self) -> None:
        batch = FlatCandidateBatch()
        batch.items.append((3, 7, 1, -1, 1.0))  # SWAP of qubits 3,7 in trap 1
        batch.items.append((4, -1, 1, 2, 2.0))  # shuttle of qubit 4, trap 1 -> 2
        assert len(batch) == 2

        swap = batch.build(0)
        assert swap.kind is GenericSwapKind.SWAP_GATE
        assert (swap.qubit_a, swap.qubit_b, swap.trap) == (3, 7, 1)
        assert swap.weight == 1.0

        shuttle = batch.build(1)
        assert shuttle.kind is GenericSwapKind.SHUTTLE
        assert (shuttle.qubit_a, shuttle.trap, shuttle.target_trap) == (4, 1, 2)
        assert shuttle.qubit_b is None
        assert shuttle.weight == 2.0

    def test_drop_reversing_swap(self) -> None:
        last = GenericSwap.unchecked(GenericSwapKind.SWAP_GATE, 3, 7, 1, None, 1.0)
        batch = FlatCandidateBatch()
        batch.items.append((7, 3, 1, -1, 1.0))  # reverses (either operand order)
        batch.items.append((3, 5, 1, -1, 1.0))
        batch.drop_reversing(last)
        assert [item[:2] for item in batch.items] == [(3, 5)]

    def test_drop_reversing_shuttle(self) -> None:
        last = GenericSwap.unchecked(GenericSwapKind.SHUTTLE, 4, None, 1, 2, 2.0)
        batch = FlatCandidateBatch()
        batch.items.append((4, -1, 2, 1, 2.0))  # the exact reverse shuttle
        batch.items.append((4, -1, 2, 3, 2.0))
        batch.items.append((9, -1, 2, 1, 2.0))  # different qubit: kept
        batch.drop_reversing(last)
        assert [(item[0], item[3]) for item in batch.items] == [(4, 3), (9, 1)]

    def test_all_reversing_keeps_full_set(self) -> None:
        """When every candidate reverses, the filter must keep them all."""
        last = GenericSwap.unchecked(GenericSwapKind.SWAP_GATE, 3, 7, 1, None, 1.0)
        batch = FlatCandidateBatch()
        batch.items.append((7, 3, 1, -1, 1.0))
        batch.drop_reversing(last)
        assert len(batch) == 1


class TestBackendResolution:
    """``SchedulerConfig.__post_init__`` resolves the core exactly once."""

    def test_default_is_flat(self) -> None:
        assert SchedulerConfig().backend == "flat"

    @pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
    def test_explicit_backend_sticks(self, backend: str) -> None:
        assert SchedulerConfig(backend=backend).backend == backend

    def test_legacy_incremental_flag_wins(self) -> None:
        config = SchedulerConfig(incremental=True, backend="flat")
        assert config.backend == "incremental"
        assert config.incremental is None  # normalized away after resolution
        assert SchedulerConfig(incremental=False).backend == "naive"

    def test_replace_chain_preserves_resolution(self) -> None:
        """dataclasses.replace re-runs __post_init__ on resolved values."""
        config = SchedulerConfig(incremental=False)
        assert replace(config, lookahead_depth=2).backend == "naive"
        assert replace(config, incremental=True).backend == "incremental"
        assert replace(SchedulerConfig(), backend="naive").backend == "naive"

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(SchedulingError):
            SchedulerConfig(backend="quadratic")


class TestHeterogeneousFlatState:
    def test_mirror_with_mixed_capacities(self) -> None:
        """Slab bases are capacity prefix sums, not a uniform stride."""
        traps = [Trap(0, 3, name="A"), Trap(1, 7, name="B"), Trap(2, 2, name="C")]
        connections = [Connection(0, 1, junctions=0, segments=1), Connection(1, 2, junctions=0, segments=1)]
        device = QCCDDevice(traps, connections, name="L-3-hetero")
        state = DeviceState.from_mapping(device, {0: (0, 1, 2), 1: (3, 4), 2: (5, 6)})
        flat = FlatState(state)
        flat.assert_mirrors(state)
        assert list(flat.base) == [0, 3, 10]
        assert flat.full_count == state.full_trap_count() == 2  # traps 0 and 2

        # Shuttling out of a full trap updates the Pen counter both ways.
        end = state.facing_end(0, 1)
        qubit = state.end_qubit(0, end)
        assert qubit is not None
        state.shuttle(qubit, 1)
        flat.apply_shuttle(qubit, 0, 1)
        flat.assert_mirrors(state)
        assert flat.full_count == state.full_trap_count() == 1
