"""Unit tests for the SSyncCompiler facade and its configuration."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import ghz_circuit, qft_circuit
from repro.core.compiler import SSyncCompiler, SSyncConfig, compile_circuit
from repro.core.mapping import GatheringMapper
from repro.core.scheduler import SchedulerConfig
from repro.exceptions import MappingError
from repro.hardware.graph import GraphWeights
from repro.hardware.topologies import grid_device, linear_device
from repro.schedule.verify import verify_schedule


class TestCompile:
    def test_result_fields(self, linear_3x5):
        circuit = qft_circuit(9)
        result = SSyncCompiler(linear_3x5).compile(circuit)
        assert result.compiler_name == "s-sync"
        assert result.mapping_name == "gathering"
        assert result.two_qubit_gate_count == circuit.num_two_qubit_gates
        assert result.compile_time_s > 0
        assert result.schedule.device is linear_3x5
        summary = result.summary()
        assert summary["circuit"] == circuit.name
        assert summary["swaps"] == result.swap_count

    def test_schedule_is_verifiable(self, grid_2x2):
        circuit = qft_circuit(12)
        result = SSyncCompiler(grid_2x2).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_initial_state_not_mutated(self, linear_3x5):
        circuit = ghz_circuit(9, ladder=False)
        compiler = SSyncCompiler(linear_3x5)
        state = compiler.build_initial_state(circuit)
        snapshot = state.occupancy()
        compiler.compile(circuit, initial_state=state)
        assert state.occupancy() == snapshot

    def test_explicit_mapping_by_name(self, linear_3x5):
        circuit = qft_circuit(9)
        result = SSyncCompiler(linear_3x5).compile(circuit, initial_mapping="even-divided")
        assert result.mapping_name == "even-divided"

    def test_explicit_mapper_instance(self, linear_3x5):
        circuit = qft_circuit(9)
        mapper = GatheringMapper(reserve_per_trap=2)
        result = SSyncCompiler(linear_3x5).compile(circuit, initial_mapping=mapper)
        assert result.mapping_name == "gathering"

    def test_custom_initial_state(self, linear_3x5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        compiler = SSyncCompiler(linear_3x5)
        state = compiler.build_initial_state(circuit, initial_mapping="even-divided")
        result = compiler.compile(circuit, initial_state=state)
        assert result.mapping_name == "custom"

    def test_conflicting_mapping_and_state_warns_and_names_the_mapper(self, linear_3x5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        compiler = SSyncCompiler(linear_3x5)
        state = compiler.build_initial_state(circuit, initial_mapping="even-divided")
        with pytest.warns(UserWarning, match="initial_state takes precedence"):
            result = compiler.compile(circuit, initial_mapping="even-divided", initial_state=state)
        assert result.mapping_name == "even-divided"

    def test_conflicting_mapper_instance_reports_its_name(self, linear_3x5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        compiler = SSyncCompiler(linear_3x5)
        state = compiler.build_initial_state(circuit)
        with pytest.warns(UserWarning):
            result = compiler.compile(
                circuit, initial_mapping=GatheringMapper(), initial_state=state
            )
        assert result.mapping_name == "gathering"

    def test_unknown_mapping_rejected(self, linear_3x5):
        with pytest.raises(MappingError):
            SSyncCompiler(linear_3x5).compile(qft_circuit(6), initial_mapping="magic")

    def test_circuit_too_large_rejected(self):
        device = linear_device(2, 3)
        with pytest.raises(MappingError):
            SSyncCompiler(device).compile(qft_circuit(7))

    def test_compile_circuit_helper(self, grid_2x2):
        result = compile_circuit(qft_circuit(10), grid_2x2, initial_mapping="gathering")
        assert result.two_qubit_gate_count == qft_circuit(10).num_two_qubit_gates


class TestConfig:
    def test_with_weight_ratio(self):
        config = SSyncConfig().with_weight_ratio(100.0)
        assert config.scheduler.weights.ratio == pytest.approx(100.0)

    def test_with_decay(self):
        config = SSyncConfig().with_decay(0.01)
        assert config.scheduler.decay_delta == pytest.approx(0.01)

    def test_with_weights(self):
        weights = GraphWeights(inner_weight=0.01, shuttle_weight=5.0, threshold=0.5)
        config = SSyncConfig().with_weights(weights)
        assert config.scheduler.weights is weights

    def test_config_is_immutable_value_object(self):
        base = SSyncConfig()
        derived = base.with_decay(0.5)
        assert base.scheduler.decay_delta != derived.scheduler.decay_delta

    def test_custom_scheduler_config_used(self, linear_3x5):
        config = SSyncConfig(scheduler=SchedulerConfig(lookahead_depth=0))
        result = SSyncCompiler(linear_3x5, config).compile(qft_circuit(9))
        assert result.two_qubit_gate_count == qft_circuit(9).num_two_qubit_gates

    def test_mapping_reserve_forwarded(self):
        device = grid_device(2, 2, 6)
        config = SSyncConfig(mapping_reserve_per_trap=2)
        compiler = SSyncCompiler(device, config)
        state = compiler.build_initial_state(qft_circuit(12))
        assert max(state.chain_length(t.trap_id) for t in device.traps) <= 4
