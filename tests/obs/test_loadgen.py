"""Loadgen tests: deterministic plans, E2E smoke, metrics reconciliation.

The E2E test drives a real in-process service with the ``burst`` profile
and then **reconciles** the loadgen's own bookkeeping against what
``/v1/metrics`` reports: every submission must appear in the HTTP
request counters and every job in the scheduler's transition counter.
Agreement between two independently-kept sets of numbers is the
strongest cheap evidence that neither is dropping events.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.exceptions import ReproError
from repro.loadgen import (
    PROFILES,
    generate_requests,
    percentile,
    run_profile,
)
from repro.obs import parse_exposition
from repro.service import ServiceClient, make_server


class TestRequestPlans:
    def test_plans_are_deterministic_per_seed(self):
        for profile in PROFILES:
            first = generate_requests(profile, 20, seed=7)
            again = generate_requests(profile, 20, seed=7)
            assert [(r.body, r.priority) for r in first] == [
                (r.body, r.priority) for r in again
            ]
        assert [r.body for r in generate_requests("burst", 20, seed=7)] != [
            r.body for r in generate_requests("burst", 20, seed=8)
        ]

    def test_burst_requests_are_all_distinct(self):
        plan = generate_requests("burst", 30, seed=0)
        assert len({r.body for r in plan}) == 30
        assert all(r.priority == 0 for r in plan)

    def test_duplicates_draw_from_a_small_pool(self):
        plan = generate_requests("duplicates", 30, seed=0)
        assert 1 < len({r.body for r in plan}) <= 4

    def test_priorities_mix_high_into_normal(self):
        plan = generate_requests("priorities", 50, seed=0)
        priorities = {r.priority for r in plan}
        assert priorities == {0, 5}
        high = sum(1 for r in plan if r.priority == 5)
        assert 0 < high < 25  # ~20% of 50, not degenerate either way

    def test_results_plan_is_a_small_distinct_pool(self):
        plan = generate_requests("results", 30, seed=0)
        assert len(plan) == 4  # the warm-up pool, not the timed fetches
        assert len({r.body for r in plan}) == 4
        assert len(generate_requests("results", 2, seed=0)) == 2

    def test_manifests_are_valid_single_job_documents(self):
        for request in generate_requests("burst", 5, seed=1):
            document = json.loads(request.body)
            assert len(document["jobs"]) == 1
            assert document["defaults"]["device"] == "G-2x2"

    def test_bad_arguments_raise(self):
        with pytest.raises(ReproError):
            generate_requests("typo", 5)
        with pytest.raises(ReproError):
            generate_requests("burst", 0)


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(values, 50.0) == 0.3
        assert percentile(values, 95.0) == 0.5
        assert percentile(values, 0.0) == 0.1
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ReproError):
            percentile(values, 101.0)


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("loadgen-cache")
    server = make_server(workers=2, slots=2, port=0, cache_dir=cache_dir)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(timeout=5)


class TestEndToEnd:
    REQUESTS = 8

    def test_burst_run_reconciles_with_service_metrics(self, live_service):
        result = run_profile(
            live_service.url,
            "burst",
            requests=self.REQUESTS,
            seed=3,
            concurrency=3,
        )
        assert result.ok, [r.error for r in result.records if r.error]
        assert len(result.records) == self.REQUESTS
        assert all(r.outcomes == 1 for r in result.records)
        summary = result.as_dict()
        assert summary["statuses"] == {"done": self.REQUESTS}
        assert summary["throughput_rps"] > 0
        # Keep-alive transport: 16 HTTP requests (8 submits + 8 streams)
        # ride far fewer sockets than one-connection-per-request would.
        assert 1 <= summary["connections_opened"] < 2 * self.REQUESTS
        assert (
            summary["latency_s"]["p50"]
            <= summary["latency_s"]["p95"]
            <= summary["latency_s"]["p99"]
            <= summary["latency_s"]["max"]
        )

        # Reconciliation: the service's own counters must account for
        # every request the loadgen believes it made.  Counters are
        # recorded after the response body is flushed, so the client can
        # observe the last byte before the handler thread books the
        # request — poll briefly rather than scrape once.
        client = ServiceClient(live_service.url)
        deadline = time.monotonic() + 10.0
        while True:
            parsed = parse_exposition(client.metrics())
            posts = sum(
                s.value
                for s in parsed["repro_http_requests_total"].samples
                if s.labels_dict()["method"] == "POST"
                and s.labels_dict()["route"] == "/v1/jobs"
            )
            streams = sum(
                s.value
                for s in parsed["repro_http_requests_total"].samples
                if s.labels_dict()["route"] == "/v1/jobs/{id}/results"
            )
            if posts >= self.REQUESTS and streams >= self.REQUESTS:
                break
            if time.monotonic() > deadline:
                break
            time.sleep(0.05)
        assert posts >= self.REQUESTS
        assert streams >= self.REQUESTS
        done = parsed["repro_scheduler_jobs_total"].value(transition="done")
        job_ids = {r.job_id for r in result.records}
        assert done >= len(job_ids)
        # The HTTP latency histogram saw at least as many POSTs too.
        post_count = parsed["repro_http_request_seconds"].value(
            method="POST", route="/v1/jobs", le="+Inf"
        )
        assert post_count >= self.REQUESTS

    def test_results_run_refetches_finished_streams(self, live_service):
        result = run_profile(
            live_service.url,
            "results",
            requests=self.REQUESTS,
            seed=5,
            concurrency=3,
        )
        assert result.ok, [r.error for r in result.records if r.error]
        assert len(result.records) == self.REQUESTS
        # Every timed request replays a finished job from the warm-up
        # pool: no new submissions, complete streams every time.
        assert all(r.resubmitted for r in result.records)
        assert all(r.submit_s == 0.0 for r in result.records)
        assert all(r.outcomes == 1 for r in result.records)
        assert len({r.job_id for r in result.records}) <= 4
        assert result.as_dict()["statuses"] == {"done": self.REQUESTS}

    def test_duplicates_run_exercises_idempotent_resubmission(self, live_service):
        result = run_profile(
            live_service.url,
            "duplicates",
            requests=self.REQUESTS,
            seed=3,
            concurrency=2,
        )
        assert result.ok
        job_ids = {r.job_id for r in result.records}
        assert len(job_ids) < self.REQUESTS
        assert any(r.resubmitted for r in result.records)
