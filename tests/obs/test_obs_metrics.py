"""Unit tests for the metrics core: instruments, exposition, parsing.

The exposition format is covered two ways: a golden-file comparison
(``data/exposition_golden.txt``) pinning the exact rendered bytes of a
representative registry, and :func:`parse_exposition` round-trips acting
as a structural validator.  Thread-safety is covered by hammering one
counter and one histogram from many threads and asserting *exact*
totals — a lost update would show up as a short count.
"""

from __future__ import annotations

import math
import threading
from pathlib import Path

import pytest

from repro.exceptions import ReproError
from repro.obs import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_value,
    parse_exposition,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "exposition_golden.txt"


def build_golden_registry() -> MetricsRegistry:
    """A registry with deterministic values covering every render shape.

    Exercised shapes: unlabelled counter, labelled counter with two
    children, callback gauge, labelled gauge, label-value escaping, and
    a small labelled histogram (cumulative buckets, +Inf, _sum/_count).
    Regenerate the golden file after an intentional format change with::

        PYTHONPATH=src python -c "
        import tests.obs.test_obs_metrics as t
        t.GOLDEN_PATH.write_text(t.build_golden_registry().render())"
    """
    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "Requests served.", ("route", "status")
    )
    requests.labels(route="/v1/jobs", status="202").inc(3)
    requests.labels(route="/v1/healthz", status="200").inc(12)
    registry.counter("repro_events_total", "Plain unlabelled counter.").inc(7)
    registry.gauge("repro_temperature", "Callback gauge.", callback=lambda: 21.5)
    depth = registry.gauge("repro_queue_depth", "Labelled gauge.", ("queue",))
    depth.labels(queue="high").set(2)
    depth.labels(queue='with"quote\\and\nnewline').set(1)
    latency = registry.histogram(
        "repro_latency_seconds",
        "Small labelled histogram.",
        ("route",),
        buckets=(0.1, 1.0),
    )
    child = latency.labels(route="/v1/jobs")
    for value in (0.05, 0.5, 0.5, 5.0):
        child.observe(value)
    return registry


class TestInstruments:
    def test_counter_counts_and_rejects_decrease(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_labelled_children_are_cached_and_independent(self):
        counter = Counter("c_total", "help", ("route",))
        a = counter.labels(route="a")
        assert counter.labels(route="a") is a
        a.inc()
        counter.labels(route="b").inc(5)
        samples = {s.labels_dict()["route"]: s.value for s in counter.samples()}
        assert samples == {"a": 1, "b": 5}

    def test_wrong_label_set_raises(self):
        counter = Counter("c_total", "help", ("route",))
        with pytest.raises(ReproError):
            counter.labels(method="GET")
        with pytest.raises(ReproError):
            counter.inc()  # labelled family has no sole child

    def test_gauge_moves_both_ways_and_callback_wins(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.dec(4)
        assert gauge.value == 6
        ticking = Gauge("g2", "help", callback=lambda: 42.0)
        assert ticking.value == 42.0
        with pytest.raises(ReproError):
            Gauge("g3", "help", ("label",), callback=lambda: 0.0)

    def test_histogram_buckets_are_cumulative_with_inf(self):
        histogram = Histogram("h", "help", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        samples = list(histogram.samples())
        buckets = {
            s.labels_dict()["le"]: s.value for s in samples if s.name == "h_bucket"
        }
        assert buckets == {"1": 1, "2": 2, "+Inf": 3}
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(101.0)

    def test_histogram_timer_observes_positive_duration(self):
        histogram = Histogram("h", "help")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_histogram_rejects_bad_buckets_and_le_label(self):
        with pytest.raises(ReproError):
            Histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("h", "help", ("le",))

    def test_invalid_metric_names_rejected(self):
        for bad in ("", "9starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ReproError):
                Counter(bad, "help")


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("route",))
        again = registry.counter("c_total", "help", ("route",))
        assert first is again

    def test_mismatched_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help")
        with pytest.raises(ReproError):
            registry.gauge("c_total", "help")
        with pytest.raises(ReproError):
            registry.counter("c_total", "help", ("route",))

    def test_namespace_prefixes_names(self):
        registry = MetricsRegistry(namespace="app")
        counter = registry.counter("requests_total", "help")
        assert counter.name == "app_requests_total"

    def test_collectors_append_families_at_scrape_time(self):
        registry = MetricsRegistry()
        calls = []

        def collector():
            calls.append(True)
            gauge = Gauge("ephemeral", "built per scrape")
            gauge.set(len(calls))
            return [gauge]

        registry.register_collector(collector)
        assert "ephemeral 1\n" in registry.render()
        assert "ephemeral 2\n" in registry.render()


class TestExpositionFormat:
    def test_render_matches_golden_file(self):
        rendered = build_golden_registry().render()
        assert rendered == GOLDEN_PATH.read_text()

    def test_rendered_output_parses_back(self):
        registry = build_golden_registry()
        parsed = parse_exposition(registry.render())
        assert parsed["repro_requests_total"].kind == "counter"
        assert parsed["repro_requests_total"].value(route="/v1/jobs", status="202") == 3
        assert parsed["repro_temperature"].value() == 21.5
        escaped = parsed["repro_queue_depth"].value(queue='with"quote\\and\nnewline')
        assert escaped == 1
        latency = parsed["repro_latency_seconds"]
        assert latency.kind == "histogram"
        assert latency.value(route="/v1/jobs", le="+Inf") == 4

    def test_format_value_shapes(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"

    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_parse_rejects_malformed_lines(self):
        for text in (
            "repro_x not_a_number\n",
            'repro_x{route="open 1\n',
            "# TYPE repro_x summary\n",
            "9bad_name 1\n",
        ):
            with pytest.raises(ReproError):
                parse_exposition(text)


class TestConcurrency:
    THREADS = 8
    ITERATIONS = 2_000

    def test_counter_total_is_exact_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("worker",))
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker: int) -> None:
            child = counter.labels(worker=str(worker % 2))
            barrier.wait()
            for _ in range(self.ITERATIONS):
                child.inc()

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(s.value for s in counter.samples())
        assert total == self.THREADS * self.ITERATIONS

    def test_histogram_count_and_sum_exact_under_contention(self):
        histogram = Histogram("h", "help", buckets=(0.5,))
        barrier = threading.Barrier(self.THREADS)

        def hammer() -> None:
            barrier.wait()
            for _ in range(self.ITERATIONS):
                histogram.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = self.THREADS * self.ITERATIONS
        assert histogram.count == expected
        assert histogram.sum == pytest.approx(float(expected))
        buckets = {
            s.labels_dict()["le"]: s.value
            for s in histogram.samples()
            if s.name == "h_bucket"
        }
        assert buckets == {"0.5": 0, "+Inf": expected}
