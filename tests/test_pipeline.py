"""Unit tests for the pass-pipeline architecture (repro.pipeline)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.reporting import records_to_csv, records_to_json
from repro.baselines import MuraliCompiler
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncCompiler
from repro.exceptions import SchedulingError
from repro.pipeline import (
    CompilerPipeline,
    MetricsPass,
    Pass,
    VerifySchedulePass,
)
from repro.runtime.cache import CachedCompilation
from repro.runtime.jobs import CompileJob


def _tight_device():
    """A device small enough that qft_12 needs real shuttling."""
    from repro.hardware.presets import paper_device

    return paper_device("G-2x3", 4)


class TestPipelineShape:
    def test_ssync_pipeline_passes(self):
        pipeline = SSyncCompiler(_tight_device()).pipeline()
        assert pipeline.pass_names() == ("initial-mapping", "routing", "metrics")

    def test_baseline_pipeline_passes(self):
        pipeline = MuraliCompiler(_tight_device()).pipeline()
        assert pipeline.pass_names() == ("initial-mapping", "routing", "metrics")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(SchedulingError):
            CompilerPipeline("empty", _tight_device(), ())

    def test_with_pass_inserts_before_named_stage(self):
        class NoopPass(Pass):
            name = "noop"

            def run(self, context):
                context.metadata["noop"] = True

        pipeline = SSyncCompiler(_tight_device()).pipeline().with_pass(NoopPass(), before="routing")
        assert pipeline.pass_names() == ("initial-mapping", "noop", "routing", "metrics")
        result = pipeline.compile(qft_circuit(8))
        assert [t.name for t in result.pass_timings] == list(pipeline.pass_names())

    def test_with_pass_unknown_anchor_rejected(self):
        pipeline = SSyncCompiler(_tight_device()).pipeline()
        with pytest.raises(SchedulingError, match="no pass named"):
            pipeline.with_pass(MetricsPass(), before="nope")

    def test_with_verification_inserts_before_metrics_and_is_idempotent(self):
        pipeline = SSyncCompiler(_tight_device()).pipeline().with_verification()
        assert pipeline.pass_names() == ("initial-mapping", "routing", "verify", "metrics")
        assert pipeline.with_verification() is pipeline

    def test_mapping_only_pipeline_produces_no_schedule(self):
        compiler = SSyncCompiler(_tight_device())
        mapping_only = CompilerPipeline("broken", compiler.device, compiler.pipeline().passes[:1])
        with pytest.raises(SchedulingError, match="no schedule"):
            mapping_only.compile(qft_circuit(8))


class TestPassTimings:
    @pytest.fixture(scope="class", params=["s-sync", "murali", "dai"])
    def result(self, request):
        from repro.registry import make_pipeline

        pipeline = make_pipeline(request.param, _tight_device(), verify=True)
        return pipeline.compile(qft_circuit(12))

    def test_every_pass_recorded(self, result):
        assert [t.name for t in result.pass_timings] == [
            "initial-mapping",
            "routing",
            "verify",
            "metrics",
        ]
        assert all(t.wall_time_s >= 0 for t in result.pass_timings)

    def test_timings_sum_to_total_compile_time(self, result):
        total = sum(t.wall_time_s for t in result.pass_timings)
        assert total <= result.compile_time_s
        # The pipeline's own overhead (context setup, result assembly)
        # is the only unaccounted time.
        assert result.compile_time_s - total < 0.05 + 0.1 * result.compile_time_s

    def test_routing_statistics_recorded(self, result):
        routing = next(t for t in result.pass_timings if t.name == "routing")
        assert routing.statistics["executed_two_qubit_gates"] == result.two_qubit_gate_count

    def test_verification_statistics_recorded(self, result):
        verify = next(t for t in result.pass_timings if t.name == "verify")
        assert verify.statistics["two_qubit_gates"] == result.two_qubit_gate_count
        assert verify.statistics["shuttles"] == result.shuttle_count


class TestBaselineArgumentPolicy:
    def test_baseline_rejects_initial_mapping(self):
        pipeline = MuraliCompiler(_tight_device()).pipeline()
        with pytest.raises(SchedulingError, match="initial mapping"):
            pipeline.compile(qft_circuit(8), initial_mapping="gathering")

    def test_compile_job_rejects_mapping_for_baselines(self):
        from repro.exceptions import ReproError
        from repro.runtime.jobs import compile_job

        job = CompileJob(circuit="qft_10", device="G-2x2", compiler="dai", initial_mapping="sta")
        with pytest.raises(ReproError, match="initial mapping"):
            compile_job(job)

    def test_manifest_defaults_mapping_skipped_for_baselines(self):
        from repro.runtime.manifest import job_from_dict

        job = job_from_dict(
            {"circuit": "qft_10", "compiler": "murali"},
            defaults={"device": "G-2x2", "mapping": "sta"},
        )
        assert job.initial_mapping is None  # defaults-level mapping is for s-sync jobs

    def test_manifest_job_level_mapping_rejected_for_baselines(self):
        from repro.exceptions import ReproError
        from repro.runtime.manifest import job_from_dict

        with pytest.raises(ReproError, match="initial mapping"):
            job_from_dict(
                {"circuit": "qft_10", "compiler": "murali", "mapping": "sta"},
                defaults={"device": "G-2x2"},
            )

    def test_baseline_accepts_prebuilt_state(self):
        compiler = MuraliCompiler(_tight_device())
        circuit = qft_circuit(8)
        state = compiler.build_initial_state(circuit)
        snapshot = state.occupancy()
        result = compiler.compile(circuit, initial_state=state)
        assert result.mapping_name == "custom"
        assert state.occupancy() == snapshot  # never mutated


class TestResultSerialization:
    """Satellite: statistics + pass timings surface in exports."""

    @pytest.fixture(scope="class")
    def result(self):
        return SSyncCompiler(_tight_device()).compile(qft_circuit(12))

    def test_as_dict_carries_statistics_and_timings(self, result):
        row = result.as_dict()
        assert row["generic_swap_iterations"] == result.statistics.generic_swap_iterations
        assert row["forced_routes"] == result.statistics.forced_routes
        assert row["candidate_evaluations"] == result.statistics.candidate_evaluations
        assert [t["name"] for t in row["pass_timings"]] == [
            "initial-mapping",
            "routing",
            "metrics",
        ]

    def test_json_and_csv_export_helpers_accept_results(self, result):
        data = json.loads(records_to_json([result]))
        assert data[0]["candidate_evaluations"] > 0
        assert data[0]["pass_timings"][1]["name"] == "routing"
        csv_text = records_to_csv([result])
        assert "generic_swap_iterations" in csv_text.splitlines()[0]

    def test_cache_entry_round_trips_statistics(self, result):
        entry = CachedCompilation.from_result(result)
        rebuilt = CachedCompilation.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert rebuilt.statistics == result.statistics_dict()
        assert [t["name"] for t in rebuilt.pass_timings] == [
            "initial-mapping",
            "routing",
            "metrics",
        ]

    def test_stale_cache_format_is_a_miss_not_an_error(self, tmp_path):
        from repro.runtime.api import run_batch
        from repro.runtime.cache import CACHE_FORMAT_VERSION, ScheduleCache

        jobs = [CompileJob(circuit="qft_10", device="G-2x2")]
        run_batch(jobs, cache=ScheduleCache(directory=tmp_path))
        # Bump the on-disk entry to an unknown future format version.
        entry_path = next(tmp_path.glob("*.sched"))
        raw = bytearray(entry_path.read_bytes())
        raw[4] = CACHE_FORMAT_VERSION + 1  # version byte follows the magic
        entry_path.write_bytes(bytes(raw))

        rerun = run_batch(jobs, cache=ScheduleCache(directory=tmp_path))
        assert rerun.compilations == 1  # recompiled, no crash
        assert entry_path.read_bytes()[4] == CACHE_FORMAT_VERSION

    def test_batch_records_carry_statistics_on_every_tier(self, tmp_path):
        from repro.runtime.api import run_batch
        from repro.runtime.cache import ScheduleCache

        jobs = [CompileJob(circuit="qft_12", device="G-2x3", capacity=4)]
        cache = ScheduleCache(directory=tmp_path)
        cold = run_batch(jobs, cache=cache)
        warm = run_batch(jobs, cache=ScheduleCache(directory=tmp_path))
        cold_record = cold.records()[0]
        assert cold_record["generic_swap_iterations"] > 0
        assert cold.records() == warm.records()
        assert warm.outcomes[0].from_cache
        assert [t["name"] for t in warm.outcomes[0].as_dict()["pass_timings"]] == [
            "initial-mapping",
            "routing",
            "metrics",
        ]


class TestSchedulesUnchangedByRefactor:
    """The pipeline refactor must not change what gets compiled."""

    def test_all_compilers_still_verify(self):
        from repro.registry import registered_names, make_pipeline
        from repro.schedule.verify import verify_schedule

        device = _tight_device()
        circuit = qft_circuit(12)
        for name in registered_names():
            result = make_pipeline(name, device).compile(circuit)
            report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
            assert report.two_qubit_gates == circuit.num_two_qubit_gates

    def test_compile_is_deterministic_across_pipeline_instances(self):
        from repro.schedule.serialize import schedule_to_dict

        device = _tight_device()
        circuit = qft_circuit(12)
        compiler = SSyncCompiler(device)
        first = compiler.compile(circuit)
        second = compiler.pipeline().compile(circuit)
        assert schedule_to_dict(first.schedule) == schedule_to_dict(second.schedule)
