"""Unit tests for the schedule cache (LRU + on-disk tiers)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.runtime.cache import CACHE_FORMAT_VERSION, CachedCompilation, ScheduleCache
from repro.runtime.jobs import CompileJob, compile_job


@pytest.fixture(scope="module")
def entry() -> CachedCompilation:
    result = compile_job(CompileJob(circuit="qft_8", device="G-2x2", capacity=6))
    return CachedCompilation.from_result(result)


class TestMemoryTier:
    def test_hit_miss_accounting(self, entry):
        cache = ScheduleCache(max_entries=4)
        assert cache.get("fp-a") is None
        cache.put("fp-a", entry)
        assert cache.get("fp-a") is entry
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "evictions": 0,
            "disk_hits": 0,
        }

    def test_lru_evicts_least_recently_used(self, entry):
        cache = ScheduleCache(max_entries=2)
        cache.put("a", entry)
        cache.put("b", entry)
        cache.get("a")  # refresh a, so b becomes the eviction victim
        cache.put("c", entry)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_needs_positive_capacity(self):
        with pytest.raises(ReproError):
            ScheduleCache(max_entries=0)


class TestDiskTier:
    def test_round_trip_through_a_fresh_cache(self, tmp_path, entry):
        ScheduleCache(directory=tmp_path).put("fp", entry)
        fresh = ScheduleCache(directory=tmp_path)
        loaded = fresh.get("fp")
        assert loaded is not None
        assert fresh.stats.disk_hits == 1
        schedule = loaded.schedule()
        assert schedule.count_summary() == entry.schedule().count_summary()
        assert loaded.compiler_name == entry.compiler_name
        assert loaded.mapping_name == entry.mapping_name

    def test_disk_hit_promotes_into_memory(self, tmp_path, entry):
        ScheduleCache(directory=tmp_path).put("fp", entry)
        fresh = ScheduleCache(directory=tmp_path)
        fresh.get("fp")
        fresh.get("fp")
        assert fresh.stats.hits == 2
        assert fresh.stats.disk_hits == 1  # second hit came from memory

    def test_corrupt_entry_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path).get("bad")

    def test_clear_disk(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        cache.clear(disk=True)
        assert ScheduleCache(directory=tmp_path).get("fp") is None


class TestEntryFormat:
    def test_dict_round_trip(self, entry):
        rebuilt = CachedCompilation.from_dict(entry.to_dict())
        assert rebuilt == entry

    def test_version_mismatch_rejected(self, entry):
        data = entry.to_dict()
        data["format_version"] = CACHE_FORMAT_VERSION + 1
        with pytest.raises(ReproError):
            CachedCompilation.from_dict(data)

    def test_missing_field_rejected(self, entry):
        data = entry.to_dict()
        del data["schedule"]
        with pytest.raises(ReproError):
            CachedCompilation.from_dict(data)

    def test_disk_entry_is_plain_json(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        data = json.loads((tmp_path / "fp.json").read_text())
        assert data["format_version"] == CACHE_FORMAT_VERSION
        assert data["schedule"]["circuit_name"] == "qft_8"
