"""Unit tests for the schedule cache (LRU + on-disk tiers)."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ReproError
from repro.runtime.cache import CACHE_FORMAT_VERSION, CachedCompilation, ScheduleCache
from repro.runtime.jobs import CompileJob, compile_job


@pytest.fixture(scope="module")
def entry() -> CachedCompilation:
    result = compile_job(CompileJob(circuit="qft_8", device="G-2x2", capacity=6))
    return CachedCompilation.from_result(result)


class TestMemoryTier:
    def test_hit_miss_accounting(self, entry):
        cache = ScheduleCache(max_entries=4)
        assert cache.get("fp-a") is None
        cache.put("fp-a", entry)
        assert cache.get("fp-a") is entry
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "evictions": 0,
            "disk_hits": 0,
            "disk_evictions": 0,
            "migrations": 0,
            "network_hits": 0,
            "network_misses": 0,
            "network_stores": 0,
            "network_errors": 0,
        }

    def test_lru_evicts_least_recently_used(self, entry):
        cache = ScheduleCache(max_entries=2)
        cache.put("a", entry)
        cache.put("b", entry)
        cache.get("a")  # refresh a, so b becomes the eviction victim
        cache.put("c", entry)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_needs_positive_capacity(self):
        with pytest.raises(ReproError):
            ScheduleCache(max_entries=0)


class TestDiskTier:
    def test_round_trip_through_a_fresh_cache(self, tmp_path, entry):
        ScheduleCache(directory=tmp_path).put("fp", entry)
        fresh = ScheduleCache(directory=tmp_path)
        loaded = fresh.get("fp")
        assert loaded is not None
        assert fresh.stats.disk_hits == 1
        schedule = loaded.schedule()
        assert schedule.count_summary() == entry.schedule().count_summary()
        assert loaded.compiler_name == entry.compiler_name
        assert loaded.mapping_name == entry.mapping_name

    def test_disk_hit_promotes_into_memory(self, tmp_path, entry):
        ScheduleCache(directory=tmp_path).put("fp", entry)
        fresh = ScheduleCache(directory=tmp_path)
        fresh.get("fp")
        fresh.get("fp")
        assert fresh.stats.hits == 2
        assert fresh.stats.disk_hits == 1  # second hit came from memory

    def test_corrupt_legacy_entry_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path).get("bad")

    def test_corrupt_binary_entry_rejected(self, tmp_path):
        (tmp_path / "bad.sched").write_bytes(b"not a cache entry")
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path).get("bad")

    def test_truncated_binary_entry_rejected(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        path = tmp_path / "fp.sched"
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path).get("fp")

    def test_future_binary_version_is_a_miss(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        path = tmp_path / "fp.sched"
        raw = bytearray(path.read_bytes())
        raw[4] = CACHE_FORMAT_VERSION + 1  # version byte follows the magic
        path.write_bytes(bytes(raw))
        assert ScheduleCache(directory=tmp_path).get("fp") is None

    def test_clear_disk(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        cache.clear(disk=True)
        assert ScheduleCache(directory=tmp_path).get("fp") is None


class TestDiskBudget:
    """Satellite: size-bounded on-disk eviction (LRU by mtime)."""

    def _entry_bytes(self, tmp_path, entry) -> int:
        probe = ScheduleCache(directory=tmp_path / "probe")
        probe.put("probe", entry)
        return (tmp_path / "probe" / "probe.sched").stat().st_size

    def test_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path, max_disk_bytes=0)

    def test_unbounded_by_default(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        for i in range(6):
            cache.put(f"fp{i}", entry)
        assert len(list(tmp_path.glob("*.sched"))) == 6
        assert cache.stats.disk_evictions == 0

    def test_oldest_entries_evicted_beyond_budget(self, tmp_path, entry):
        size = self._entry_bytes(tmp_path, entry)
        cache = ScheduleCache(directory=tmp_path, max_disk_bytes=3 * size)
        for i in range(5):
            cache.put(f"fp{i}", entry)
            os.utime(tmp_path / f"fp{i}.sched", (1_000_000 + i, 1_000_000 + i))
        kept = sorted(p.stem for p in tmp_path.glob("*.sched"))
        assert kept == ["fp2", "fp3", "fp4"]
        assert cache.stats.disk_evictions == 2

    def test_newest_entry_survives_a_tiny_budget(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path, max_disk_bytes=1)
        cache.put("first", entry)
        cache.put("second", entry)
        kept = [p.stem for p in tmp_path.glob("*.sched")]
        assert kept == ["second"]

    def test_disk_read_refreshes_recency(self, tmp_path, entry):
        size = self._entry_bytes(tmp_path, entry)
        cache = ScheduleCache(directory=tmp_path, max_disk_bytes=2 * size)
        cache.put("old", entry)
        cache.put("mid", entry)
        os.utime(tmp_path / "old.sched", (1_000_000, 1_000_000))
        os.utime(tmp_path / "mid.sched", (1_000_001, 1_000_001))
        # A disk hit on the oldest entry makes it the most recent...
        reader = ScheduleCache(directory=tmp_path, max_disk_bytes=2 * size)
        assert reader.get("old") is not None
        # ...so the next store evicts "mid" instead.
        reader.put("new", entry)
        kept = sorted(p.stem for p in tmp_path.glob("*.sched"))
        assert "old" in kept and "new" in kept and "mid" not in kept

    def test_eviction_survives_cache_restarts(self, tmp_path, entry):
        size = self._entry_bytes(tmp_path, entry)
        for i in range(6):
            cache = ScheduleCache(directory=tmp_path, max_disk_bytes=2 * size)
            cache.put(f"fp{i}", entry)
        assert len(list(tmp_path.glob("*.sched"))) <= 2


class TestEntryFormat:
    def test_dict_round_trip(self, entry):
        rebuilt = CachedCompilation.from_dict(entry.to_dict())
        assert rebuilt == entry

    def test_bytes_round_trip(self, entry):
        blob = entry.to_bytes()
        rebuilt = CachedCompilation.from_bytes(blob)
        assert rebuilt == entry
        assert rebuilt.to_bytes() == blob  # deterministic re-encode

    def test_version_mismatch_rejected(self, entry):
        data = entry.to_dict()
        data["format_version"] = CACHE_FORMAT_VERSION + 1
        with pytest.raises(ReproError):
            CachedCompilation.from_dict(data)

    def test_missing_field_rejected(self, entry):
        data = entry.to_dict()
        del data["schedule"]
        with pytest.raises(ReproError):
            CachedCompilation.from_dict(data)

    def test_bad_magic_rejected(self, entry):
        with pytest.raises(ReproError):
            CachedCompilation.from_bytes(b"XXXX" + entry.to_bytes()[4:])

    def test_disk_entry_is_binary(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        raw = (tmp_path / "fp.sched").read_bytes()
        assert raw.startswith(b"RCEN")
        assert raw[4] == CACHE_FORMAT_VERSION
        loaded = CachedCompilation.from_bytes(raw)
        assert loaded.schedule().circuit_name == "qft_8"

    def test_binary_entry_smaller_than_json(self, entry):
        json_bytes = len(json.dumps(entry.to_dict(), sort_keys=True))
        assert len(entry.to_bytes()) * 2 < json_bytes


def _write_legacy_entry(directory, fingerprint, entry):
    """Write a v2-era JSON entry file, as the old library would."""
    data = entry.to_dict()
    data["format_version"] = 2
    (directory / f"{fingerprint}.json").write_text(json.dumps(data, sort_keys=True))


class TestLegacyMigration:
    """Satellite: v2 JSON entries stay readable and migrate on hit."""

    def test_legacy_entry_served_from_disk(self, tmp_path, entry):
        _write_legacy_entry(tmp_path, "fp", entry)
        cache = ScheduleCache(directory=tmp_path)
        loaded, tier = cache.lookup("fp")
        assert tier == "disk"
        assert loaded.schedule().count_summary() == entry.schedule().count_summary()

    def test_legacy_hit_rewrites_as_binary(self, tmp_path, entry):
        _write_legacy_entry(tmp_path, "fp", entry)
        cache = ScheduleCache(directory=tmp_path)
        assert cache.get("fp") is not None
        assert not (tmp_path / "fp.json").exists()
        assert (tmp_path / "fp.sched").exists()
        assert cache.stats.migrations == 1
        # The migrated file round-trips through a fresh cache.
        fresh = ScheduleCache(directory=tmp_path)
        loaded = fresh.get("fp")
        assert loaded is not None
        assert fresh.stats.migrations == 0  # already binary, nothing to migrate

    def test_put_supersedes_stale_legacy_file(self, tmp_path, entry):
        _write_legacy_entry(tmp_path, "fp", entry)
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        assert not (tmp_path / "fp.json").exists()
        assert (tmp_path / "fp.sched").exists()

    def test_legacy_entries_counted_by_disk_observability(self, tmp_path, entry):
        _write_legacy_entry(tmp_path, "a", entry)
        cache = ScheduleCache(directory=tmp_path)
        cache.put("b", entry)
        assert cache.disk_entries() == 2
        assert cache.disk_bytes() > 0
        assert "a" in cache and "b" in cache

    def test_clear_disk_removes_legacy_entries(self, tmp_path, entry):
        _write_legacy_entry(tmp_path, "a", entry)
        cache = ScheduleCache(directory=tmp_path)
        cache.put("b", entry)
        cache.clear(disk=True)
        assert list(tmp_path.iterdir()) == []

    def test_migrated_entry_recency_is_fresh(self, tmp_path, entry):
        """A migrated entry carries today's mtime, so the LRU sweep keeps it."""
        probe = ScheduleCache(directory=tmp_path / "probe")
        probe.put("probe", entry)
        size = (tmp_path / "probe" / "probe.sched").stat().st_size
        work = tmp_path / "work"
        work.mkdir()
        _write_legacy_entry(work, "old", entry)
        os.utime(work / "old.json", (1_000_000, 1_000_000))
        cache = ScheduleCache(directory=work, max_disk_bytes=2 * size)
        assert cache.get("old") is not None  # hit migrates + refreshes recency
        cache.put("new", entry)
        kept = sorted(p.stem for p in work.glob("*.sched"))
        assert kept == ["new", "old"]

    def test_ancient_format_version_is_a_miss(self, tmp_path, entry):
        data = entry.to_dict()
        data["format_version"] = 1
        (tmp_path / "fp.json").write_text(json.dumps(data))
        assert ScheduleCache(directory=tmp_path).get("fp") is None
