"""Unit tests for the schedule cache (LRU + on-disk tiers)."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ReproError
from repro.runtime.cache import CACHE_FORMAT_VERSION, CachedCompilation, ScheduleCache
from repro.runtime.jobs import CompileJob, compile_job


@pytest.fixture(scope="module")
def entry() -> CachedCompilation:
    result = compile_job(CompileJob(circuit="qft_8", device="G-2x2", capacity=6))
    return CachedCompilation.from_result(result)


class TestMemoryTier:
    def test_hit_miss_accounting(self, entry):
        cache = ScheduleCache(max_entries=4)
        assert cache.get("fp-a") is None
        cache.put("fp-a", entry)
        assert cache.get("fp-a") is entry
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "evictions": 0,
            "disk_hits": 0,
            "disk_evictions": 0,
        }

    def test_lru_evicts_least_recently_used(self, entry):
        cache = ScheduleCache(max_entries=2)
        cache.put("a", entry)
        cache.put("b", entry)
        cache.get("a")  # refresh a, so b becomes the eviction victim
        cache.put("c", entry)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_needs_positive_capacity(self):
        with pytest.raises(ReproError):
            ScheduleCache(max_entries=0)


class TestDiskTier:
    def test_round_trip_through_a_fresh_cache(self, tmp_path, entry):
        ScheduleCache(directory=tmp_path).put("fp", entry)
        fresh = ScheduleCache(directory=tmp_path)
        loaded = fresh.get("fp")
        assert loaded is not None
        assert fresh.stats.disk_hits == 1
        schedule = loaded.schedule()
        assert schedule.count_summary() == entry.schedule().count_summary()
        assert loaded.compiler_name == entry.compiler_name
        assert loaded.mapping_name == entry.mapping_name

    def test_disk_hit_promotes_into_memory(self, tmp_path, entry):
        ScheduleCache(directory=tmp_path).put("fp", entry)
        fresh = ScheduleCache(directory=tmp_path)
        fresh.get("fp")
        fresh.get("fp")
        assert fresh.stats.hits == 2
        assert fresh.stats.disk_hits == 1  # second hit came from memory

    def test_corrupt_entry_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path).get("bad")

    def test_clear_disk(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        cache.clear(disk=True)
        assert ScheduleCache(directory=tmp_path).get("fp") is None


class TestDiskBudget:
    """Satellite: size-bounded on-disk eviction (LRU by mtime)."""

    def _entry_bytes(self, tmp_path, entry) -> int:
        probe = ScheduleCache(directory=tmp_path / "probe")
        probe.put("probe", entry)
        return (tmp_path / "probe" / "probe.json").stat().st_size

    def test_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ReproError):
            ScheduleCache(directory=tmp_path, max_disk_bytes=0)

    def test_unbounded_by_default(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        for i in range(6):
            cache.put(f"fp{i}", entry)
        assert len(list(tmp_path.glob("*.json"))) == 6
        assert cache.stats.disk_evictions == 0

    def test_oldest_entries_evicted_beyond_budget(self, tmp_path, entry):
        size = self._entry_bytes(tmp_path, entry)
        cache = ScheduleCache(directory=tmp_path, max_disk_bytes=3 * size)
        for i in range(5):
            cache.put(f"fp{i}", entry)
            os.utime(tmp_path / f"fp{i}.json", (1_000_000 + i, 1_000_000 + i))
        kept = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert kept == ["fp2", "fp3", "fp4"]
        assert cache.stats.disk_evictions == 2

    def test_newest_entry_survives_a_tiny_budget(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path, max_disk_bytes=1)
        cache.put("first", entry)
        cache.put("second", entry)
        kept = [p.stem for p in tmp_path.glob("*.json")]
        assert kept == ["second"]

    def test_disk_read_refreshes_recency(self, tmp_path, entry):
        size = self._entry_bytes(tmp_path, entry)
        cache = ScheduleCache(directory=tmp_path, max_disk_bytes=2 * size)
        cache.put("old", entry)
        cache.put("mid", entry)
        os.utime(tmp_path / "old.json", (1_000_000, 1_000_000))
        os.utime(tmp_path / "mid.json", (1_000_001, 1_000_001))
        # A disk hit on the oldest entry makes it the most recent...
        reader = ScheduleCache(directory=tmp_path, max_disk_bytes=2 * size)
        assert reader.get("old") is not None
        # ...so the next store evicts "mid" instead.
        reader.put("new", entry)
        kept = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert "old" in kept and "new" in kept and "mid" not in kept

    def test_eviction_survives_cache_restarts(self, tmp_path, entry):
        size = self._entry_bytes(tmp_path, entry)
        for i in range(6):
            cache = ScheduleCache(directory=tmp_path, max_disk_bytes=2 * size)
            cache.put(f"fp{i}", entry)
        assert len(list(tmp_path.glob("*.json"))) <= 2


class TestEntryFormat:
    def test_dict_round_trip(self, entry):
        rebuilt = CachedCompilation.from_dict(entry.to_dict())
        assert rebuilt == entry

    def test_version_mismatch_rejected(self, entry):
        data = entry.to_dict()
        data["format_version"] = CACHE_FORMAT_VERSION + 1
        with pytest.raises(ReproError):
            CachedCompilation.from_dict(data)

    def test_missing_field_rejected(self, entry):
        data = entry.to_dict()
        del data["schedule"]
        with pytest.raises(ReproError):
            CachedCompilation.from_dict(data)

    def test_disk_entry_is_plain_json(self, tmp_path, entry):
        cache = ScheduleCache(directory=tmp_path)
        cache.put("fp", entry)
        data = json.loads((tmp_path / "fp.json").read_text())
        assert data["format_version"] == CACHE_FORMAT_VERSION
        assert data["schedule"]["circuit_name"] == "qft_8"
