"""Unit tests for compile jobs and deterministic fingerprinting."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.circuit.library import build_benchmark, qft_circuit
from repro.core.compiler import SSyncConfig
from repro.exceptions import ReproError
from repro.hardware.presets import paper_device
from repro.runtime.jobs import (
    CompileJob,
    circuit_fingerprint,
    compile_job,
    config_fingerprint,
    device_fingerprint,
    normalize_compiler_name,
)


def _fingerprints_in_subprocess(queue):
    # Recreate the same job from names only, in a fresh interpreter.
    job = CompileJob(circuit="qft_10", device="G-2x2", gate_implementation="am2")
    queue.put((job.compile_fingerprint(), job.fingerprint()))


class TestFingerprints:
    def test_stable_across_processes(self):
        """Fingerprints must not depend on per-process hash randomisation."""
        job = CompileJob(circuit="qft_10", device="G-2x2", gate_implementation="am2")
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        proc = ctx.Process(target=_fingerprints_in_subprocess, args=(queue,))
        proc.start()
        remote = queue.get(timeout=60)
        proc.join(timeout=60)
        assert remote == (job.compile_fingerprint(), job.fingerprint())

    def test_named_and_concrete_specs_agree(self):
        by_name = CompileJob(circuit="qft_10", device="G-2x2")
        concrete = CompileJob(circuit=build_benchmark("qft_10"), device=paper_device("G-2x2"))
        assert by_name.compile_fingerprint() == concrete.compile_fingerprint()

    def test_default_config_is_canonical(self):
        assert (
            CompileJob(circuit="qft_10", device="G-2x2").compile_fingerprint()
            == CompileJob(
                circuit="qft_10", device="G-2x2", config=SSyncConfig()
            ).compile_fingerprint()
        )
        assert config_fingerprint(None) == config_fingerprint(SSyncConfig())

    def test_evaluation_settings_do_not_touch_compile_fingerprint(self):
        fm = CompileJob(circuit="qft_10", device="G-2x2", gate_implementation="fm")
        am2 = CompileJob(circuit="qft_10", device="G-2x2", gate_implementation="am2")
        assert fm.compile_fingerprint() == am2.compile_fingerprint()
        assert fm.fingerprint() != am2.fingerprint()

    def test_compile_inputs_change_the_fingerprint(self):
        base = CompileJob(circuit="qft_10", device="G-2x2")
        assert base.compile_fingerprint() != CompileJob(
            circuit="qft_12", device="G-2x2"
        ).compile_fingerprint()
        assert base.compile_fingerprint() != CompileJob(
            circuit="qft_10", device="L-4"
        ).compile_fingerprint()
        assert base.compile_fingerprint() != CompileJob(
            circuit="qft_10", device="G-2x2", initial_mapping="sta"
        ).compile_fingerprint()
        assert base.compile_fingerprint() != CompileJob(
            circuit="qft_10", device="G-2x2", compiler="murali"
        ).compile_fingerprint()

    def test_presentation_metadata_is_ignored(self):
        plain = CompileJob(circuit="qft_10", device="G-2x2")
        decorated = CompileJob(
            circuit="qft_10", device="G-2x2", label="x", parameter="p", value=3
        )
        assert plain.fingerprint() == decorated.fingerprint()

    def test_circuit_fingerprint_sees_gate_content(self):
        assert circuit_fingerprint(qft_circuit(8)) != circuit_fingerprint(qft_circuit(9))

    def test_device_fingerprint_sees_capacity(self):
        assert device_fingerprint(paper_device("G-2x2", 6)) != device_fingerprint(
            paper_device("G-2x2", 8)
        )


class TestJobResolution:
    def test_unknown_compiler_rejected(self):
        with pytest.raises(ReproError):
            normalize_compiler_name("qiskit")
        with pytest.raises(ReproError):
            CompileJob(circuit="qft_10", device="G-2x2", compiler="qiskit").compile_fingerprint()

    def test_ssync_aliases_normalise(self):
        assert normalize_compiler_name("This Work") == "s-sync"
        assert normalize_compiler_name("ssync") == "s-sync"

    def test_capacity_with_concrete_device_rejected(self):
        job = CompileJob(circuit="qft_10", device=paper_device("G-2x2"), capacity=9)
        with pytest.raises(ReproError):
            job.resolve_device()

    def test_resolved_mapping_defaults(self):
        assert CompileJob(circuit="qft_10", device="G-2x2").resolved_mapping() == "gathering"
        assert (
            CompileJob(circuit="qft_10", device="G-2x2", initial_mapping="sta").resolved_mapping()
            == "sta"
        )
        assert (
            CompileJob(circuit="qft_10", device="G-2x2", compiler="murali").resolved_mapping()
            == ""
        )

    def test_compile_job_dispatches_baselines(self):
        result = compile_job(CompileJob(circuit="bv_12", device="L-4", compiler="dai"))
        assert result.compiler_name == "dai"
        assert result.schedule.two_qubit_gate_count == 12
