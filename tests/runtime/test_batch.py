"""Batch-engine tests: determinism, dedup, caching, parallel equivalence,
and re-entrancy of ``run`` under concurrent callers."""

from __future__ import annotations

import json
import threading

from repro.analysis.metrics import compare_compilers
from repro.analysis.sweeps import (
    gate_implementation_jobs,
    topology_capacity_jobs,
    topology_capacity_sweep,
)
from repro.circuit.library import qft_circuit
from repro.hardware.topologies import grid_device
from repro.runtime.api import run_batch, run_sweep
from repro.runtime.cache import ScheduleCache
from repro.runtime.jobs import CompileJob
from repro.runtime.pool import BatchCompiler


def _sweep_jobs():
    """A multi-point Fig. 11 sweep (the acceptance workload)."""
    return topology_capacity_jobs(
        qft_circuit, 12, topology_names=("L-4", "G-2x2"), capacities=(5, 8)
    )


def _record_bytes(result) -> bytes:
    return json.dumps(result.records(), sort_keys=True).encode()


class TestParallelEquivalence:
    def test_parallel_records_byte_identical_to_serial(self):
        jobs = _sweep_jobs()
        assert len(jobs) > 2
        serial = run_batch(jobs, workers=1)
        parallel = run_batch(jobs, workers=3)
        assert _record_bytes(serial) == _record_bytes(parallel)

    def test_sweep_function_agrees_across_worker_counts(self):
        kwargs = dict(topology_names=("L-4", "G-2x2"), capacities=(5, 8))
        serial = topology_capacity_sweep(qft_circuit, 12, workers=1, **kwargs)
        parallel = topology_capacity_sweep(qft_circuit, 12, workers=2, **kwargs)
        strip = lambda r: {k: v for k, v in r.as_dict().items() if k != "compile_time_s"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]

    def test_compare_compilers_agrees_across_worker_counts(self):
        device = grid_device(2, 2, 6)
        circuit = qft_circuit(10)
        strip = lambda r: {k: v for k, v in r.as_dict().items() if k != "compile_time_s"}
        serial = compare_compilers(circuit, device, workers=1)
        parallel = compare_compilers(circuit, device, workers=3)
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]


class TestCaching:
    def test_warm_disk_cache_compiles_nothing(self, tmp_path):
        jobs = _sweep_jobs()
        cold = run_batch(jobs, workers=1, cache=ScheduleCache(directory=tmp_path))
        assert cold.compilations == len(jobs)
        assert cold.cache_stats.misses == len(jobs)

        warm = run_batch(jobs, workers=2, cache=ScheduleCache(directory=tmp_path))
        assert warm.compilations == 0
        assert warm.cache_stats.hits == len(jobs)
        assert warm.cache_stats.misses == 0
        assert all(outcome.from_cache for outcome in warm)
        assert _record_bytes(cold) == _record_bytes(warm)

    def test_engine_owned_cache_spans_runs(self):
        engine = BatchCompiler(workers=1)
        jobs = [CompileJob(circuit="qft_10", device="G-2x2")]
        assert engine.run(jobs).compilations == 1
        assert engine.run(jobs).compilations == 0

    def test_identical_jobs_deduplicate_within_a_batch(self):
        job = CompileJob(circuit="qft_10", device="G-2x2")
        result = run_batch([job, job, job], workers=1)
        assert result.compilations == 1
        assert len(result.outcomes) == 3
        assert result.records()[0] == result.records()[2]

    def test_dedup_keeps_each_jobs_own_circuit_name(self):
        """Two same-content circuits with different names dedup to one
        compile, but each record must report its own circuit name."""
        a = qft_circuit(10)
        b = qft_circuit(10).copy(name="renamed_qft")
        result = run_batch(
            [CompileJob(circuit=a, device="G-2x2"), CompileJob(circuit=b, device="G-2x2")],
            workers=1,
        )
        assert result.compilations == 1
        assert [row["circuit"] for row in result.records()] == [a.name, "renamed_qft"]

    def test_gate_implementation_jobs_share_one_compile(self):
        device = grid_device(2, 2, 6)
        jobs = gate_implementation_jobs([qft_circuit(10)], device)
        result = run_batch(jobs, workers=1)
        assert len(jobs) == 4
        assert result.compilations == 1
        success_rates = {row["success_rate"] for row in result.records()}
        assert len(success_rates) > 1  # evaluations really differ per implementation


class TestConcurrentRuns:
    """``BatchCompiler.run`` is re-entrant: overlapping calls on one
    engine must neither corrupt records nor duplicate compilations."""

    def _run_concurrently(self, engine, job_lists):
        results = [None] * len(job_lists)
        errors = []

        def call(index, jobs):
            try:
                results[index] = engine.run(jobs)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=call, args=(index, jobs))
            for index, jobs in enumerate(job_lists)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, errors
        assert all(result is not None for result in results)
        return results

    def test_overlapping_runs_match_serial_records(self):
        lists = [
            [CompileJob(circuit="qft_10", device="G-2x2")],
            [CompileJob(circuit="bv_12", device="L-4")],
        ]
        serial = [run_batch(jobs, workers=1).records() for jobs in lists]
        engine = BatchCompiler(workers=1)
        concurrent = self._run_concurrently(engine, lists)
        assert [r.records() for r in concurrent] == serial

    def test_identical_overlapping_runs_compile_once(self):
        # Both runs carry the same compile fingerprint: the loser of the
        # in-flight claim must wait for the winner, not compile a copy.
        lists = [
            [CompileJob(circuit="qft_10", device="G-2x2", label="first")],
            [CompileJob(circuit="qft_10", device="G-2x2", label="second")],
        ]
        engine = BatchCompiler(workers=1)
        results = self._run_concurrently(engine, lists)
        assert sum(result.compilations for result in results) == 1
        waiter = next(r for r in results if r.compilations == 0)
        assert waiter.cache_stats.hits == 1
        assert waiter.outcomes[0].from_cache is True
        records = [result.records()[0] for result in results]
        strip = lambda r: {k: v for k, v in r.items() if k != "label"}
        assert strip(records[0]) == strip(records[1])

    def test_per_run_stats_are_isolated(self):
        # Two disjoint concurrent runs: each must report exactly its own
        # misses/stores, not a slice of the interleaved global deltas.
        lists = [
            [CompileJob(circuit="qft_10", device="G-2x2")],
            [CompileJob(circuit="bv_12", device="L-4")],
        ]
        engine = BatchCompiler(workers=1)
        results = self._run_concurrently(engine, lists)
        for result in results:
            assert result.compilations == 1
            assert result.cache_stats.misses == 1
            assert result.cache_stats.stores == 1
            assert result.cache_stats.hits == 0


class TestBatchResult:
    def test_outcomes_keep_job_order_and_metadata(self):
        jobs = [
            CompileJob(circuit="qft_10", device="G-2x2", label="first"),
            CompileJob(circuit="bv_12", device="L-4", compiler="murali", label="second"),
        ]
        result = run_batch(jobs, workers=1)
        assert [o.record["label"] for o in result] == ["first", "second"]
        assert result.records()[1]["compiler"] == "murali"
        summary = result.summary()
        assert summary["jobs"] == 2
        assert summary["compilations"] == 2

    def test_run_sweep_rows_carry_timing(self):
        rows = run_sweep([CompileJob(circuit="qft_10", device="G-2x2")], workers=1)
        assert rows[0]["compile_time_s"] > 0
        assert rows[0]["from_cache"] is False
