"""Warm-pool engine tests: worker reuse, streamed outcomes, lifecycle."""

from __future__ import annotations

import json
import os

from repro.runtime.api import run_batch
from repro.runtime.jobs import CompileJob
from repro.runtime.pool import BatchCompiler


def _jobs_a():
    return [
        CompileJob(circuit="qft_8", device="L-2", capacity=6),
        CompileJob(circuit="qft_10", device="L-2", capacity=6),
    ]


def _jobs_b():
    return [
        CompileJob(circuit="bv_8", device="L-2", capacity=6),
        CompileJob(circuit="qft_11", device="L-2", capacity=6),
    ]


def _record_bytes(result) -> bytes:
    return json.dumps(result.records(), sort_keys=True).encode()


class TestWarmPool:
    def test_workers_survive_across_batches(self):
        with BatchCompiler(workers=2, warm=True) as engine:
            first = engine.run(_jobs_a())
            second = engine.run(_jobs_b())
        pids_first = set(first.extra["worker_pids"])
        pids_second = set(second.extra["worker_pids"])
        assert pids_first, "warm batches must record compiling worker pids"
        # Four distinct compilations ran across the two batches; a cold
        # engine would have spawned a fresh pool per batch, while the
        # warm pool can only ever involve its two persistent processes.
        assert len(pids_first | pids_second) <= 2
        assert os.getpid() not in pids_first, "warm compilations run out of process"

    def test_single_job_rides_the_warm_pool(self):
        # The point of warm start: even a one-job batch compiles in the
        # persistent workers instead of paying a pool spawn (or running
        # in the parent, which would hide the spawn cost it measures).
        # One worker makes the reuse deterministic: with more, the pool
        # may hand consecutive batches to different idle processes.
        with BatchCompiler(workers=1, warm=True) as engine:
            first = engine.run([_jobs_a()[0]])
            second = engine.run([_jobs_b()[0]])
        assert os.getpid() not in first.extra["worker_pids"]
        assert set(first.extra["worker_pids"]) == set(second.extra["worker_pids"])

    def test_warm_records_byte_identical_to_cold(self):
        with BatchCompiler(workers=2, warm=True) as engine:
            warm = engine.run(_jobs_a())
        cold = BatchCompiler(workers=2).run(_jobs_a())
        serial = BatchCompiler(workers=1).run(_jobs_a())
        assert _record_bytes(warm) == _record_bytes(cold) == _record_bytes(serial)

    def test_cold_engine_keeps_no_pool(self):
        engine = BatchCompiler(workers=2)
        engine.run(_jobs_a())
        assert engine._pool is None

    def test_close_is_idempotent(self):
        engine = BatchCompiler(workers=2, warm=True)
        engine.run(_jobs_a())
        engine.close()
        engine.close()
        # A closed engine warm-starts a fresh pool on the next run.
        result = engine.run(_jobs_b())
        assert result.extra["worker_pids"]
        engine.close()


class TestStreamedOutcomes:
    def test_callback_sees_outcomes_in_job_order(self):
        jobs = _jobs_a() + _jobs_b()
        streamed = []
        result = run_batch(jobs, workers=3, on_outcome=streamed.append)
        assert [o.record for o in streamed] == [o.record for o in result.outcomes]
        assert [o.fingerprint for o in streamed] == [
            job.fingerprint() for job in jobs
        ]

    def test_callback_fires_on_serial_path_too(self):
        streamed = []
        result = run_batch(_jobs_a(), workers=1, on_outcome=streamed.append)
        assert len(streamed) == len(result.outcomes) == 2

    def test_cached_jobs_stream_with_cache_provenance(self):
        with BatchCompiler(workers=2, warm=True) as engine:
            engine.run(_jobs_a())
            streamed = []
            again = engine.run(_jobs_a() + _jobs_b(), on_outcome=streamed.append)
        assert [o.from_cache for o in streamed] == [True, True, False, False]
        assert again.compilations == 2

    def test_streamed_records_match_batch_result_exactly(self):
        streamed = []
        result = run_batch(_jobs_b(), workers=2, on_outcome=streamed.append)
        assert json.dumps([o.record for o in streamed], sort_keys=True) == json.dumps(
            result.records(), sort_keys=True
        )
