"""Unit tests for JSON/YAML job-manifest parsing."""

from __future__ import annotations

import json

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import ghz_circuit
from repro.circuit.qasm import circuit_to_qasm
from repro.exceptions import ManifestError, ReproError
from repro.runtime.manifest import (
    job_from_dict,
    jobs_from_manifest,
    jobs_from_manifest_text,
    load_manifest,
    ssync_config_from_dict,
)


class TestJobFromDict:
    def test_defaults_merge_under_job_keys(self):
        job = job_from_dict(
            {"circuit": "qft_12", "mapping": "sta"},
            defaults={"device": "G-2x3", "gate_implementation": "am2", "mapping": "gathering"},
        )
        assert job.device == "G-2x3"
        assert job.initial_mapping == "sta"
        assert job.resolved_gate_implementation().value == "am2"

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError, match="unknown manifest job keys"):
            job_from_dict({"circuit": "qft_12", "device": "G-2x2", "lasers": 9})

    def test_job_mapping_beats_defaults_initial_mapping(self):
        """A job's 'mapping' must not be overridden by a defaults-level
        'initial_mapping' (the two keys are aliases)."""
        job = job_from_dict(
            {"circuit": "qft_12", "mapping": "gathering"},
            defaults={"device": "G-2x2", "initial_mapping": "sta"},
        )
        assert job.initial_mapping == "gathering"

    def test_circuit_and_device_required(self):
        with pytest.raises(ReproError, match="'circuit'"):
            job_from_dict({"device": "G-2x2"})
        with pytest.raises(ReproError, match="'device'"):
            job_from_dict({"circuit": "qft_12"})

    def test_config_and_heating_dicts(self):
        job = job_from_dict(
            {
                "circuit": "qft_12",
                "device": "G-2x2",
                "config": {"lookahead_depth": 0, "weight_ratio": 1000.0},
                "heating": {"k1": 0.2},
            }
        )
        assert job.config is not None
        assert job.config.scheduler.lookahead_depth == 0
        assert job.config.scheduler.weights.ratio == pytest.approx(1000.0)
        assert job.heating is not None and job.heating.k1 == 0.2

    def test_bad_heating_key_rejected(self):
        with pytest.raises(ReproError, match="heating"):
            job_from_dict(
                {"circuit": "qft_12", "device": "G-2x2", "heating": {"quanta": 1}}
            )


class TestSSyncConfigFromDict:
    def test_top_level_and_scheduler_keys(self):
        config = ssync_config_from_dict(
            {"default_mapping": "sta", "decay_delta": 0.01, "stall_limit": 9}
        )
        assert config.default_mapping == "sta"
        assert config.scheduler.decay_delta == 0.01
        assert config.scheduler.stall_limit == 9

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError, match="unknown S-SYNC config key"):
            ssync_config_from_dict({"temperature": 3})


class TestManifestDocuments:
    def test_bare_list_accepted(self):
        jobs = jobs_from_manifest([{"circuit": "qft_12", "device": "G-2x2"}])
        assert len(jobs) == 1

    def test_jobs_list_required(self):
        with pytest.raises(ReproError, match="'jobs'"):
            jobs_from_manifest({"defaults": {"device": "G-2x2"}})

    def test_empty_manifest_rejected(self):
        with pytest.raises(ReproError, match="no jobs"):
            jobs_from_manifest({"jobs": []})

    def test_job_errors_name_the_index(self):
        with pytest.raises(ReproError, match="job #1"):
            jobs_from_manifest(
                {"jobs": [{"circuit": "qft_12", "device": "G-2x2"}, {"device": "G-2x2"}]}
            )


class TestLoadManifest:
    def test_json_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps(
                {
                    "defaults": {"device": "G-2x2"},
                    "jobs": [{"circuit": "qft_12"}, {"circuit": "bv_16", "device": "L-4"}],
                }
            )
        )
        jobs = load_manifest(path)
        assert [job.circuit for job in jobs] == ["qft_12", "bv_16"]
        assert jobs[0].device == "G-2x2"

    def test_yaml_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "m.yaml"
        path.write_text(
            "defaults:\n  device: G-2x2\njobs:\n  - circuit: qft_12\n  - circuit: bv_16\n"
        )
        assert len(load_manifest(path)) == 2

    def test_qasm_circuit_loaded_eagerly(self, tmp_path):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(circuit_to_qasm(ghz_circuit(6)))
        path = tmp_path / "m.json"
        path.write_text(json.dumps([{"circuit": str(qasm), "device": "G-2x2"}]))
        job = load_manifest(path)[0]
        assert isinstance(job.circuit, QuantumCircuit)
        assert job.circuit.num_qubits == 6

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_manifest(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(ReproError, match="invalid JSON"):
            load_manifest(path)


class TestTypedManifestErrors:
    """Every malformed-manifest path raises ManifestError (a ReproError).

    Service front-ends rely on exactly this type to map client mistakes
    onto structured 4xx responses, so the distinction is load-bearing.
    """

    def test_manifest_error_subclasses_repro_error(self):
        assert issubclass(ManifestError, ReproError)

    def test_malformed_json_text(self):
        with pytest.raises(ManifestError, match="invalid JSON"):
            jobs_from_manifest_text("{not json")

    def test_non_utf8_body(self):
        with pytest.raises(ManifestError, match="UTF-8"):
            jobs_from_manifest_text(b"\xff\xfe{}")

    def test_unknown_compiler_name(self):
        with pytest.raises(ManifestError, match="unknown compiler"):
            job_from_dict({"circuit": "qft_8", "device": "G-2x2", "compiler": "nope"})

    def test_bad_device_spec(self):
        with pytest.raises(ManifestError, match="invalid device spec"):
            job_from_dict({"circuit": "qft_8", "device": "Z-99"})

    def test_bad_capacity_in_device_spec(self):
        with pytest.raises(ManifestError, match="invalid device spec"):
            job_from_dict({"circuit": "qft_8", "device": "G-2x2", "capacity": -3})

    def test_unknown_job_keys(self):
        with pytest.raises(ManifestError, match="unknown manifest job keys"):
            job_from_dict({"circuit": "qft_8", "device": "G-2x2", "flavour": "spicy"})

    def test_wrong_document_shape(self):
        with pytest.raises(ManifestError, match="JSON object or a list"):
            jobs_from_manifest("just a string")

    def test_job_index_is_reported(self):
        document = {
            "defaults": {"device": "G-2x2"},
            "jobs": [{"circuit": "qft_8"}, {"circuit": "qft_8", "compiler": "nope"}],
        }
        with pytest.raises(ManifestError, match="job #1"):
            jobs_from_manifest(document)

    def test_text_parsing_matches_document_parsing(self):
        document = {"jobs": [{"circuit": "qft_8", "device": "G-2x2"}]}
        from_text = jobs_from_manifest_text(json.dumps(document))
        from_document = jobs_from_manifest(document)
        assert [j.fingerprint() for j in from_text] == [
            j.fingerprint() for j in from_document
        ]

    def test_load_manifest_wraps_json_errors_with_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{oops")
        with pytest.raises(ManifestError, match="broken.json"):
            load_manifest(path)
