"""The network cache tier: seam, HTTP transport, and degraded modes.

The contract under test is the one the fleet depends on: a reachable
tier turns any peer's compilation into a local hit, and a dead, slow or
corrupt tier silently degrades the cache to local-only behaviour —
never a wrong result, never an exception on the lookup path.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime.cache import CachedCompilation, ScheduleCache
from repro.runtime.cache_tier import HttpCacheTier
from repro.runtime.jobs import CompileJob, compile_job
from repro.service.server import make_server


@pytest.fixture(scope="module")
def entry() -> CachedCompilation:
    result = compile_job(CompileJob(circuit="qft_4", device="G-2x2", capacity=6))
    return CachedCompilation.from_result(result)


@pytest.fixture()
def tier_server(tmp_path):
    """A service whose /v1/cache endpoints back an HttpCacheTier."""
    server = make_server(workers=1, port=0, cache_dir=tmp_path, journal=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(timeout=5)


FP_A = "aa" * 32
FP_B = "bb" * 32


class FakeTier:
    """An in-memory CacheTier for seam tests without sockets."""

    def __init__(self) -> None:
        self.blobs: dict[str, bytes] = {}
        self.loads = 0
        self.stores = 0

    def load(self, fingerprint: str) -> "bytes | None":
        self.loads += 1
        return self.blobs.get(fingerprint)

    def store(self, fingerprint: str, payload: bytes) -> bool:
        self.stores += 1
        self.blobs[fingerprint] = payload
        return True


class TestTierSeam:
    def test_tier_hit_promotes_to_memory_and_disk(self, entry, tmp_path):
        tier = FakeTier()
        tier.blobs[FP_A] = entry.to_bytes()
        cache = ScheduleCache(max_entries=4, directory=tmp_path, tiers=(tier,))
        got, where = cache.lookup(FP_A)
        assert where == "network"
        assert got.schedule_blob == entry.schedule_blob
        assert cache.stats.network_hits == 1 and cache.stats.hits == 1
        # Promoted: the next lookup is a memory hit, no tier round-trip.
        _, where = cache.lookup(FP_A)
        assert where == "memory" and tier.loads == 1
        # ... and the disk tier now holds a local copy for restarts.
        assert (tmp_path / f"{FP_A}.sched").exists()

    def test_put_propagates_encoded_entry_to_tiers(self, entry, tmp_path):
        tier = FakeTier()
        cache = ScheduleCache(max_entries=4, directory=tmp_path, tiers=(tier,))
        cache.put(FP_A, entry)
        assert tier.blobs[FP_A] == entry.to_bytes()
        assert cache.stats.network_stores == 1
        # A peer cache (no shared disk) can now serve it from the tier.
        peer = ScheduleCache(max_entries=4, tiers=(tier,))
        got, where = peer.lookup(FP_A)
        assert where == "network" and got.statistics == entry.statistics

    def test_put_without_propagation_stays_local(self, entry, tier_server):
        """The server-side PUT path must not echo entries back out."""
        tier = FakeTier()
        cache = ScheduleCache(max_entries=4, tiers=(tier,))
        cache.put(FP_A, entry, propagate=False)
        assert tier.stores == 0 and FP_A not in tier.blobs

    def test_corrupt_tier_entry_is_a_miss_not_a_crash(self, tmp_path):
        tier = FakeTier()
        tier.blobs[FP_A] = b"RCEN\x03 definitely not a real entry"
        tier.blobs[FP_B] = b"not even magic"
        cache = ScheduleCache(max_entries=4, directory=tmp_path, tiers=(tier,))
        assert cache.lookup(FP_A) == (None, None)
        assert cache.lookup(FP_B) == (None, None)
        assert cache.stats.network_errors == 2
        assert cache.stats.misses == 2
        # Nothing corrupt was promoted anywhere.
        assert len(cache) == 0 and cache.disk_entries() == 0

    def test_tier_miss_counts_and_falls_through(self, tmp_path):
        tier = FakeTier()
        cache = ScheduleCache(max_entries=4, directory=tmp_path, tiers=(tier,))
        assert cache.get(FP_A) is None
        assert cache.stats.network_misses == 1
        assert cache.stats.misses == 1


class TestHttpCacheTier:
    def test_round_trip_through_a_live_service(self, entry, tier_server):
        tier = HttpCacheTier(tier_server.url)
        payload = entry.to_bytes()
        assert tier.load(FP_A) is None  # nothing there yet
        assert tier.store(FP_A, payload)
        assert tier.load(FP_A) == payload
        # The server parsed and re-encoded through its own cache.
        assert tier_server.service.engine.cache.peek(FP_A) is not None

    def test_server_refuses_corrupt_put(self, tier_server):
        tier = HttpCacheTier(tier_server.url)
        assert not tier.store(FP_A, b"garbage")
        assert tier.load(FP_A) is None

    def test_two_caches_share_compilations_through_one_tier(
        self, entry, tier_server, tmp_path
    ):
        """The fleet scenario: worker A compiles, worker B hits."""
        a = ScheduleCache(
            max_entries=4,
            directory=tmp_path / "a",
            tiers=(HttpCacheTier(tier_server.url),),
        )
        b = ScheduleCache(
            max_entries=4,
            directory=tmp_path / "b",
            tiers=(HttpCacheTier(tier_server.url),),
        )
        a.put(FP_B, entry)
        got, where = b.lookup(FP_B)
        assert where == "network"
        assert got.schedule_blob == entry.schedule_blob
        assert got.to_bytes() == entry.to_bytes()

    def test_down_tier_degrades_to_local_with_cooldown(self, entry):
        dead = HttpCacheTier("http://127.0.0.1:9", timeout=0.2, failure_cooldown_s=60)
        cache = ScheduleCache(max_entries=4, tiers=(dead,))
        assert cache.lookup(FP_A) == (None, None)
        assert dead.failures == 1
        # Inside the cooldown window further lookups don't retry the socket.
        assert cache.lookup(FP_A) == (None, None)
        assert dead.failures == 1
        # Local operation is unaffected: store + hit still work.
        cache.put(FP_A, entry)
        got, where = cache.lookup(FP_A)
        assert where == "memory" and got is not None
        assert cache.stats.network_errors >= 1  # the failed store

    def test_cooldown_expires_and_the_tier_recovers(self, entry, tier_server):
        tier = HttpCacheTier(tier_server.url, timeout=2.0, failure_cooldown_s=0.05)
        tier._down_until = time.monotonic() + 0.05  # as if it just failed
        assert tier.load(FP_A) is None  # still cooling down
        time.sleep(0.06)
        assert tier.store(FP_A, entry.to_bytes())
        assert tier.load(FP_A) == entry.to_bytes()

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            HttpCacheTier("https://example.com")
        with pytest.raises(ValueError):
            HttpCacheTier("http://")
