"""Property-based tests for the device occupancy state invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import DeviceState
from repro.exceptions import StateError
from repro.hardware.topologies import grid_device, linear_device, star_device


@st.composite
def devices(draw):
    """Small devices of each topology family."""
    kind = draw(st.sampled_from(["linear", "grid", "star"]))
    capacity = draw(st.integers(min_value=2, max_value=6))
    if kind == "linear":
        return linear_device(draw(st.integers(2, 5)), capacity)
    if kind == "grid":
        return grid_device(draw(st.integers(1, 3)), draw(st.integers(2, 3)), capacity)
    return star_device(draw(st.integers(2, 5)), capacity)


@st.composite
def populated_states(draw):
    """A device plus a legal random placement of qubits leaving ≥1 free slot."""
    device = draw(devices())
    total = device.total_capacity
    num_qubits = draw(st.integers(min_value=1, max_value=total - 1))
    state = DeviceState(device)
    trap_ids = [t.trap_id for t in device.traps]
    for qubit in range(num_qubits):
        candidates = [t for t in trap_ids if state.has_space(t)]
        trap = draw(st.sampled_from(candidates))
        state.place(qubit, trap)
    return device, state, num_qubits


@st.composite
def state_operations(draw):
    """A populated state plus a random sequence of legal swap/shuttle moves."""
    device, state, num_qubits = draw(populated_states())
    ops = draw(st.integers(min_value=0, max_value=20))
    moves = []
    for _ in range(ops):
        moves.append(draw(st.tuples(st.integers(0, 1), st.integers(0, 10_000))))
    return device, state, num_qubits, moves


class TestPlacementInvariants:
    @given(populated_states())
    @settings(max_examples=60, deadline=None)
    def test_every_qubit_in_exactly_one_trap(self, data):
        device, state, num_qubits = data
        state.validate()
        assert len(state.all_qubits()) == num_qubits
        total_ions = sum(state.chain_length(t.trap_id) for t in device.traps)
        assert total_ions == num_qubits

    @given(populated_states())
    @settings(max_examples=60, deadline=None)
    def test_free_slots_conserved(self, data):
        device, state, num_qubits = data
        free = sum(state.free_slots(t.trap_id) for t in device.traps)
        assert free == device.total_capacity - num_qubits
        assert free >= 1


class TestMutationInvariants:
    @given(state_operations())
    @settings(max_examples=60, deadline=None)
    def test_random_legal_moves_preserve_consistency(self, data):
        device, state, num_qubits, moves = data
        for kind, selector in moves:
            qubits = sorted(state.all_qubits())
            if kind == 0 and len(qubits) >= 2:
                # SWAP two qubits sharing a trap, if any such pair exists.
                qubit_a = qubits[selector % len(qubits)]
                trap = state.trap_of(qubit_a)
                chain = state.chain(trap)
                if len(chain) >= 2:
                    qubit_b = chain[(chain.index(qubit_a) + 1) % len(chain)]
                    if qubit_b != qubit_a:
                        state.swap_qubits(qubit_a, qubit_b)
            else:
                # Shuttle an end ion to a neighbour with room, if possible.
                qubit = qubits[selector % len(qubits)]
                trap = state.trap_of(qubit)
                for neighbour in device.neighbors(trap):
                    end = state.facing_end(trap, neighbour)
                    if state.end_qubit(trap, end) == qubit and state.has_space(neighbour):
                        state.shuttle(qubit, neighbour)
                        break
            state.validate()
        # Conservation of ions after arbitrary legal move sequences.
        assert len(state.all_qubits()) == num_qubits

    @given(populated_states())
    @settings(max_examples=40, deadline=None)
    def test_copy_isolation(self, data):
        _, state, _ = data
        clone = state.copy()
        before = state.occupancy()
        qubits = sorted(clone.all_qubits())
        if len(qubits) >= 2:
            trap = clone.trap_of(qubits[0])
            chain = clone.chain(trap)
            if len(chain) >= 2:
                clone.swap_qubits(chain[0], chain[1])
        assert state.occupancy() == before

    @given(populated_states())
    @settings(max_examples=40, deadline=None)
    def test_shuttle_rejections_are_safe(self, data):
        device, state, _ = data
        qubits = sorted(state.all_qubits())
        qubit = qubits[0]
        trap = state.trap_of(qubit)
        before = state.occupancy()
        for target in [t.trap_id for t in device.traps]:
            try:
                state.shuttle(qubit, target)
            except StateError:
                assert state.occupancy() == before
            else:
                break
