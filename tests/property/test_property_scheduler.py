"""Property-based tests: every routable circuit compiles to a valid schedule.

The central soundness property of the whole library: for any random
circuit and any device with at least one spare slot, every compiler
produces a schedule that (a) replays legally on the device, (b) executes
exactly the circuit's two-qubit gates in a dependency-respecting order,
and (c) reports metadata the noise model can trust.  Evaluating such a
schedule always yields a success rate in [0, 1] and a positive makespan.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DaiCompiler, MuraliCompiler
from repro.circuit.library import random_circuit
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.core.scheduler import SCHEDULER_BACKENDS, SchedulerConfig
from repro.hardware.topologies import grid_device, linear_device, star_device
from repro.noise.evaluator import evaluate_schedule
from repro.schedule.serialize import schedule_to_bytes
from repro.schedule.verify import verify_schedule


@st.composite
def compile_cases(draw):
    """(device, circuit) pairs that are guaranteed to fit."""
    kind = draw(st.sampled_from(["linear", "grid", "star"]))
    capacity = draw(st.integers(min_value=3, max_value=7))
    if kind == "linear":
        device = linear_device(draw(st.integers(2, 4)), capacity)
    elif kind == "grid":
        device = grid_device(2, draw(st.integers(2, 3)), capacity)
    else:
        device = star_device(draw(st.integers(3, 5)), capacity)
    max_qubits = min(device.total_capacity - 2, 16)
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    local = draw(st.booleans())
    circuit = random_circuit(
        num_qubits, num_gates, seed=seed, locality=2 if local else None
    )
    return device, circuit


class TestSchedulerSoundness:
    @given(compile_cases())
    @settings(max_examples=40, deadline=None)
    def test_ssync_schedules_are_valid_and_complete(self, case):
        device, circuit = case
        result = SSyncCompiler(device).compile(circuit)
        report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates
        assert report.final_state.occupancy() == result.final_state.occupancy()

    @given(compile_cases())
    @settings(max_examples=20, deadline=None)
    def test_murali_schedules_are_valid_and_complete(self, case):
        device, circuit = case
        result = MuraliCompiler(device).compile(circuit)
        report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates

    @given(compile_cases())
    @settings(max_examples=20, deadline=None)
    def test_dai_schedules_are_valid_and_complete(self, case):
        device, circuit = case
        result = DaiCompiler(device).compile(circuit)
        report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates

    @given(compile_cases())
    @settings(max_examples=25, deadline=None)
    def test_all_backends_agree_bit_for_bit(self, case):
        """Three-way parity: naive, incremental and flat are one scheduler.

        The same invariant the fuzzing oracle (:mod:`repro.fuzz.oracle`)
        enforces on generated scenarios, here driven by hypothesis:
        every backend must emit byte-identical schedules, identical
        scheduler statistics and identical placements.
        """
        device, circuit = case
        results = {}
        for backend in SCHEDULER_BACKENDS:
            config = SSyncConfig(scheduler=SchedulerConfig(backend=backend))
            results[backend] = SSyncCompiler(device, config).compile(circuit)
        reference = results["naive"]
        reference_bytes = schedule_to_bytes(reference.schedule)
        for backend in SCHEDULER_BACKENDS:
            result = results[backend]
            assert schedule_to_bytes(result.schedule) == reference_bytes, backend
            assert result.statistics == reference.statistics, backend
            assert result.initial_state.occupancy() == reference.initial_state.occupancy()
            assert result.final_state.occupancy() == reference.final_state.occupancy()

    @given(compile_cases())
    @settings(max_examples=25, deadline=None)
    def test_evaluation_is_well_formed(self, case):
        device, circuit = case
        result = SSyncCompiler(device).compile(circuit)
        for implementation in ("fm", "am2"):
            evaluation = evaluate_schedule(result.schedule, gate_implementation=implementation)
            assert 0.0 <= evaluation.success_rate <= 1.0
            assert evaluation.execution_time_us >= 0.0
            assert evaluation.gate_count_2q == circuit.num_two_qubit_gates
            assert evaluation.total_gate_time_us >= 0.0

    @given(compile_cases())
    @settings(max_examples=25, deadline=None)
    def test_idealised_bounds_dominate_real_success_rate(self, case):
        device, circuit = case
        result = SSyncCompiler(device).compile(circuit)
        real = evaluate_schedule(result.schedule).success_rate
        ideal = evaluate_schedule(
            result.schedule, ignore_shuttle_cost=True, ignore_swap_cost=True
        ).success_rate
        assert ideal >= real

    @given(compile_cases(), st.sampled_from(["gathering", "even-divided", "sta"]))
    @settings(max_examples=25, deadline=None)
    def test_all_initial_mappings_route_successfully(self, case, mapping):
        device, circuit = case
        result = SSyncCompiler(device).compile(circuit, initial_mapping=mapping)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)
