"""Property-based tests for the circuit IR and dependency DAG."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.circuit.library import random_circuit
from repro.circuit.qasm import circuit_to_qasm, qasm_to_circuit


@st.composite
def circuits(draw, max_qubits: int = 10, max_gates: int = 60) -> QuantumCircuit:
    """Random circuits with a mix of one- and two-qubit gates."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, name="hypothesis")
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    for _ in range(num_gates):
        if draw(st.booleans()):
            circuit.add_gate(draw(st.sampled_from(["h", "x", "t", "s"])), draw(st.integers(0, num_qubits - 1)))
        else:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.cx(a, b)
    return circuit


class TestCircuitProperties:
    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_gate_count_partition(self, circuit: QuantumCircuit):
        assert circuit.num_single_qubit_gates + circuit.num_two_qubit_gates == len(circuit)

    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_depth_bounds(self, circuit: QuantumCircuit):
        depth = circuit.depth()
        assert depth <= len(circuit)
        if len(circuit):
            assert depth >= 1
        assert circuit.depth(two_qubit_only=True) <= depth

    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_interaction_graph_weight_equals_two_qubit_count(self, circuit: QuantumCircuit):
        graph = circuit.interaction_graph()
        total_weight = sum(d["weight"] for _, _, d in graph.edges(data=True))
        assert total_weight == circuit.num_two_qubit_gates

    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_qasm_round_trip_preserves_two_qubit_structure(self, circuit: QuantumCircuit):
        parsed = qasm_to_circuit(circuit_to_qasm(circuit)) if len(circuit) else None
        if parsed is None:
            return
        assert parsed.num_qubits == circuit.num_qubits
        assert [g.qubits for g in parsed.two_qubit_gates()] == [
            g.qubits for g in circuit.two_qubit_gates()
        ]


class TestDAGProperties:
    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_executing_frontier_gates_drains_the_dag(self, circuit: QuantumCircuit):
        dag = DependencyDAG(circuit)
        executed = 0
        while not dag.is_done:
            frontier = dag.frontier()
            assert frontier, "a non-empty DAG must always expose a frontier"
            dag.execute(frontier[0].index)
            executed += 1
        assert executed == circuit.num_two_qubit_gates

    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_frontier_gates_are_pairwise_independent_per_qubit(self, circuit: QuantumCircuit):
        dag = DependencyDAG(circuit)
        frontier = dag.frontier()
        # No two frontier gates may share a qubit with an *earlier* unexecuted
        # gate — in particular the earliest gate per qubit is in the frontier.
        seen: dict[int, int] = {}
        for node in frontier:
            for q in node.gate.qubits:
                if q in seen:
                    # Two frontier gates sharing a qubit would be dependent.
                    raise AssertionError("frontier gates share a qubit")
                seen[q] = node.index

    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_topological_order_respects_program_order_per_qubit(self, circuit: QuantumCircuit):
        dag = DependencyDAG(circuit)
        order = [node.index for node in dag.topological_order()]
        position = {index: i for i, index in enumerate(order)}
        last_seen: dict[int, int] = {}
        for index in sorted(order):
            node = dag.node(index)
            for q in node.gate.qubits:
                if q in last_seen:
                    assert position[last_seen[q]] < position[index]
                last_seen[q] = index

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=80))
    @settings(max_examples=30, deadline=None)
    def test_random_circuit_generator_consistent_with_dag(self, qubits: int, gates: int):
        circuit = random_circuit(qubits, gates, seed=qubits * 1000 + gates)
        dag = DependencyDAG(circuit)
        assert dag.num_nodes == gates
