"""Property-based tests for the timing and fidelity models."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.fidelity import FidelityModel, SuccessRateAccumulator
from repro.noise.gate_times import (
    GateImplementation,
    fm_gate_time,
    two_qubit_gate_time,
)
from repro.noise.heating import HeatingParameters
from repro.noise.operation_times import OperationTimes


class TestGateTimeProperties:
    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_fm_time_has_floor(self, chain_length):
        assert fm_gate_time(chain_length) >= 100.0

    @given(
        st.sampled_from(list(GateImplementation)),
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=0, max_value=58),
    )
    @settings(max_examples=80, deadline=None)
    def test_all_durations_positive(self, implementation, chain, separation):
        assert two_qubit_gate_time(implementation, chain, separation) > 0

    @given(
        st.sampled_from(list(GateImplementation)),
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_durations_monotone_in_their_driver(self, implementation, chain, separation):
        shorter = two_qubit_gate_time(implementation, chain, separation)
        longer = two_qubit_gate_time(implementation, chain + 5, separation + 5)
        assert longer >= shorter


class TestShuttleTimeProperties:
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_shuttle_time_exceeds_split_plus_merge(self, segments, junctions):
        times = OperationTimes()
        assert times.shuttle_us(segments, junctions) >= times.split_us + times.merge_us

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_shuttle_time_monotone(self, segments, junctions):
        times = OperationTimes()
        base = times.shuttle_us(segments, junctions)
        assert times.shuttle_us(segments + 1, junctions) >= base
        assert times.shuttle_us(segments, junctions + 1) >= base


class TestFidelityProperties:
    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.integers(min_value=2, max_value=60),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_fidelity_in_unit_interval(self, gate_time, chain, phonon, idle):
        model = FidelityModel()
        value = model.two_qubit_gate_fidelity(gate_time, chain, phonon, idle)
        assert 0.0 < value <= 1.0

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.integers(min_value=2, max_value=60),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_fidelity_monotone_in_heat_and_size(self, gate_time, chain, phonon):
        model = FidelityModel()
        base = model.two_qubit_gate_fidelity(gate_time, chain, phonon)
        hotter = model.two_qubit_gate_fidelity(gate_time, chain, phonon + 1.0)
        longer = model.two_qubit_gate_fidelity(gate_time, chain + 5, phonon)
        slower = model.two_qubit_gate_fidelity(gate_time + 1000.0, chain, phonon)
        assert hotter <= base
        assert longer <= base
        assert slower <= base

    @given(st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_accumulator_matches_direct_product(self, fidelities):
        accumulator = SuccessRateAccumulator()
        product = 1.0
        for value in fidelities:
            accumulator.multiply(value)
            product *= value
        assert abs(accumulator.success_rate - product) <= 1e-9 * max(product, 1e-30) + 1e-12

    @given(st.floats(min_value=1e-6, max_value=0.5), st.floats(min_value=1e-6, max_value=0.5))
    @settings(max_examples=40, deadline=None)
    def test_heating_parameters_scale_amplitude(self, small, large):
        lo, hi = sorted((small, large))
        chain = 12
        assert HeatingParameters(amplitude_scale=lo).amplitude_factor(chain) <= HeatingParameters(
            amplitude_scale=hi
        ).amplitude_factor(chain)
