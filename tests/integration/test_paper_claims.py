"""Integration tests asserting the paper's qualitative claims hold.

These tests do not chase exact figures (our baselines are reimplemented
and the circuits use slightly different decompositions); they check the
*shape* of the results the paper reports:

* S-SYNC needs far fewer shuttles than the Murali et al. baseline
  (Fig. 8, headline "3.69x on average"),
* S-SYNC needs fewer SWAPs than the Murali et al. baseline (Fig. 9),
* S-SYNC's success rate beats the baselines on communication-heavy
  workloads (Fig. 10, headline "1.73x on average"),
* gathering mapping reduces shuttles but hurts execution time versus
  even-divided mapping under FM gates (Fig. 12),
* AM2 beats PM for nearest-neighbour workloads while FM/PM are preferable
  for long-range workloads (Fig. 13),
* S-SYNC sits between the real and ideal bounds of the optimality
  analysis and tracks the perfect-SWAP bound closely (Fig. 16).
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import compare_compilers, improvement_factors
from repro.analysis.optimality import optimality_report
from repro.analysis.sweeps import gate_implementation_sweep, initial_mapping_sweep
from repro.circuit.library import build_benchmark, qft_circuit
from repro.hardware.presets import paper_device


@pytest.fixture(scope="module")
def comparison_records():
    """Compiler comparison on a representative workload set (module-scoped: compiled once)."""
    workloads = {
        "qft_24": "G-2x3",
        "bv_32": "G-2x3",
        "adder_16": "S-4",
        "qaoa_32": "G-2x2",
    }
    records = {}
    for bench, device_name in workloads.items():
        circuit = build_benchmark(bench)
        device = paper_device(device_name)
        records[bench] = compare_compilers(circuit, device)
    return records


def _by_compiler(records):
    return {r.compiler: r for r in records}


class TestHeadlineClaims:
    def test_ssync_reduces_shuttles_on_communication_heavy_workloads(self, comparison_records):
        # Long-distance and short-distance ripple workloads are where the
        # paper reports the largest shuttle reductions; QAOA's ring pattern
        # can be a near-tie, so it is covered by the average-reduction test.
        for bench in ("qft_24", "bv_32", "adder_16"):
            by = _by_compiler(comparison_records[bench])
            assert by["s-sync"].shuttles < by["murali"].shuttles, bench

    def test_ssync_reduces_swaps_vs_murali(self, comparison_records):
        for bench, records in comparison_records.items():
            by = _by_compiler(records)
            assert by["s-sync"].swaps < by["murali"].swaps, bench

    def test_ssync_improves_success_rate_on_average(self, comparison_records):
        gains = []
        for records in comparison_records.values():
            factors = improvement_factors(records)
            gains.append(factors["success_rate_gain"])
        mean_gain = sum(gains) / len(gains)
        assert mean_gain > 1.5

    def test_average_shuttle_reduction_is_large(self, comparison_records):
        reductions = []
        for records in comparison_records.values():
            by = _by_compiler(records)
            if by["s-sync"].shuttles > 0:
                reductions.append(by["murali"].shuttles / by["s-sync"].shuttles)
        assert sum(reductions) / len(reductions) > 2.0

    def test_ssync_never_far_behind_dai(self, comparison_records):
        # Dai et al. can match S-SYNC on locality-friendly workloads, but it
        # should never win by a large margin on shuttles.
        for bench, records in comparison_records.items():
            by = _by_compiler(records)
            assert by["s-sync"].shuttles <= 2 * max(by["dai"].shuttles, 1), bench


class TestMappingClaims:
    def test_gathering_reduces_shuttles_but_costs_time(self):
        records = initial_mapping_sweep(
            qft_circuit,
            circuit_sizes=(40,),
            device_name="G-2x3",
            mappings=("gathering", "even-divided"),
        )
        by = {r.label: r for r in records}
        assert by["gathering"].shuttles <= by["even-divided"].shuttles
        assert by["gathering"].execution_time_us >= by["even-divided"].execution_time_us


class TestGateImplementationClaims:
    def test_distance_sensitive_am_gates_lose_on_long_range_workloads(self):
        device = paper_device("G-2x3")
        nearest = build_benchmark("adder_16")
        long_range = build_benchmark("qft_24")
        records = gate_implementation_sweep(
            [nearest, long_range], device, implementations=("fm", "am1", "am2", "pm")
        )
        rates = {(r.circuit, r.label): r.success_rate for r in records}
        # AM1's strong distance dependence makes it the worst choice for the
        # long-range QFT (Fig. 13: FM/PM preferable for long-range gates).
        assert rates[(long_range.name, "am1")] < rates[(long_range.name, "pm")]
        assert rates[(long_range.name, "am1")] < rates[(long_range.name, "fm")]
        # For short-distance workloads the faster AM2 gate beats AM1 and is
        # competitive with PM (Fig. 13: AM gates favoured for near-term,
        # short-range applications).
        assert rates[(nearest.name, "am2")] > rates[(nearest.name, "am1")]
        assert rates[(nearest.name, "am2")] >= 0.95 * rates[(nearest.name, "pm")]


class TestOptimalityClaims:
    def test_ssync_close_to_perfect_swap_bound(self):
        device = paper_device("G-2x2")
        report = optimality_report(build_benchmark("bv_32"), device)
        assert report.s_sync <= report.perfect_swap <= report.ideal
        # The paper observes S-SYNC closely matches the perfect-SWAP bound.
        assert report.perfect_swap / report.s_sync < 1.5
