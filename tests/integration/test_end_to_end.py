"""Integration tests: full compile → verify → evaluate pipelines."""

from __future__ import annotations

import pytest

from repro import (
    DaiCompiler,
    GateImplementation,
    MuraliCompiler,
    SSyncCompiler,
    evaluate_schedule,
    paper_device,
    verify_schedule,
)
from repro.circuit.library import build_benchmark, ghz_circuit, random_circuit
from repro.hardware.presets import preset_names


ALL_COMPILERS = (
    ("s-sync", lambda device: SSyncCompiler(device)),
    ("murali", lambda device: MuraliCompiler(device)),
    ("dai", lambda device: DaiCompiler(device)),
)


class TestPipelines:
    @pytest.mark.parametrize("bench", ["qft_16", "adder_8", "bv_24", "qaoa_24", "alt_24"])
    @pytest.mark.parametrize("device_name", ["L-4", "G-2x3", "S-4"])
    def test_ssync_pipeline_across_devices(self, bench, device_name):
        circuit = build_benchmark(bench)
        device = paper_device(device_name)
        result = SSyncCompiler(device).compile(circuit)
        report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        evaluation = evaluate_schedule(result.schedule)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates
        assert 0.0 <= evaluation.success_rate <= 1.0
        assert evaluation.execution_time_us > 0

    @pytest.mark.parametrize("name,factory", ALL_COMPILERS, ids=[n for n, _ in ALL_COMPILERS])
    def test_all_compilers_agree_on_gate_counts(self, name, factory):
        circuit = build_benchmark("qft_20")
        device = paper_device("G-2x2")
        result = factory(device).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert result.two_qubit_gate_count == circuit.num_two_qubit_gates

    def test_every_paper_preset_is_usable(self):
        circuit = ghz_circuit(24, ladder=False)
        for name in preset_names():
            device = paper_device(name)
            result = SSyncCompiler(device).compile(circuit)
            verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_one_schedule_many_noise_models(self):
        circuit = build_benchmark("qft_16")
        device = paper_device("G-2x3")
        result = SSyncCompiler(device).compile(circuit)
        rates = {
            impl: evaluate_schedule(result.schedule, gate_implementation=impl).success_rate
            for impl in GateImplementation
        }
        assert len(rates) == 4
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_compiling_twice_is_deterministic(self):
        circuit = random_circuit(20, 120, seed=42)
        device = paper_device("G-2x2")
        first = SSyncCompiler(device).compile(circuit)
        second = SSyncCompiler(device).compile(circuit)
        assert first.shuttle_count == second.shuttle_count
        assert first.swap_count == second.swap_count
        assert [op.kind for op in first.schedule] == [op.kind for op in second.schedule]

    def test_mapping_strategies_all_produce_valid_schedules(self):
        circuit = build_benchmark("adder_12")
        device = paper_device("G-2x3")
        for mapping in ("gathering", "even-divided", "sta"):
            result = SSyncCompiler(device).compile(circuit, initial_mapping=mapping)
            verify_schedule(result.schedule, result.initial_state, circuit=circuit)
