"""Minimizer tests: synthetic failing oracles, 1-minimality, guardrails.

The central assertion (an ISSUE acceptance item): after minimization
against an injected synthetic oracle, the shrunk scenario is *minimal* —
removing any remaining gate or any remaining trap either breaks
well-formedness or makes the synthetic failure disappear.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.fuzz import Scenario, ScenarioError, ScenarioGenerator, minimize_scenario
from repro.fuzz.minimize import _without_trap
from repro.hardware.topologies import grid_device
from repro.schedule.serialize import device_to_dict


def _synthetic_failing(scenario: Scenario) -> bool:
    """Fails iff >= 2 cx gates touch qubit 0 AND the device has >= 3 traps."""
    gates = scenario.circuit.get("gates", [])
    hot = sum(1 for name, qubits, _ in gates if name == "cx" and 0 in qubits)
    return hot >= 2 and len(scenario.device["traps"]) >= 3


def _failing_seed_scenario() -> Scenario:
    """A generated scenario that trips the synthetic oracle."""
    for scenario in ScenarioGenerator(3):
        explicit = scenario.explicit()
        if _synthetic_failing(explicit):
            return explicit
    raise AssertionError("unreachable")


class TestMinimization:
    def test_shrinks_to_the_known_minimum(self):
        scenario = _failing_seed_scenario()
        assert len(scenario.circuit["gates"]) > 10  # something to chew on
        minimized = minimize_scenario(scenario, _synthetic_failing)
        assert _synthetic_failing(minimized)
        assert minimized.is_well_formed()
        # The synthetic predicate's exact minimum: 2 gates, 3 traps.
        assert len(minimized.circuit["gates"]) == 2
        assert len(minimized.device["traps"]) == 3
        assert all(name == "cx" and 0 in qubits for name, qubits, _ in minimized.circuit["gates"])

    def test_result_is_one_minimal(self):
        minimized = minimize_scenario(_failing_seed_scenario(), _synthetic_failing)

        # Removing any remaining gate makes the scenario pass.
        gates = minimized.circuit["gates"]
        for index in range(len(gates)):
            circuit = dict(minimized.circuit)
            circuit["gates"] = gates[:index] + gates[index + 1 :]
            candidate = replace(minimized, circuit=circuit)
            assert not (candidate.is_well_formed() and _synthetic_failing(candidate))

        # Removing any remaining trap makes it pass (or ill-formed).
        for trap in minimized.device["traps"]:
            candidate = replace(
                minimized, device=_without_trap(minimized.device, trap["trap_id"])
            )
            assert not (candidate.is_well_formed() and _synthetic_failing(candidate))

    def test_capacities_are_driven_down(self):
        scenario = Scenario(
            circuit={
                "kind": "gates",
                "num_qubits": 2,
                "gates": [["cx", [0, 1], []], ["cx", [1, 0], []]],
            },
            device=device_to_dict(grid_device(2, 2, 6)),
        )
        assert _synthetic_failing(scenario)
        minimized = minimize_scenario(scenario, _synthetic_failing)
        # 2 qubits + MIN_FREE_SLOTS margin over 3 surviving traps: total
        # capacity cannot shrink below 4, and the minimizer reaches it.
        assert len(minimized.device["traps"]) == 3
        assert sum(t["capacity"] for t in minimized.device["traps"]) == 4

    def test_qubits_are_compacted(self):
        scenario = Scenario(
            circuit={
                "kind": "gates",
                "num_qubits": 9,
                "gates": [["cx", [0, 7], []], ["cx", [7, 0], []], ["h", [3], []]],
            },
            device=device_to_dict(grid_device(2, 2, 4)),
        )
        minimized = minimize_scenario(scenario, _synthetic_failing)
        assert minimized.circuit["num_qubits"] == 2
        assert {q for _, qubits, _ in minimized.circuit["gates"] for q in qubits} == {0, 1}

    def test_never_proposes_ill_formed_candidates(self):
        seen: list[Scenario] = []

        def recording(scenario: Scenario) -> bool:
            seen.append(scenario)
            return _synthetic_failing(scenario)

        minimize_scenario(_failing_seed_scenario(), recording)
        assert seen, "the predicate was never probed"
        assert all(s.is_well_formed() for s in seen)

    def test_rejects_a_scenario_that_does_not_fail(self):
        scenario = ScenarioGenerator(1).next_scenario()
        with pytest.raises(ScenarioError):
            minimize_scenario(scenario, lambda s: False)

    def test_probe_budget_bounds_the_search(self):
        calls = {"n": 0}

        def counting(scenario: Scenario) -> bool:
            calls["n"] += 1
            return _synthetic_failing(scenario)

        minimize_scenario(_failing_seed_scenario(), counting, max_probes=10)
        # The initial reproduction check is not budgeted; everything
        # after it is.
        assert calls["n"] <= 11
