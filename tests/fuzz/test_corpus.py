"""The regression corpus replays green on every test run.

Each file under ``tests/fuzz/corpus/`` is a committed scenario the
differential oracle must keep passing — deterministically, so a flaky
replay is itself a failure.  Promote any minimized reproducer here once
its bug is fixed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, load_scenario, run_oracle
from repro.schedule.serialize import schedule_to_bytes
from repro.core.compiler import SSyncCompiler

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_present():
    assert len(CORPUS) >= 5, "the regression corpus went missing"


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_corpus_scenario_passes_the_oracle(path: Path):
    scenario = load_scenario(path)
    assert scenario.is_well_formed(), scenario.describe()
    report = run_oracle(scenario)
    assert report.checks, "the oracle ran no checks"


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_corpus_replay_is_deterministic(path: Path):
    """Two independent compilations of a corpus scenario are bit-identical."""
    scenario = load_scenario(path)
    device = scenario.build_device()
    first = SSyncCompiler(device).compile(scenario.build_circuit())
    second = SSyncCompiler(scenario.build_device()).compile(scenario.build_circuit())
    assert schedule_to_bytes(first.schedule) == schedule_to_bytes(second.schedule)


def test_load_corpus_sees_every_file():
    loaded = load_corpus(CORPUS_DIR)
    assert [path for path, _ in loaded] == CORPUS


def test_load_corpus_of_missing_directory_is_empty():
    assert load_corpus(CORPUS_DIR / "does-not-exist") == []
