"""Tests for the differential oracle: passing cases, and every failure mode."""

from __future__ import annotations

import pytest

import repro.fuzz.oracle as oracle_module
from repro.core.scheduler import SCHEDULER_BACKENDS
from repro.fuzz import (
    OracleFailure,
    Scenario,
    ScenarioGenerator,
    oracle_failing,
    run_oracle,
)
from repro.hardware.topologies import linear_device
from repro.schedule.serialize import device_to_dict, schedule_to_bytes


def _small_scenario() -> Scenario:
    return Scenario(
        circuit={"kind": "ghz", "num_qubits": 4, "ladder": True},
        device=device_to_dict(linear_device(3, 3)),
        name="oracle-unit",
    )


class TestOraclePasses:
    def test_clean_scenario_reports_every_check(self):
        report = run_oracle(_small_scenario())
        assert report.two_qubit_gates == 3
        assert report.operations > 0
        assert set(report.backends) == set(SCHEDULER_BACKENDS)
        names = set(report.checks)
        # One entry per check family must be present.
        assert {"compile:naive", "compile:flat", "compile:incremental"} <= names
        assert {"parity:flat", "parity:incremental"} <= names
        assert {"verify:s-sync", "codec:binary", "codec:json"} <= names
        assert {"noise:s-sync:fm", "noise:s-sync:am2"} <= names
        assert {"compile:murali", "verify:murali", "compile:dai", "verify:dai"} <= names

    def test_generated_scenarios_pass(self):
        for scenario in ScenarioGenerator(123).generate(8):
            run_oracle(scenario)

    def test_oracle_failing_predicate_is_false_on_clean_scenarios(self):
        assert oracle_failing(_small_scenario()) is False

    def test_oracle_failing_predicate_is_false_on_ill_formed(self):
        scenario = Scenario(
            circuit={"kind": "ghz", "num_qubits": 12},  # does not fit L-3 cap 3
            device=device_to_dict(linear_device(3, 3)),
        )
        assert not scenario.is_well_formed()
        assert oracle_failing(scenario) is False


class TestOracleFailures:
    def test_backend_parity_violation_is_caught(self, monkeypatch):
        """A backend emitting different bytes must trip ``parity:*``."""
        calls = {"n": 0}
        real = schedule_to_bytes

        def flaky(schedule):
            calls["n"] += 1
            data = real(schedule)
            # The reference encoding is call #1; corrupt a later call so
            # one backend's bytes appear to differ.
            return data + b"x" if calls["n"] == 2 else data

        monkeypatch.setattr(oracle_module, "schedule_to_bytes", flaky)
        with pytest.raises(OracleFailure) as excinfo:
            run_oracle(_small_scenario())
        assert excinfo.value.check.startswith("parity:")

    def test_compiler_crash_is_folded_into_oracle_failure(self, monkeypatch):
        def boom(*args, **kwargs):
            raise IndexError("scheduler core bug")

        monkeypatch.setattr(oracle_module.SSyncCompiler, "compile", boom)
        with pytest.raises(OracleFailure) as excinfo:
            run_oracle(_small_scenario())
        assert excinfo.value.check == "compile:naive"
        assert "IndexError" in excinfo.value.detail

    def test_failure_carries_the_scenario(self, monkeypatch):
        monkeypatch.setattr(
            oracle_module,
            "verify_schedule",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("bad replay")),
        )
        scenario = _small_scenario()
        with pytest.raises(OracleFailure) as excinfo:
            run_oracle(scenario)
        assert excinfo.value.scenario is scenario
        assert excinfo.value.check == "verify:s-sync"

    def test_predicate_is_true_under_an_injected_bug(self, monkeypatch):
        monkeypatch.setattr(
            oracle_module.SSyncCompiler,
            "compile",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        assert oracle_failing(_small_scenario()) is True
