"""Tests for the scenario model and the seeded scenario generator."""

from __future__ import annotations

import pytest

from repro.fuzz import GeneratorLimits, Scenario, ScenarioError, ScenarioGenerator
from repro.fuzz.scenario import DEVICE_FAMILIES, MIN_FREE_SLOTS


class TestScenarioGenerator:
    def test_same_seed_same_stream(self):
        first = [s.to_dict() for s in ScenarioGenerator(42).generate(25)]
        second = [s.to_dict() for s in ScenarioGenerator(42).generate(25)]
        assert first == second

    def test_different_seeds_diverge(self):
        a = [s.fingerprint() for s in ScenarioGenerator(0).generate(10)]
        b = [s.fingerprint() for s in ScenarioGenerator(1).generate(10)]
        assert a != b

    def test_every_scenario_is_well_formed(self):
        for scenario in ScenarioGenerator(7).generate(40):
            assert scenario.is_well_formed(), scenario.describe()
            device = scenario.build_device()
            circuit = scenario.build_circuit()
            assert device.total_capacity >= circuit.num_qubits + MIN_FREE_SLOTS

    def test_covers_every_device_family(self):
        # 80 draws over 5 families: each family should appear.
        names = {s.device["name"][0] for s in ScenarioGenerator(0).generate(80)}
        assert {"L", "R", "G", "S", "H"} <= names
        assert len(DEVICE_FAMILIES) == 5

    def test_covers_every_circuit_family(self):
        kinds = {s.circuit["kind"] for s in ScenarioGenerator(0).generate(120)}
        assert {"random", "qaoa", "clifford", "ghz", "qft"} <= kinds

    def test_limits_are_respected(self):
        limits = GeneratorLimits(max_traps=4, max_qubits=5, max_capacity=3)
        for scenario in ScenarioGenerator(1, limits=limits).generate(30):
            assert len(scenario.device["traps"]) <= 4
            assert scenario.build_circuit().num_qubits <= 5
            assert all(t["capacity"] <= 3 for t in scenario.device["traps"])


class TestScenarioSerialisation:
    def test_json_round_trip(self):
        for scenario in ScenarioGenerator(5).generate(10):
            again = Scenario.from_json(scenario.to_json())
            assert again == scenario
            assert again.fingerprint() == scenario.fingerprint()

    def test_fingerprint_ignores_presentation_fields(self):
        scenario = ScenarioGenerator(5).next_scenario()
        renamed = Scenario(
            circuit=scenario.circuit, device=scenario.device, name="x", note="y"
        )
        assert renamed.fingerprint() == scenario.fingerprint()

    def test_bad_documents_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.from_json("not json at all {")
        with pytest.raises(ScenarioError):
            Scenario.from_json('{"format": "something-else"}')
        with pytest.raises(ScenarioError):
            Scenario.from_json('{"format": "repro-fuzz-scenario-v1"}')

    def test_unknown_circuit_kind_rejected(self):
        scenario = ScenarioGenerator(5).next_scenario()
        broken = Scenario(circuit={"kind": "nope"}, device=scenario.device)
        with pytest.raises(ScenarioError):
            broken.build_circuit()


class TestExplicitForm:
    def test_explicit_preserves_the_circuit(self):
        for scenario in ScenarioGenerator(9).generate(10):
            explicit = scenario.explicit()
            assert explicit.circuit["kind"] == "gates"
            original = scenario.build_circuit()
            rebuilt = explicit.build_circuit()
            assert rebuilt.num_qubits == original.num_qubits
            assert rebuilt.gates == original.gates

    def test_explicit_is_idempotent(self):
        scenario = ScenarioGenerator(9).next_scenario().explicit()
        assert scenario.explicit() is scenario
