"""Campaign-runner and ``repro fuzz`` CLI tests."""

from __future__ import annotations

import json
from pathlib import Path

import repro.fuzz.runner as runner_module
from repro.cli import main
from repro.fuzz import FuzzResult, load_scenario, run_fuzz

CORPUS_DIR = Path(__file__).parent / "corpus"


class TestRunFuzz:
    def test_green_campaign(self):
        result = run_fuzz(cases=6, seed=0, minimize=False)
        assert result.ok
        assert result.cases_run == 6
        assert result.checks_run > 0
        assert "OK" in result.summary()

    def test_corpus_replay_is_counted(self):
        result = run_fuzz(cases=0, seed=0, corpus_dir=CORPUS_DIR)
        assert result.ok
        assert result.corpus_replayed == len(list(CORPUS_DIR.glob("*.json")))

    def test_time_budget_stops_generation(self):
        result = run_fuzz(cases=10_000, seed=0, time_budget_s=0.0, minimize=False)
        assert result.budget_exhausted
        assert result.cases_run < 10_000

    def test_failures_are_minimized_and_written(self, tmp_path, monkeypatch):
        """Inject a bug; the campaign must minimize and write a reproducer."""
        import repro.fuzz.oracle as oracle_module

        def broken(scenario, *args, **kwargs):
            # "Bug": any scenario whose circuit has >= 5 two-qubit gates.
            explicit = scenario.explicit()
            if sum(1 for _, qubits, _ in explicit.circuit["gates"] if len(qubits) == 2) >= 5:
                raise RuntimeError("injected scheduler bug")
            return real_oracle(scenario, *args, **kwargs)

        real_oracle = oracle_module.run_oracle
        monkeypatch.setattr(runner_module, "run_oracle", broken)
        monkeypatch.setattr(
            runner_module,
            "oracle_failing",
            lambda s: s.is_well_formed() and _fails(s),
        )

        def _fails(scenario):
            try:
                broken(scenario)
            except Exception:
                return True
            return False

        failures_dir = tmp_path / "failures"
        result = run_fuzz(cases=12, seed=0, minimize=True, failures_dir=failures_dir)
        assert not result.ok
        failure = result.failures[0]
        assert failure.minimized is not None
        # 1-minimal for the injected predicate: exactly 5 two-qubit gates.
        two_qubit = [
            g for g in failure.minimized.circuit["gates"] if len(g[1]) == 2
        ]
        assert len(two_qubit) == 5
        assert len(failure.minimized.circuit["gates"]) == 5
        assert failure.reproducer_path is not None and failure.reproducer_path.exists()
        replayed = load_scenario(failure.reproducer_path)
        assert "injected scheduler bug" in replayed.note
        assert replayed.circuit == failure.minimized.circuit

    def test_progress_messages_flow(self):
        messages: list[str] = []
        run_fuzz(cases=25, seed=0, minimize=False, on_progress=messages.append)
        assert any("25/25" in message for message in messages)


class TestFuzzCli:
    def test_cli_green_run(self, capsys):
        exit_code = main(["fuzz", "--cases", "4", "--seed", "0", "--quiet"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "OK" in captured.out

    def test_cli_replays_the_corpus(self, capsys):
        exit_code = main(
            ["fuzz", "--cases", "1", "--seed", "0", "--corpus", str(CORPUS_DIR), "--quiet"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"{len(list(CORPUS_DIR.glob('*.json')))} corpus" in captured.out

    def test_cli_time_budget_flag(self, capsys):
        exit_code = main(
            ["fuzz", "--cases", "5000", "--seed", "0", "--time-budget", "0", "--quiet"]
        )
        assert exit_code == 0
        assert "time budget exhausted" in capsys.readouterr().out
