"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.circuit.library import ghz_circuit
from repro.circuit.qasm import circuit_to_qasm
from repro.cli import main


class TestCompileCommand:
    def test_compile_named_benchmark(self, capsys):
        exit_code = main(["compile", "qft_12", "--device", "G-2x2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "S-SYNC compilation summary" in captured.out
        assert "qft_12" in captured.out

    def test_compile_with_mapping_and_lookahead(self, capsys):
        exit_code = main(
            ["compile", "bv_16", "--device", "L-4", "--mapping", "even-divided", "--lookahead", "0"]
        )
        assert exit_code == 0
        assert "even-divided" in capsys.readouterr().out

    def test_compile_qasm_file(self, tmp_path, capsys):
        qasm_path = tmp_path / "ghz.qasm"
        qasm_path.write_text(circuit_to_qasm(ghz_circuit(10)))
        exit_code = main(["compile", str(qasm_path), "--device", "G-2x2"])
        assert exit_code == 0
        assert "ghz" in capsys.readouterr().out

    def test_compile_writes_schedule_json(self, tmp_path, capsys):
        output = tmp_path / "schedule.json"
        exit_code = main(["compile", "qft_10", "--device", "G-2x2", "--output", str(output)])
        assert exit_code == 0
        data = json.loads(output.read_text())
        assert data["circuit_name"] == "qft_10"
        assert data["summary"]["two_qubit_gates"] == 90

    def test_compile_capacity_override(self, capsys):
        exit_code = main(["compile", "qft_10", "--device", "G-3x3", "--capacity", "6"])
        assert exit_code == 0

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        exit_code = main(["compile", "grover_999", "--device", "G-2x2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_unknown_device_fails_cleanly(self, capsys):
        exit_code = main(["compile", "qft_10", "--device", "X-9"])
        assert exit_code == 1


class TestCompareCommand:
    def test_compare_lists_all_compilers(self, capsys):
        exit_code = main(["compare", "bv_16", "--device", "L-4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("murali", "dai", "s-sync"):
            assert name in captured.out

    def test_compare_respects_gate_implementation(self, capsys):
        exit_code = main(["compare", "bv_16", "--device", "L-4", "--gate-implementation", "am2"])
        assert exit_code == 0
        assert "AM2" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_evaluate_round_trip(self, tmp_path, capsys):
        output = tmp_path / "schedule.json"
        assert main(["compile", "qft_10", "--device", "G-2x2", "--output", str(output)]) == 0
        capsys.readouterr()
        exit_code = main(["evaluate", str(output), "--gate-implementation", "pm"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "schedule evaluation" in captured.out
        assert "pm" in captured.out

    def test_evaluate_missing_file_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["evaluate", str(tmp_path / "absent.json")])
        assert exit_code == 1

    def test_evaluate_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{")
        exit_code = main(["evaluate", str(path)])
        assert exit_code == 1


class TestParser:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_gate_implementation_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "qft_10", "--gate-implementation", "laser"])
