"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.circuit.library import ghz_circuit
from repro.circuit.qasm import circuit_to_qasm
from repro.cli import main


class TestCompileCommand:
    def test_compile_named_benchmark(self, capsys):
        exit_code = main(["compile", "qft_12", "--device", "G-2x2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "S-SYNC compilation summary" in captured.out
        assert "qft_12" in captured.out

    def test_compile_with_mapping_and_lookahead(self, capsys):
        exit_code = main(
            ["compile", "bv_16", "--device", "L-4", "--mapping", "even-divided", "--lookahead", "0"]
        )
        assert exit_code == 0
        assert "even-divided" in capsys.readouterr().out

    def test_compile_qasm_file(self, tmp_path, capsys):
        qasm_path = tmp_path / "ghz.qasm"
        qasm_path.write_text(circuit_to_qasm(ghz_circuit(10)))
        exit_code = main(["compile", str(qasm_path), "--device", "G-2x2"])
        assert exit_code == 0
        assert "ghz" in capsys.readouterr().out

    def test_compile_writes_schedule_json(self, tmp_path, capsys):
        output = tmp_path / "schedule.json"
        exit_code = main(["compile", "qft_10", "--device", "G-2x2", "--output", str(output)])
        assert exit_code == 0
        data = json.loads(output.read_text())
        assert data["circuit_name"] == "qft_10"
        assert data["summary"]["two_qubit_gates"] == 90

    def test_compile_capacity_override(self, capsys):
        exit_code = main(["compile", "qft_10", "--device", "G-3x3", "--capacity", "6"])
        assert exit_code == 0

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        exit_code = main(["compile", "grover_999", "--device", "G-2x2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_unknown_device_fails_cleanly(self, capsys):
        exit_code = main(["compile", "qft_10", "--device", "X-9"])
        assert exit_code == 1

    def test_existing_non_qasm_file_not_parsed_as_qasm(self, tmp_path, capsys):
        """An arbitrary existing file must not be fed to the QASM parser."""
        path = tmp_path / "notes.txt"
        path.write_text("definitely not qasm")
        exit_code = main(["compile", str(path), "--device", "G-2x2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "benchmark name" in captured.err
        assert ".qasm" in captured.err

    def test_missing_qasm_file_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["compile", str(tmp_path / "absent.qasm"), "--device", "G-2x2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "does not exist" in captured.err

    def test_compile_prints_pass_timings(self, capsys):
        assert main(["compile", "qft_10", "--device", "G-2x2"]) == 0
        out = capsys.readouterr().out
        assert "passes:" in out
        assert "initial-mapping=" in out and "routing=" in out and "verify=" in out

    def test_compile_with_baseline_compiler(self, capsys):
        exit_code = main(["compile", "bv_16", "--device", "L-4", "--compiler", "dai"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "DAI compilation summary" in captured.out
        assert "dai-default" in captured.out

    def test_compile_accepts_compiler_alias(self, capsys):
        exit_code = main(["compile", "qft_10", "--device", "G-2x2", "--compiler", "This Work"])
        assert exit_code == 0
        assert "S-SYNC compilation summary" in capsys.readouterr().out

    def test_mapping_flag_rejected_for_baselines(self, capsys):
        exit_code = main(
            ["compile", "qft_10", "--device", "G-2x2", "--compiler", "murali", "--mapping", "sta"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "brings its own initial mapping" in captured.err

    def test_unknown_compiler_fails_cleanly(self, capsys):
        exit_code = main(["compile", "qft_10", "--device", "G-2x2", "--compiler", "qiskit"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "unknown compiler" in captured.err

    def test_lookahead_flag_rejected_for_baselines(self, capsys):
        exit_code = main(
            ["compile", "qft_10", "--device", "G-2x2", "--compiler", "dai", "--lookahead", "8"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "takes no scheduler configuration" in captured.err


class TestCompilersCommand:
    def test_lists_registered_compilers_and_pipelines(self, capsys):
        exit_code = main(["compilers"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("s-sync", "murali", "dai"):
            assert name in captured.out
        assert "ssync, this work" in captured.out  # aliases column
        assert "initial-mapping -> routing -> metrics" in captured.out


class TestCompareCommand:
    def test_compare_lists_all_compilers(self, capsys):
        exit_code = main(["compare", "bv_16", "--device", "L-4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("murali", "dai", "s-sync"):
            assert name in captured.out

    def test_compare_respects_gate_implementation(self, capsys):
        exit_code = main(["compare", "bv_16", "--device", "L-4", "--gate-implementation", "am2"])
        assert exit_code == 0
        assert "AM2" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_evaluate_round_trip(self, tmp_path, capsys):
        output = tmp_path / "schedule.json"
        assert main(["compile", "qft_10", "--device", "G-2x2", "--output", str(output)]) == 0
        capsys.readouterr()
        exit_code = main(["evaluate", str(output), "--gate-implementation", "pm"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "schedule evaluation" in captured.out
        assert "pm" in captured.out

    def test_evaluate_missing_file_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["evaluate", str(tmp_path / "absent.json")])
        assert exit_code == 1

    def test_evaluate_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{")
        exit_code = main(["evaluate", str(path)])
        assert exit_code == 1


class TestCompareOutput:
    def test_compare_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "records.csv"
        exit_code = main(["compare", "bv_16", "--device", "L-4", "--output", str(output)])
        assert exit_code == 0
        lines = output.read_text().strip().splitlines()
        assert lines[0].startswith("circuit,")
        assert len(lines) == 4  # header + 3 compilers


class TestBatchCommand:
    @staticmethod
    def _write_manifest(tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "defaults": {"device": "G-2x2", "capacity": 6},
                    "jobs": [{"circuit": "qft_10"}, {"circuit": "qft_10", "compiler": "murali"}],
                }
            )
        )
        return manifest

    def test_batch_runs_manifest_and_writes_results(self, tmp_path, capsys):
        manifest = self._write_manifest(tmp_path)
        output = tmp_path / "results.json"
        exit_code = main(["batch", str(manifest), "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "batch results" in captured.out
        assert "compilations=2" in captured.out
        records = json.loads(output.read_text())
        assert [r["compiler"] for r in records] == ["s-sync", "murali"]

    def test_batch_warm_cache_skips_compilation(self, tmp_path, capsys):
        manifest = self._write_manifest(tmp_path)
        cache_dir = tmp_path / "cache"
        assert main(["batch", str(manifest), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["batch", str(manifest), "--cache-dir", str(cache_dir)]) == 0
        captured = capsys.readouterr()
        assert "compilations=0" in captured.out
        assert "cache_hits=2" in captured.out

    def test_batch_parallel_workers(self, tmp_path, capsys):
        manifest = self._write_manifest(tmp_path)
        exit_code = main(["batch", str(manifest), "--workers", "2"])
        assert exit_code == 0
        assert "workers=2" in capsys.readouterr().out

    def test_batch_missing_manifest_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["batch", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err


class TestServiceClientCommands:
    """``repro submit`` / ``results`` / ``jobs`` against a live server."""

    @pytest.fixture()
    def service_url(self):
        import threading

        from repro.service import make_server

        server = make_server(workers=1, port=0, warm=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server.url
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=5)

    def test_submit_wait_results_and_jobs_round_trip(
        self, service_url, tmp_path, capsys
    ):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps({"jobs": [{"circuit": "qft_10", "device": "G-2x2"}]})
        )
        assert main(["submit", str(manifest), "--url", service_url, "--wait"]) == 0
        submitted = capsys.readouterr().out
        assert "resubmitted=False" in submitted and "status=done" in submitted
        job_id = submitted.split("job_id=", 1)[1].split()[0]

        output = tmp_path / "records.json"
        assert main(
            ["results", job_id, "--url", service_url, "--output", str(output)]
        ) == 0
        assert "qft_10" in capsys.readouterr().out
        assert json.loads(output.read_text())[0]["circuit"] == "qft_10"

        assert main(["jobs", "--url", service_url]) == 0
        listing = capsys.readouterr().out
        assert job_id in listing and "total=1" in listing

    def test_results_unknown_job_fails_cleanly(self, service_url, capsys):
        exit_code = main(["results", "0" * 16, "--url", service_url])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_client_commands_fail_cleanly_without_a_service(self, capsys):
        exit_code = main(["jobs", "--url", "http://127.0.0.1:1", "--timeout", "2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "cannot reach" in captured.err


class TestParser:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_gate_implementation_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "qft_10", "--gate-implementation", "laser"])
