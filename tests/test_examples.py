"""Smoke test: every script under examples/ runs headlessly.

Examples are the first code users copy; a drifted example is worse than
none.  Each script is executed in a subprocess with only ``PYTHONPATH``
set, exactly how the README tells users to run them, and must exit 0.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """The parametrised list below must track the directory contents."""
    assert EXAMPLE_SCRIPTS, "examples/ contains no scripts?"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_headlessly(script: Path, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples must not depend on the CWD or write into the repo
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
