"""Unit tests for the schedule verifier."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.core.compiler import SSyncCompiler
from repro.core.state import DeviceState
from repro.hardware.topologies import linear_device
from repro.schedule.operations import GateOperation, ShuttleOperation, SwapOperation
from repro.schedule.schedule import Schedule
from repro.schedule.verify import ScheduleVerificationError, verify_schedule


def _two_trap_state():
    device = linear_device(2, 4)
    state = DeviceState(device)
    for q in (0, 1, 2):
        state.place(q, 0)
    state.place(3, 1)
    return device, state


class TestValidSchedules:
    def test_empty_schedule(self):
        device, state = _two_trap_state()
        report = verify_schedule(Schedule(device, "empty"), state)
        assert report.operations_checked == 0

    def test_manual_valid_sequence(self):
        device, state = _two_trap_state()
        schedule = Schedule(device, "manual")
        schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=3, ion_separation=0))
        schedule.append(SwapOperation(trap=0, qubit_a=0, qubit_b=2, chain_length=3, ion_separation=1))
        # After the SWAP the chain is [2, 1, 0], so qubit 0 sits at the end
        # facing trap 1 and may shuttle.
        schedule.append(
            ShuttleOperation(
                qubit=0,
                source_trap=0,
                target_trap=1,
                segments=1,
                junctions=0,
                source_chain_length=3,
                target_chain_length=2,
            )
        )
        report = verify_schedule(schedule, state)
        assert report.swaps == 1 and report.shuttles == 1
        # The original state must not be mutated.
        assert state.trap_of(0) == 0

    def test_compiled_schedule_verifies_against_circuit(self, qft_8, linear_3x5):
        result = SSyncCompiler(linear_3x5).compile(qft_8)
        report = verify_schedule(result.schedule, result.initial_state, circuit=qft_8)
        assert report.two_qubit_gates == qft_8.num_two_qubit_gates
        assert report.final_state.occupancy() == result.final_state.occupancy()


class TestInvalidSchedules:
    def test_gate_across_traps_rejected(self):
        device, state = _two_trap_state()
        schedule = Schedule(device, "bad")
        schedule.append(GateOperation(gate=Gate("cx", (0, 3)), trap=0, chain_length=3))
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state)

    def test_wrong_chain_length_rejected(self):
        device, state = _two_trap_state()
        schedule = Schedule(device, "bad")
        schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=2))
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state)
        # But passes when context checks are off.
        verify_schedule(schedule, state, check_context=False)

    def test_swap_across_traps_rejected(self):
        device, state = _two_trap_state()
        schedule = Schedule(device, "bad")
        schedule.append(SwapOperation(trap=0, qubit_a=0, qubit_b=3, chain_length=3))
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state)

    def test_shuttle_from_middle_rejected(self):
        device, state = _two_trap_state()
        schedule = Schedule(device, "bad")
        # Qubit 1 sits in the middle of trap 0's chain and cannot split.
        schedule.append(
            ShuttleOperation(
                qubit=1,
                source_trap=0,
                target_trap=1,
                segments=1,
                junctions=0,
                source_chain_length=3,
                target_chain_length=2,
            )
        )
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state)

    def test_shuttle_path_mismatch_rejected(self):
        device, state = _two_trap_state()
        schedule = Schedule(device, "bad")
        schedule.append(
            ShuttleOperation(
                qubit=2,
                source_trap=0,
                target_trap=1,
                segments=9,
                junctions=3,
                source_chain_length=3,
                target_chain_length=2,
            )
        )
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state)

    def test_missing_gate_detected_against_circuit(self):
        device, state = _two_trap_state()
        circuit = QuantumCircuit(4, "two-gates")
        circuit.cx(0, 1).cx(1, 2)
        schedule = Schedule(device, "partial")
        schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=3))
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state, circuit=circuit)

    def test_reordered_dependent_gates_detected(self):
        device, state = _two_trap_state()
        circuit = QuantumCircuit(4, "ordered")
        circuit.cx(0, 1).cx(1, 2)
        schedule = Schedule(device, "reordered")
        schedule.append(GateOperation(gate=Gate("cx", (1, 2)), trap=0, chain_length=3, ion_separation=0))
        schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=3, ion_separation=0))
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(schedule, state, circuit=circuit, check_context=False)
