"""Unit tests for the schedule JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.circuit.gate import Gate
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncCompiler
from repro.exceptions import ReproError
from repro.hardware.topologies import grid_device, star_device
from repro.noise.evaluator import evaluate_schedule
from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule
from repro.schedule.serialize import (
    SCHEDULE_FORMAT_VERSION,
    device_from_dict,
    device_to_dict,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)


@pytest.fixture(scope="module")
def compiled():
    device = grid_device(2, 2, 6)
    circuit = qft_circuit(12)
    result = SSyncCompiler(device).compile(circuit)
    return device, circuit, result


class TestDeviceRoundTrip:
    def test_round_trip_preserves_structure(self):
        device = star_device(4, 7)
        rebuilt = device_from_dict(device_to_dict(device))
        assert rebuilt.name == device.name
        assert rebuilt.num_traps == device.num_traps
        assert rebuilt.total_capacity == device.total_capacity
        assert len(rebuilt.connections) == len(device.connections)
        assert rebuilt.trap_distance(0, 3) == pytest.approx(device.trap_distance(0, 3))

    def test_missing_field_rejected(self):
        with pytest.raises(ReproError):
            device_from_dict({"traps": []})


class TestScheduleRoundTrip:
    def test_dict_round_trip(self, compiled):
        _, _, result = compiled
        data = schedule_to_dict(result.schedule)
        assert data["format_version"] == SCHEDULE_FORMAT_VERSION
        rebuilt = schedule_from_dict(data)
        assert len(rebuilt) == len(result.schedule)
        assert rebuilt.count_summary() == result.schedule.count_summary()
        assert rebuilt.circuit_name == result.schedule.circuit_name

    def test_json_round_trip_preserves_evaluation(self, compiled):
        _, _, result = compiled
        text = schedule_to_json(result.schedule)
        rebuilt = schedule_from_json(text)
        original = evaluate_schedule(result.schedule)
        recovered = evaluate_schedule(rebuilt)
        assert recovered.success_rate == pytest.approx(original.success_rate)
        assert recovered.execution_time_us == pytest.approx(original.execution_time_us)

    def test_json_is_valid_and_indentable(self, compiled):
        _, _, result = compiled
        text = schedule_to_json(result.schedule, indent=2)
        parsed = json.loads(text)
        assert parsed["summary"]["shuttles"] == result.shuttle_count

    def test_operation_kinds_preserved(self, compiled):
        _, _, result = compiled
        rebuilt = schedule_from_json(schedule_to_json(result.schedule))
        assert [op.kind for op in rebuilt] == [op.kind for op in result.schedule]


class TestEveryOperationKind:
    """Round-trip coverage for every :class:`ScheduledOperation` kind."""

    def test_hand_built_schedule_with_all_kinds(self):
        device = grid_device(2, 2, 6)
        schedule = Schedule(device, "all-kinds")
        operations = [
            GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=3),
            GateOperation(gate=Gate("cp", (0, 1), (0.5,)), trap=0, chain_length=3, ion_separation=1),
            SwapOperation(trap=0, qubit_a=0, qubit_b=2, chain_length=3, ion_separation=1),
            ShuttleOperation(
                qubit=2,
                source_trap=0,
                target_trap=1,
                segments=2,
                junctions=1,
                source_chain_length=3,
                target_chain_length=2,
            ),
            SpaceShiftOperation(trap=1, qubit=2, from_position=0, to_position=1),
        ]
        for operation in operations:
            schedule.append(operation)
        assert {op.kind for op in schedule} == set(OperationKind)

        rebuilt = schedule_from_json(schedule_to_json(schedule))
        assert list(rebuilt) == operations

    def test_compiled_schedules_round_trip_field_for_field(self, compiled):
        """Every operation the scheduler actually produces survives exactly."""
        _, _, result = compiled
        rebuilt = schedule_from_json(schedule_to_json(result.schedule))
        assert list(rebuilt) == list(result.schedule)

    def test_gate_params_survive(self):
        device = grid_device(2, 2, 6)
        schedule = Schedule(device, "params")
        schedule.append(
            GateOperation(gate=Gate("rzz", (0, 1), (0.125,)), trap=0, chain_length=2)
        )
        rebuilt = schedule_from_json(schedule_to_json(schedule))
        assert rebuilt[0].gate.params == (0.125,)


class TestErrorHandling:
    def test_bad_json_rejected(self):
        with pytest.raises(ReproError):
            schedule_from_json("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ReproError):
            schedule_from_json("[1, 2, 3]")

    def test_wrong_version_rejected(self, compiled):
        _, _, result = compiled
        data = schedule_to_dict(result.schedule)
        data["format_version"] = 999
        with pytest.raises(ReproError):
            schedule_from_dict(data)

    def test_unknown_operation_kind_rejected(self, compiled):
        _, _, result = compiled
        data = schedule_to_dict(result.schedule)
        data["operations"][0]["kind"] = "teleport"
        with pytest.raises(ReproError):
            schedule_from_dict(data)
