"""Unit tests for the scheduled operation records."""

from __future__ import annotations

import pytest

from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError
from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)


class TestGateOperation:
    def test_kind_follows_gate_arity(self):
        two = GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=4, ion_separation=1)
        one = GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=4)
        assert two.kind == OperationKind.GATE_2Q
        assert one.kind == OperationKind.GATE_1Q

    def test_rejects_empty_trap(self):
        with pytest.raises(SchedulingError):
            GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=0)

    def test_rejects_negative_separation(self):
        with pytest.raises(SchedulingError):
            GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=3, ion_separation=-1)


class TestSwapOperation:
    def test_valid(self):
        op = SwapOperation(trap=1, qubit_a=3, qubit_b=4, chain_length=5, ion_separation=0)
        assert op.kind == OperationKind.SWAP

    def test_rejects_identical_qubits(self):
        with pytest.raises(SchedulingError):
            SwapOperation(trap=0, qubit_a=2, qubit_b=2, chain_length=4)

    def test_rejects_single_ion_chain(self):
        with pytest.raises(SchedulingError):
            SwapOperation(trap=0, qubit_a=0, qubit_b=1, chain_length=1)

    def test_rejects_negative_separation(self):
        with pytest.raises(SchedulingError):
            SwapOperation(trap=0, qubit_a=0, qubit_b=1, chain_length=3, ion_separation=-2)


class TestShuttleOperation:
    def _make(self, **overrides):
        kwargs = dict(
            qubit=5,
            source_trap=0,
            target_trap=1,
            segments=1,
            junctions=0,
            source_chain_length=4,
            target_chain_length=3,
        )
        kwargs.update(overrides)
        return ShuttleOperation(**kwargs)

    def test_valid(self):
        assert self._make().kind == OperationKind.SHUTTLE

    def test_rejects_same_trap(self):
        with pytest.raises(SchedulingError):
            self._make(target_trap=0)

    def test_rejects_zero_segments(self):
        with pytest.raises(SchedulingError):
            self._make(segments=0)

    def test_rejects_negative_junctions(self):
        with pytest.raises(SchedulingError):
            self._make(junctions=-1)

    def test_rejects_empty_chains(self):
        with pytest.raises(SchedulingError):
            self._make(source_chain_length=0)
        with pytest.raises(SchedulingError):
            self._make(target_chain_length=0)


class TestSpaceShiftOperation:
    def test_distance(self):
        op = SpaceShiftOperation(trap=0, qubit=2, from_position=3, to_position=1)
        assert op.kind == OperationKind.SPACE_SHIFT
        assert op.distance == 2

    def test_rejects_no_move(self):
        with pytest.raises(SchedulingError):
            SpaceShiftOperation(trap=0, qubit=1, from_position=2, to_position=2)

    def test_rejects_negative_positions(self):
        with pytest.raises(SchedulingError):
            SpaceShiftOperation(trap=0, qubit=1, from_position=-1, to_position=0)
