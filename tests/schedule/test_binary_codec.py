"""Unit tests for the columnar binary schedule codec.

Covers exact round-trips for every operation kind (hand-built and
compiler-produced), a randomized fuzz over mixed-capacity devices, the
checked-in golden blob that pins the wire format, and the corrupt-input
error paths.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.circuit.gate import Gate
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncCompiler
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.topologies import grid_device, star_device
from repro.hardware.trap import Connection, Trap
from repro.schedule.operations import (
    GateOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule
from repro.schedule.serialize import (
    SCHEDULE_BINARY_VERSION,
    SCHEDULE_MAGIC,
    schedule_from_bytes,
    schedule_to_bytes,
    schedule_to_dict,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_schedule.sched"


def mixed_capacity_device() -> QCCDDevice:
    """A small device whose traps have different capacities."""
    traps = [Trap(0, 4), Trap(1, 2), Trap(2, 6, name="big"), Trap(3, 3)]
    connections = [
        Connection(0, 1, junctions=0, segments=1),
        Connection(1, 2, junctions=1, segments=2),
        Connection(2, 3, junctions=2, segments=3),
        Connection(0, 3, junctions=1, segments=4),
    ]
    return QCCDDevice(traps, connections, name="mixed-4", junction_weight=1.5)


def every_kind_schedule() -> Schedule:
    """A hand-built schedule containing each operation kind at least once."""
    schedule = Schedule(mixed_capacity_device(), circuit_name="all-kinds")
    schedule.append(GateOperation(Gate("rz", (0,), (0.25,)), trap=0, chain_length=3))
    schedule.append(
        GateOperation(Gate("cx", (0, 1)), trap=0, chain_length=4, ion_separation=2)
    )
    schedule.append(
        SwapOperation(trap=1, qubit_a=2, qubit_b=3, chain_length=2, ion_separation=1)
    )
    schedule.append(
        ShuttleOperation(
            qubit=2,
            source_trap=1,
            target_trap=2,
            segments=2,
            junctions=1,
            source_chain_length=2,
            target_chain_length=4,
        )
    )
    schedule.append(SpaceShiftOperation(trap=2, qubit=2, from_position=3, to_position=0))
    schedule.append(GateOperation(Gate("h", (5,)), trap=3, chain_length=1))
    return schedule


def assert_same_schedule(rebuilt: Schedule, original: Schedule) -> None:
    """Exact operation-level equality plus device metadata."""
    assert schedule_to_dict(rebuilt) == schedule_to_dict(original)
    assert list(rebuilt) == list(original)
    assert rebuilt.circuit_name == original.circuit_name
    assert rebuilt.device.name == original.device.name
    assert rebuilt.device.junction_weight == original.device.junction_weight
    assert rebuilt.count_summary() == original.count_summary()


class TestRoundTrip:
    def test_every_kind_exact(self):
        original = every_kind_schedule()
        rebuilt = schedule_from_bytes(schedule_to_bytes(original))
        assert_same_schedule(rebuilt, original)

    def test_empty_schedule(self):
        original = Schedule(star_device(3, 4), circuit_name="empty")
        rebuilt = schedule_from_bytes(schedule_to_bytes(original))
        assert len(rebuilt) == 0
        assert rebuilt.circuit_name == "empty"
        assert rebuilt.device.num_traps == original.device.num_traps

    def test_compiled_schedule_exact(self):
        device = grid_device(2, 2, 6)
        result = SSyncCompiler(device).compile(qft_circuit(12))
        rebuilt = schedule_from_bytes(schedule_to_bytes(result.schedule))
        assert_same_schedule(rebuilt, result.schedule)

    def test_gate_params_preserved_exactly(self):
        schedule = Schedule(star_device(3, 4), circuit_name="params")
        values = (0.1, -2.5, 3.141592653589793, 1e-300, -0.0)
        schedule.append(GateOperation(Gate("u3", (0,), values), trap=0, chain_length=1))
        rebuilt = schedule_from_bytes(schedule_to_bytes(schedule))
        assert rebuilt[0].gate.params == values

    def test_encode_is_deterministic(self):
        original = every_kind_schedule()
        blob = schedule_to_bytes(original)
        assert schedule_to_bytes(original) == blob
        assert schedule_to_bytes(schedule_from_bytes(blob)) == blob


class TestFuzz:
    def random_device(self, rng: random.Random) -> QCCDDevice:
        num_traps = rng.randint(2, 6)
        traps = [Trap(i, rng.randint(2, 8)) for i in range(num_traps)]
        connections = [
            Connection(
                i,
                i + 1,
                junctions=rng.randint(0, 3),
                segments=rng.randint(1, 4),
            )
            for i in range(num_traps - 1)
        ]
        return QCCDDevice(
            traps,
            connections,
            name=f"fuzz-{num_traps}",
            junction_weight=rng.choice([0.5, 1.0, 2.0]),
        )

    def random_operation(self, rng: random.Random, device: QCCDDevice):
        kind = rng.randrange(5)
        trap = rng.randrange(device.num_traps)
        capacity = device.trap(trap).capacity
        if kind == 0:
            gate = Gate(
                rng.choice(["h", "x", "rz", "t"]),
                (rng.randrange(32),),
                tuple(rng.uniform(-3.2, 3.2) for _ in range(rng.randint(0, 2))),
            )
            return GateOperation(gate, trap=trap, chain_length=rng.randint(1, capacity))
        if kind == 1:
            a = rng.randrange(32)
            gate = Gate(rng.choice(["cx", "cz"]), (a, a + 1 + rng.randrange(8)))
            return GateOperation(
                gate,
                trap=trap,
                chain_length=rng.randint(2, max(capacity, 2)),
                ion_separation=rng.randint(0, 3),
            )
        if kind == 2:
            a = rng.randrange(32)
            return SwapOperation(
                trap=trap,
                qubit_a=a,
                qubit_b=a + 1 + rng.randrange(8),
                chain_length=rng.randint(2, max(capacity, 2)),
                ion_separation=rng.randint(0, 3),
            )
        if kind == 3:
            source = rng.randrange(device.num_traps)
            target = (source + 1 + rng.randrange(device.num_traps - 1)) % device.num_traps
            return ShuttleOperation(
                qubit=rng.randrange(32),
                source_trap=source,
                target_trap=target,
                segments=rng.randint(1, 4),
                junctions=rng.randint(0, 3),
                source_chain_length=rng.randint(1, 5),
                target_chain_length=rng.randint(1, 6),
            )
        position = rng.randrange(capacity)
        other = (position + 1 + rng.randrange(max(capacity - 1, 1))) % capacity
        if other == position:
            other = (position + 1) % capacity
        return SpaceShiftOperation(
            trap=trap, qubit=rng.randrange(32), from_position=position, to_position=other
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_round_trip(self, seed):
        rng = random.Random(seed)
        device = self.random_device(rng)
        schedule = Schedule(device, circuit_name=f"fuzz-{seed}")
        for _ in range(rng.randint(0, 120)):
            schedule.append(self.random_operation(rng, device))
        rebuilt = schedule_from_bytes(schedule_to_bytes(schedule))
        assert_same_schedule(rebuilt, schedule)


class TestGoldenBlob:
    """The checked-in blob pins the wire format across refactors."""

    def test_golden_blob_decodes(self):
        rebuilt = schedule_from_bytes(GOLDEN_PATH.read_bytes())
        assert_same_schedule(rebuilt, every_kind_schedule())

    def test_golden_blob_is_current_encoding(self):
        assert schedule_to_bytes(every_kind_schedule()) == GOLDEN_PATH.read_bytes()


class TestErrors:
    def test_bad_magic(self):
        blob = schedule_to_bytes(every_kind_schedule())
        with pytest.raises(ReproError, match="magic"):
            schedule_from_bytes(b"XXXX" + blob[4:])

    def test_unsupported_version(self):
        blob = bytearray(schedule_to_bytes(every_kind_schedule()))
        blob[len(SCHEDULE_MAGIC)] = SCHEDULE_BINARY_VERSION + 1
        with pytest.raises(ReproError, match="version"):
            schedule_from_bytes(bytes(blob))

    def test_truncated_document(self):
        blob = schedule_to_bytes(every_kind_schedule())
        for cut in (5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ReproError):
                schedule_from_bytes(blob[:cut])

    def test_empty_input(self):
        with pytest.raises(ReproError):
            schedule_from_bytes(b"")
