"""Unit tests for the Schedule container and its counters."""

from __future__ import annotations

import pytest

from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError
from repro.hardware.topologies import linear_device
from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule


def _sample_schedule() -> Schedule:
    device = linear_device(2, 4)
    schedule = Schedule(device, "sample")
    schedule.append(GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=3))
    schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=3, ion_separation=0))
    schedule.append(SwapOperation(trap=0, qubit_a=0, qubit_b=2, chain_length=3, ion_separation=1))
    schedule.append(
        ShuttleOperation(
            qubit=0,
            source_trap=0,
            target_trap=1,
            segments=1,
            junctions=0,
            source_chain_length=3,
            target_chain_length=2,
        )
    )
    schedule.append(SpaceShiftOperation(trap=1, qubit=0, from_position=0, to_position=1))
    return schedule


class TestCounters:
    def test_basic_counts(self):
        schedule = _sample_schedule()
        assert len(schedule) == 5
        assert schedule.two_qubit_gate_count == 1
        assert schedule.single_qubit_gate_count == 1
        assert schedule.swap_count == 1
        assert schedule.shuttle_count == 1
        assert schedule.space_shift_count == 1

    def test_junctions_and_segments(self):
        schedule = _sample_schedule()
        assert schedule.junction_crossings == 0
        assert schedule.shuttle_segments == 1

    def test_count_summary_keys(self):
        summary = _sample_schedule().count_summary()
        assert summary["swaps"] == 1
        assert summary["shuttles"] == 1
        assert summary["two_qubit_gates"] == 1

    def test_operations_of_kind(self):
        schedule = _sample_schedule()
        assert len(schedule.operations_of_kind(OperationKind.SWAP)) == 1
        assert len(schedule.operations_of_kind(OperationKind.GATE_2Q)) == 1


class TestContainerBehaviour:
    def test_iteration_and_indexing(self):
        schedule = _sample_schedule()
        assert schedule[0].kind == OperationKind.GATE_1Q
        assert [op.kind for op in schedule][1] == OperationKind.GATE_2Q

    def test_append_rejects_non_operation(self):
        schedule = Schedule(linear_device(1, 3), "x")
        with pytest.raises(SchedulingError):
            schedule.append("not an operation")  # type: ignore[arg-type]

    def test_extend(self):
        device = linear_device(1, 3)
        schedule = Schedule(device, "x")
        schedule.extend([GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=1)])
        assert len(schedule) == 1

    def test_executed_two_qubit_gates(self):
        gates = _sample_schedule().executed_two_qubit_gates()
        assert len(gates) == 1
        assert gates[0].gate.name == "cx"

    def test_validate_against(self):
        schedule = _sample_schedule()
        schedule.validate_against(1)
        with pytest.raises(SchedulingError):
            schedule.validate_against(2)

    def test_repr_mentions_counts(self):
        text = repr(_sample_schedule())
        assert "swaps=1" in text and "shuttles=1" in text
