"""Shared pytest fixtures for the S-SYNC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import ghz_circuit, qft_circuit, random_circuit
from repro.core.compiler import SSyncCompiler
from repro.hardware.device import QCCDDevice
from repro.hardware.topologies import grid_device, linear_device, star_device


@pytest.fixture
def linear_2x6() -> QCCDDevice:
    """Two traps of capacity 6 in a line — the smallest interesting device."""
    return linear_device(2, 6, name="L-2")


@pytest.fixture
def linear_3x5() -> QCCDDevice:
    """Three traps of capacity 5 in a line."""
    return linear_device(3, 5, name="L-3")


@pytest.fixture
def grid_2x2() -> QCCDDevice:
    """A 2x2 grid with capacity 6 per trap."""
    return grid_device(2, 2, 6)


@pytest.fixture
def star_4() -> QCCDDevice:
    """A 4-trap star device with capacity 6 per trap."""
    return star_device(4, 6)


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """A 2-qubit Bell-pair circuit."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz_8() -> QuantumCircuit:
    """An 8-qubit GHZ ladder circuit."""
    return ghz_circuit(8)


@pytest.fixture
def qft_8() -> QuantumCircuit:
    """An 8-qubit QFT circuit."""
    return qft_circuit(8)


@pytest.fixture
def random_10() -> QuantumCircuit:
    """A seeded random 10-qubit circuit with 40 two-qubit gates."""
    return random_circuit(10, 40, seed=11)


@pytest.fixture
def compiler_linear(linear_2x6: QCCDDevice) -> SSyncCompiler:
    """An S-SYNC compiler bound to the small linear device."""
    return SSyncCompiler(linear_2x6)
