"""Unit tests for the parameter sweeps behind Figs. 11-15."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import (
    compile_time_sweep,
    decay_rate_sweep,
    gate_implementation_sweep,
    initial_mapping_sweep,
    topology_capacity_sweep,
    weight_ratio_sweep,
)
from repro.circuit.library import qft_circuit
from repro.exceptions import ReproError
from repro.hardware.presets import paper_device
from repro.hardware.topologies import grid_device


class TestTopologySweep:
    def test_records_cover_feasible_points(self):
        records = topology_capacity_sweep(
            qft_circuit, 12, topology_names=("L-4", "G-2x2"), capacities=(5, 8)
        )
        labels = {r.label for r in records}
        assert labels == {"L-4", "G-2x2"}
        for record in records:
            assert record.parameter == "total_capacity"
            assert record.success_rate >= 0

    def test_infeasible_capacities_skipped(self):
        records = topology_capacity_sweep(
            qft_circuit, 30, topology_names=("L-4",), capacities=(5,)
        )
        assert records == []


class TestMappingSweep:
    def test_all_mappings_and_sizes(self):
        records = initial_mapping_sweep(
            qft_circuit, circuit_sizes=(8, 12), device_name="G-2x2", capacity=6
        )
        assert {r.label for r in records} == {"gathering", "even-divided", "sta"}
        assert {int(r.value) for r in records} == {8, 12}

    def test_oversized_applications_skipped(self):
        records = initial_mapping_sweep(
            qft_circuit, circuit_sizes=(200,), device_name="G-2x2", capacity=6
        )
        assert records == []


class TestGateImplementationSweep:
    def test_every_implementation_evaluated(self):
        device = grid_device(2, 2, 6)
        records = gate_implementation_sweep([qft_circuit(10)], device)
        assert {r.label for r in records} == {"fm", "am1", "am2", "pm"}
        # The schedule is shared, so structural counters must be identical.
        assert len({(r.shuttles, r.swaps) for r in records}) == 1

    def test_implementation_changes_success_rate(self):
        device = grid_device(2, 2, 6)
        records = gate_implementation_sweep([qft_circuit(12)], device, implementations=("fm", "am1"))
        by_impl = {r.label: r.success_rate for r in records}
        assert by_impl["fm"] != pytest.approx(by_impl["am1"])


class TestHyperparameterSweeps:
    def test_weight_ratio_sweep_labels(self):
        device = paper_device("G-2x2", capacity=8)
        records = weight_ratio_sweep(qft_circuit, (10,), device, ratios=(100.0, 1000.0))
        assert {r.label for r in records} == {"r100", "r1000"}
        assert all(r.parameter == "weight_ratio" for r in records)

    def test_decay_sweep_labels(self):
        device = paper_device("G-2x2", capacity=8)
        records = decay_rate_sweep(qft_circuit, (10,), device, deltas=(0.0, 0.001))
        assert {r.label for r in records} == {"d0.0", "d0.001"}
        assert all(0.0 <= r.success_rate <= 1.0 for r in records)


class TestCompileTimeSweep:
    def test_records_per_compiler_and_size(self):
        device = paper_device("G-2x2", capacity=10)
        records = compile_time_sweep(qft_circuit, (8, 12), device, compilers=("murali", "s-sync"))
        assert len(records) == 4
        assert all(r.compile_time_s >= 0 for r in records)
        assert {r.compiler for r in records} == {"murali", "s-sync"}
        assert records[0].as_dict()["application_size"] in (8, 12)

    def test_requires_a_compiler(self):
        device = paper_device("G-2x2", capacity=10)
        with pytest.raises(ReproError):
            compile_time_sweep(qft_circuit, (8,), device, compilers=())
