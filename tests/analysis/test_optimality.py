"""Unit tests for the Fig.-16 optimality bounds."""

from __future__ import annotations

import pytest

from repro.analysis.optimality import evaluate_scenarios, optimality_report
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncCompiler
from repro.hardware.topologies import grid_device


@pytest.fixture(scope="module")
def compiled_result():
    device = grid_device(2, 2, 6)
    return device, SSyncCompiler(device).compile(qft_circuit(14))


class TestScenarios:
    def test_all_four_scenarios_present(self, compiled_result):
        _, result = compiled_result
        scenarios = evaluate_scenarios(result)
        assert set(scenarios) == {"s_sync", "perfect_shuttle", "perfect_swap", "ideal"}

    def test_bounds_ordering(self, compiled_result):
        _, result = compiled_result
        scenarios = evaluate_scenarios(result)
        base = scenarios["s_sync"].success_rate
        assert scenarios["perfect_shuttle"].success_rate >= base
        assert scenarios["perfect_swap"].success_rate >= base
        assert scenarios["ideal"].success_rate >= scenarios["perfect_shuttle"].success_rate
        assert scenarios["ideal"].success_rate >= scenarios["perfect_swap"].success_rate

    def test_ideal_removes_all_overheads(self, compiled_result):
        _, result = compiled_result
        scenarios = evaluate_scenarios(result)
        assert scenarios["ideal"].total_shuttle_time_us == 0.0


class TestReport:
    def test_report_fields(self):
        device = grid_device(2, 2, 6)
        report = optimality_report(qft_circuit(12), device)
        assert report.device == device.name
        assert 0 < report.s_sync <= report.ideal <= 1.0
        assert report.shuttle_gap >= 1.0
        assert report.swap_gap >= 1.0
        data = report.as_dict()
        assert data["ideal"] == report.ideal

    def test_report_respects_gate_implementation(self):
        device = grid_device(2, 2, 6)
        fm = optimality_report(qft_circuit(12), device, gate_implementation="fm")
        am2 = optimality_report(qft_circuit(12), device, gate_implementation="am2")
        assert fm.s_sync != pytest.approx(am2.s_sync)
