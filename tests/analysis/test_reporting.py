"""Unit tests for the plain-text reporting helpers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.reporting import (
    format_grouped_series,
    format_table,
    format_value,
    geometric_mean,
    ratio_summary,
    records_to_csv,
    records_to_dicts,
    records_to_json,
    write_records,
)
from repro.analysis.sweeps import CompileTimeRecord, SweepRecord
from repro.exceptions import ReproError


class TestFormatValue:
    def test_floats_are_compact(self):
        assert format_value(0.123456789) == "0.1235"
        assert format_value(1e-7) == "1e-07"

    def test_non_floats_passthrough(self):
        assert format_value(12) == "12"
        assert format_value("qft") == "qft"
        assert format_value(True) == "True"


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [
            {"circuit": "qft_24", "shuttles": 18, "success": 0.4369},
            {"circuit": "bv_64", "shuttles": 9, "success": 0.909},
        ]
        text = format_table(rows, title="Fig. 8")
        lines = text.splitlines()
        assert lines[0] == "Fig. 8"
        assert "circuit" in lines[1] and "shuttles" in lines[1]
        assert len(lines) == 5
        # All rows are padded to the same width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_left_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # does not raise

    def test_empty_rows_rejected(self):
        with pytest.raises(ReproError):
            format_table([])


class TestGroupedSeries:
    def test_one_line_per_group(self):
        rows = [
            {"label": "L-6", "x": 100, "y": 0.5},
            {"label": "L-6", "x": 120, "y": 0.6},
            {"label": "G-2x3", "x": 100, "y": 0.7},
        ]
        text = format_grouped_series(rows, "label", "x", "y")
        lines = text.splitlines()
        assert len(lines) == 2
        assert any(line.startswith("L-6:") and "100=0.5" in line for line in lines)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_grouped_series([], "a", "b", "c")


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_ratio_summary(self):
        text = ratio_summary({"qft": 3.0, "adder": 12.0}, "shuttle reduction")
        assert text.startswith("shuttle reduction:")
        assert "qft=3.00x" in text
        assert "geomean 6.00x" in text

    def test_ratio_summary_empty_rejected(self):
        with pytest.raises(ReproError):
            ratio_summary({}, "x")


class TestStructuredExport:
    RECORDS = [
        SweepRecord(
            label="L-4",
            circuit="qft_12",
            device="L-4",
            parameter="total_capacity",
            value=20,
            shuttles=7,
            swaps=3,
            success_rate=0.9,
            execution_time_us=1000.0,
            compile_time_s=0.01,
        ),
        SweepRecord(
            label="G-2x2",
            circuit="qft_12",
            device="G-2x2",
            parameter="total_capacity",
            value=24,
            shuttles=5,
            swaps=2,
            success_rate=0.95,
            execution_time_us=900.0,
            compile_time_s=0.02,
        ),
    ]

    def test_records_to_dicts_accepts_mappings_and_as_dict(self):
        rows = records_to_dicts([self.RECORDS[0], {"a": 1}])
        assert rows[0]["label"] == "L-4"
        assert rows[1] == {"a": 1}
        with pytest.raises(ReproError):
            records_to_dicts([object()])

    def test_json_round_trip(self):
        rows = json.loads(records_to_json(self.RECORDS))
        assert [r["label"] for r in rows] == ["L-4", "G-2x2"]
        assert rows[0]["shuttles"] == 7

    def test_csv_has_header_and_rows(self):
        text = records_to_csv(self.RECORDS)
        lines = text.strip().splitlines()
        assert lines[0].split(",")[0] == "label"
        assert len(lines) == 3
        with pytest.raises(ReproError):
            records_to_csv([])

    def test_write_records_infers_format(self, tmp_path):
        json_path = write_records(self.RECORDS, tmp_path / "out.json")
        assert json.loads(json_path.read_text())[1]["device"] == "G-2x2"
        csv_path = write_records(self.RECORDS, tmp_path / "out.csv")
        assert csv_path.read_text().startswith("label,")

    def test_write_records_compile_time_family(self, tmp_path):
        records = [CompileTimeRecord("s-sync", "qft_12", 12, 0.5)]
        path = write_records(records, tmp_path / "times.csv", fmt="csv")
        assert "application_size" in path.read_text()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_records(self.RECORDS, tmp_path / "out.xml", fmt="xml")
