"""Unit tests for the plain-text reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    format_grouped_series,
    format_table,
    format_value,
    geometric_mean,
    ratio_summary,
)
from repro.exceptions import ReproError


class TestFormatValue:
    def test_floats_are_compact(self):
        assert format_value(0.123456789) == "0.1235"
        assert format_value(1e-7) == "1e-07"

    def test_non_floats_passthrough(self):
        assert format_value(12) == "12"
        assert format_value("qft") == "qft"
        assert format_value(True) == "True"


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [
            {"circuit": "qft_24", "shuttles": 18, "success": 0.4369},
            {"circuit": "bv_64", "shuttles": 9, "success": 0.909},
        ]
        text = format_table(rows, title="Fig. 8")
        lines = text.splitlines()
        assert lines[0] == "Fig. 8"
        assert "circuit" in lines[1] and "shuttles" in lines[1]
        assert len(lines) == 5
        # All rows are padded to the same width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_left_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # does not raise

    def test_empty_rows_rejected(self):
        with pytest.raises(ReproError):
            format_table([])


class TestGroupedSeries:
    def test_one_line_per_group(self):
        rows = [
            {"label": "L-6", "x": 100, "y": 0.5},
            {"label": "L-6", "x": 120, "y": 0.6},
            {"label": "G-2x3", "x": 100, "y": 0.7},
        ]
        text = format_grouped_series(rows, "label", "x", "y")
        lines = text.splitlines()
        assert len(lines) == 2
        assert any(line.startswith("L-6:") and "100=0.5" in line for line in lines)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_grouped_series([], "a", "b", "c")


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_ratio_summary(self):
        text = ratio_summary({"qft": 3.0, "adder": 12.0}, "shuttle reduction")
        assert text.startswith("shuttle reduction:")
        assert "qft=3.00x" in text
        assert "geomean 6.00x" in text

    def test_ratio_summary_empty_rejected(self):
        with pytest.raises(ReproError):
            ratio_summary({}, "x")
