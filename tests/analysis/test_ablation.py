"""Unit tests for the ablation study machinery."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    AblationRecord,
    ablation_summary,
    default_variants,
    run_ablation,
)
from repro.circuit.library import cuccaro_adder_circuit, qft_circuit
from repro.core.compiler import SSyncConfig
from repro.exceptions import ReproError
from repro.hardware.topologies import grid_device
from repro.schedule.verify import verify_schedule


class TestVariants:
    def test_default_variant_names(self):
        variants = default_variants()
        assert set(variants) == {
            "full",
            "no-lookahead",
            "no-decay",
            "no-mountain-order",
            "greedy-weights",
        }

    def test_no_lookahead_variant_disables_lookahead(self):
        variants = default_variants()
        assert variants["no-lookahead"].scheduler.lookahead_depth == 0
        assert variants["full"].scheduler.lookahead_depth > 0

    def test_no_decay_variant_zeroes_delta(self):
        assert default_variants()["no-decay"].scheduler.decay_delta == 0.0

    def test_custom_base_config_propagates(self):
        base = SSyncConfig().with_decay(0.123)
        variants = default_variants(base)
        assert variants["full"].scheduler.decay_delta == pytest.approx(0.123)
        assert variants["no-lookahead"].scheduler.decay_delta == pytest.approx(0.123)


class TestRunAblation:
    def test_records_cover_all_variants(self):
        device = grid_device(2, 2, 8)
        circuit = qft_circuit(12)
        records = run_ablation(circuit, device)
        assert {r.variant for r in records} == set(default_variants())
        for record in records:
            assert record.circuit == circuit.name
            assert 0.0 <= record.success_rate <= 1.0

    def test_custom_variant_subset(self):
        device = grid_device(2, 2, 8)
        circuit = qft_circuit(10)
        records = run_ablation(circuit, device, variants={"full": SSyncConfig()})
        assert len(records) == 1

    def test_empty_variants_rejected(self):
        device = grid_device(2, 2, 8)
        with pytest.raises(ReproError):
            run_ablation(qft_circuit(8), device, variants={})

    def test_no_mountain_order_variant_produces_valid_schedule(self):
        from repro.analysis.ablation import _FirstFitMapper
        from repro.core.compiler import SSyncCompiler

        device = grid_device(2, 2, 8)
        circuit = cuccaro_adder_circuit(6)
        result = SSyncCompiler(device).compile(circuit, initial_mapping=_FirstFitMapper())
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_lookahead_never_hurts_serial_circuits(self):
        device = grid_device(2, 2, 8)
        circuit = cuccaro_adder_circuit(6)
        records = run_ablation(
            circuit,
            device,
            variants={
                "full": SSyncConfig(),
                "no-lookahead": default_variants()["no-lookahead"],
            },
        )
        by_variant = {r.variant: r for r in records}
        assert by_variant["no-lookahead"].shuttles >= by_variant["full"].shuttles


class TestSummary:
    def test_summary_is_relative_to_full(self):
        records = [
            AblationRecord("full", "c", "d", 10, 5, 0.5, 1.0, 0.1),
            AblationRecord("no-decay", "c", "d", 20, 5, 0.4, 1.0, 0.1),
        ]
        summary = ablation_summary(records)
        assert summary["full"] == pytest.approx(1.0)
        assert summary["no-decay"] == pytest.approx(2.0)

    def test_summary_requires_full_variant(self):
        records = [AblationRecord("no-decay", "c", "d", 20, 5, 0.4, 1.0, 0.1)]
        with pytest.raises(ReproError):
            ablation_summary(records)

    def test_zero_shuttle_baseline_handled(self):
        records = [
            AblationRecord("full", "c", "d", 0, 0, 0.9, 1.0, 0.1),
            AblationRecord("no-decay", "c", "d", 3, 0, 0.8, 1.0, 0.1),
        ]
        summary = ablation_summary(records)
        assert summary["no-decay"] == pytest.approx(3.0)
