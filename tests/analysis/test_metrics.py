"""Unit tests for compiler comparison metrics (Figs. 8-10 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    DEFAULT_COMPILER_NAMES,
    compare_compilers,
    compile_with,
    improvement_factors,
    record_from_result,
)
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncConfig
from repro.exceptions import ReproError
from repro.hardware.topologies import grid_device, linear_device
from repro.noise.evaluator import evaluate_schedule


class TestCompileWith:
    def test_known_names(self):
        device = linear_device(2, 8)
        circuit = qft_circuit(10)
        for name, expected in (("s-sync", "s-sync"), ("murali", "murali"), ("dai", "dai")):
            result = compile_with(name, circuit, device)
            assert result.compiler_name == expected

    def test_ssync_aliases(self):
        device = linear_device(2, 8)
        circuit = qft_circuit(8)
        assert compile_with("This Work", circuit, device).compiler_name == "s-sync"

    def test_unknown_name_rejected(self):
        device = linear_device(2, 8)
        with pytest.raises(ReproError):
            compile_with("qiskit", qft_circuit(6), device)

    def test_ssync_config_and_mapping_forwarded(self):
        device = linear_device(2, 8)
        circuit = qft_circuit(10)
        result = compile_with(
            "s-sync", circuit, device, ssync_config=SSyncConfig(), initial_mapping="even-divided"
        )
        assert result.mapping_name == "even-divided"


class TestComparison:
    def test_records_cover_all_compilers(self):
        device = grid_device(2, 2, 6)
        circuit = qft_circuit(12)
        records = compare_compilers(circuit, device)
        assert [r.compiler for r in records] == list(DEFAULT_COMPILER_NAMES)
        for record in records:
            assert record.circuit == circuit.name
            assert record.device == device.name
            assert record.two_qubit_gates == circuit.num_two_qubit_gates
            assert 0.0 <= record.success_rate <= 1.0
            assert record.execution_time_us > 0

    def test_record_from_result_consistency(self):
        device = linear_device(2, 8)
        circuit = qft_circuit(10)
        result = compile_with("s-sync", circuit, device)
        evaluation = evaluate_schedule(result.schedule)
        record = record_from_result(result, evaluation)
        assert record.shuttles == result.shuttle_count
        assert record.success_rate == evaluation.success_rate
        assert record.as_dict()["compiler"] == "s-sync"

    def test_subset_of_compilers(self):
        device = linear_device(2, 8)
        circuit = qft_circuit(8)
        records = compare_compilers(circuit, device, compilers=("murali",))
        assert len(records) == 1


class TestImprovementFactors:
    def test_factors_computed_against_baselines(self):
        device = grid_device(2, 2, 6)
        circuit = qft_circuit(14)
        records = compare_compilers(circuit, device)
        factors = improvement_factors(records)
        assert factors["shuttle_reduction"] > 1.0
        assert factors["success_rate_gain"] > 1.0

    def test_requires_both_sides(self):
        device = linear_device(2, 8)
        circuit = qft_circuit(8)
        only_ssync = compare_compilers(circuit, device, compilers=("s-sync",))
        with pytest.raises(ReproError):
            improvement_factors(only_ssync)
