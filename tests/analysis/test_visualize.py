"""Unit tests for the plain-text visualisation helpers."""

from __future__ import annotations

import pytest

from repro.analysis.visualize import (
    render_occupancy,
    render_shuttle_traffic,
    schedule_timeline,
    shuttle_traffic,
)
from repro.circuit.library import qft_circuit
from repro.core.compiler import SSyncCompiler
from repro.core.state import DeviceState
from repro.exceptions import ReproError
from repro.hardware.topologies import grid_device, linear_device
from repro.schedule.schedule import Schedule


@pytest.fixture(scope="module")
def compiled():
    device = grid_device(2, 2, 6)
    circuit = qft_circuit(14)
    return SSyncCompiler(device).compile(circuit)


class TestRenderOccupancy:
    def test_shows_every_trap(self):
        device = linear_device(3, 4)
        state = DeviceState.from_mapping(device, {0: [0, 1], 1: [2], 2: []})
        text = render_occupancy(state)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "( 2/ 4)" in lines[0]
        assert "q00 q01" in lines[0]
        assert lines[2].count(".") == 4 * 3  # empty trap rendered as dots

    def test_width_validation(self):
        device = linear_device(1, 2)
        state = DeviceState(device)
        with pytest.raises(ReproError):
            render_occupancy(state, qubit_width=0)


class TestScheduleTimeline:
    def test_header_and_truncation(self, compiled):
        text = schedule_timeline(compiled.schedule, max_operations=10)
        lines = text.splitlines()
        assert "operations" in lines[0]
        assert len(lines) == 12  # header + 10 operations + "more" marker
        assert lines[-1].startswith("...")

    def test_lists_gate_swap_and_shuttle_entries(self, compiled):
        text = schedule_timeline(compiled.schedule, max_operations=len(compiled.schedule))
        assert "gate" in text
        assert "shutl" in text or compiled.shuttle_count == 0

    def test_validation(self, compiled):
        with pytest.raises(ReproError):
            schedule_timeline(compiled.schedule, max_operations=0)


class TestShuttleTraffic:
    def test_counts_match_schedule(self, compiled):
        traffic = shuttle_traffic(compiled.schedule)
        assert sum(traffic.values()) == compiled.shuttle_count
        for (trap_a, trap_b), count in traffic.items():
            assert trap_a < trap_b
            assert count > 0

    def test_traffic_only_on_connected_pairs(self, compiled):
        device = compiled.schedule.device
        for trap_a, trap_b in shuttle_traffic(compiled.schedule):
            assert device.are_connected(trap_a, trap_b)

    def test_render_bar_chart(self, compiled):
        text = render_shuttle_traffic(compiled.schedule)
        if compiled.shuttle_count:
            assert "#" in text
            assert "<->" in text

    def test_empty_schedule_message(self):
        device = linear_device(2, 4)
        empty = Schedule(device, "empty")
        assert render_shuttle_traffic(empty) == "no shuttles in this schedule"
        assert shuttle_traffic(empty) == {}
