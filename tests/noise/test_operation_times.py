"""Unit tests for the Table-1 transport operation times."""

from __future__ import annotations

import pytest

from repro.exceptions import NoiseModelError
from repro.noise.operation_times import PAPER_OPERATION_TIMES, OperationTimes


class TestTableOne:
    def test_paper_values(self):
        times = PAPER_OPERATION_TIMES
        assert times.move_us == pytest.approx(5.0)
        assert times.split_us == pytest.approx(80.0)
        assert times.merge_us == pytest.approx(80.0)
        # Cross n-path junction: 40 + 20n; the paper's table quotes n=3 style junctions.
        assert times.junction_crossing_us(3) == pytest.approx(100.0)

    def test_as_table_rows(self):
        table = PAPER_OPERATION_TIMES.as_table()
        assert set(table) == {"move", "split", "merge", "cross 3-path junction"}

    def test_negative_values_rejected(self):
        with pytest.raises(NoiseModelError):
            OperationTimes(move_us=-1.0)

    def test_junction_needs_two_paths(self):
        with pytest.raises(NoiseModelError):
            PAPER_OPERATION_TIMES.junction_crossing_us(1)


class TestShuttleDuration:
    def test_simple_shuttle_is_split_move_merge(self):
        assert PAPER_OPERATION_TIMES.shuttle_us(segments=1, junctions=0) == pytest.approx(165.0)

    def test_junction_adds_crossing_time(self):
        direct = PAPER_OPERATION_TIMES.shuttle_us(segments=2, junctions=0)
        with_junction = PAPER_OPERATION_TIMES.shuttle_us(segments=2, junctions=1)
        assert with_junction - direct == pytest.approx(100.0)

    def test_segments_scale_linearly(self):
        one = PAPER_OPERATION_TIMES.shuttle_us(segments=1, junctions=0)
        four = PAPER_OPERATION_TIMES.shuttle_us(segments=4, junctions=0)
        assert four - one == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(NoiseModelError):
            PAPER_OPERATION_TIMES.shuttle_us(segments=0, junctions=0)
        with pytest.raises(NoiseModelError):
            PAPER_OPERATION_TIMES.shuttle_us(segments=1, junctions=-1)
