"""Unit tests for the heating model (k1/k2 quanta, n̄ ledger)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import NoiseModelError
from repro.noise.heating import (
    PAPER_HEATING,
    HeatingParameters,
    ThermalLedger,
    TrapThermalState,
)


class TestHeatingParameters:
    def test_paper_defaults(self):
        assert PAPER_HEATING.k1 == pytest.approx(0.1)
        assert PAPER_HEATING.k2 == pytest.approx(0.01)
        assert PAPER_HEATING.background_rate_per_s == pytest.approx(1.0)

    def test_amplitude_factor_scales_as_n_over_log_n(self):
        params = HeatingParameters(amplitude_scale=1.0)
        assert params.amplitude_factor(10) == pytest.approx(10 / math.log(10))
        assert params.amplitude_factor(1) == pytest.approx(1.0)

    def test_amplitude_grows_with_chain_length(self):
        values = [PAPER_HEATING.amplitude_factor(n) for n in range(3, 30)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(NoiseModelError):
            HeatingParameters(k1=-0.1)
        with pytest.raises(NoiseModelError):
            HeatingParameters(background_rate_per_s=-1)
        with pytest.raises(NoiseModelError):
            HeatingParameters(amplitude_scale=0.0)
        with pytest.raises(NoiseModelError):
            PAPER_HEATING.amplitude_factor(0)


class TestTrapThermalState:
    def test_split_and_merge_add_k1(self):
        state = TrapThermalState()
        state.record_split(PAPER_HEATING)
        state.record_merge(PAPER_HEATING)
        assert state.mean_phonon == pytest.approx(0.2)
        assert state.total_splits == 1 and state.total_merges == 1

    def test_transport_adds_k2_per_segment_and_junction(self):
        state = TrapThermalState()
        state.record_transport(PAPER_HEATING, segments=3, junctions=2)
        assert state.mean_phonon == pytest.approx(0.05)

    def test_idle_time_accumulates_and_resets(self):
        state = TrapThermalState()
        state.record_idle(100.0)
        state.record_idle(50.0)
        assert state.consume_accumulated_time() == pytest.approx(150.0)
        assert state.consume_accumulated_time() == 0.0

    def test_validation(self):
        state = TrapThermalState()
        with pytest.raises(NoiseModelError):
            state.record_idle(-1.0)
        with pytest.raises(NoiseModelError):
            state.record_transport(PAPER_HEATING, segments=-1)


class TestThermalLedger:
    def test_shuttle_heats_both_traps(self):
        ledger = ThermalLedger(params=PAPER_HEATING)
        ledger.record_shuttle(source_trap=0, target_trap=1, segments=2, junctions=1)
        assert ledger.mean_phonon(0) == pytest.approx(0.1)
        assert ledger.mean_phonon(1) == pytest.approx(0.1 + 0.03)

    def test_total_phonon(self):
        ledger = ThermalLedger()
        ledger.record_shuttle(0, 1, segments=1, junctions=0)
        assert ledger.total_phonon() == pytest.approx(
            ledger.mean_phonon(0) + ledger.mean_phonon(1)
        )

    def test_unknown_trap_starts_cold(self):
        ledger = ThermalLedger()
        assert ledger.mean_phonon(7) == 0.0
