"""Unit tests for the schedule evaluator (execution time + success rate)."""

from __future__ import annotations

import pytest

from repro.circuit.gate import Gate
from repro.hardware.topologies import grid_device, linear_device
from repro.noise.evaluator import EvaluatorConfig, ScheduleEvaluator, evaluate_schedule
from repro.noise.gate_times import GateImplementation, fm_gate_time, pm_gate_time
from repro.noise.heating import HeatingParameters
from repro.noise.operation_times import OperationTimes
from repro.schedule.operations import (
    GateOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule


def _gate_only_schedule(num_gates: int = 3, chain_length: int = 6) -> Schedule:
    device = linear_device(2, 8)
    schedule = Schedule(device, "gates")
    for _ in range(num_gates):
        schedule.append(
            GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=chain_length, ion_separation=1)
        )
    return schedule


def _schedule_with_shuttle() -> Schedule:
    device = grid_device(1, 2, 6)
    schedule = Schedule(device, "with-shuttle")
    schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=4, ion_separation=0))
    schedule.append(
        ShuttleOperation(
            qubit=0,
            source_trap=0,
            target_trap=1,
            segments=2,
            junctions=1,
            source_chain_length=4,
            target_chain_length=4,
        )
    )
    schedule.append(GateOperation(gate=Gate("cx", (0, 2)), trap=1, chain_length=4, ion_separation=0))
    return schedule


class TestExecutionTime:
    def test_fm_gate_time_drives_duration(self):
        schedule = _gate_only_schedule(num_gates=2, chain_length=12)
        result = evaluate_schedule(schedule, gate_implementation="fm")
        assert result.execution_time_us == pytest.approx(2 * fm_gate_time(12))

    def test_pm_depends_on_separation_not_chain(self):
        schedule = _gate_only_schedule(num_gates=1, chain_length=12)
        result = evaluate_schedule(schedule, gate_implementation="pm")
        assert result.execution_time_us == pytest.approx(pm_gate_time(1))

    def test_shuttle_adds_transport_time(self):
        schedule = _schedule_with_shuttle()
        result = evaluate_schedule(schedule)
        expected_shuttle = OperationTimes().shuttle_us(segments=2, junctions=1)
        assert result.total_shuttle_time_us == pytest.approx(expected_shuttle)
        assert result.execution_time_us > expected_shuttle

    def test_parallel_traps_use_max_clock(self):
        device = linear_device(2, 6)
        schedule = Schedule(device, "parallel")
        schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=4))
        schedule.append(GateOperation(gate=Gate("cx", (2, 3)), trap=1, chain_length=4))
        result = evaluate_schedule(schedule)
        assert result.execution_time_us == pytest.approx(fm_gate_time(4))

    def test_swap_takes_three_gate_durations(self):
        device = linear_device(1, 6)
        schedule = Schedule(device, "swap")
        schedule.append(SwapOperation(trap=0, qubit_a=0, qubit_b=1, chain_length=5, ion_separation=0))
        result = evaluate_schedule(schedule)
        assert result.execution_time_us == pytest.approx(3 * fm_gate_time(5))

    def test_space_shift_costs_move_time(self):
        device = linear_device(1, 6)
        schedule = Schedule(device, "shift")
        schedule.append(SpaceShiftOperation(trap=0, qubit=0, from_position=0, to_position=3))
        result = evaluate_schedule(schedule)
        assert result.execution_time_us == pytest.approx(3 * OperationTimes().move_us)


class TestSuccessRate:
    def test_more_gates_lower_success(self):
        few = evaluate_schedule(_gate_only_schedule(num_gates=5))
        many = evaluate_schedule(_gate_only_schedule(num_gates=50))
        assert many.success_rate < few.success_rate

    def test_shuttles_reduce_success_rate(self):
        without = Schedule(_schedule_with_shuttle().device, "no-shuttle")
        for op in _schedule_with_shuttle():
            if not isinstance(op, ShuttleOperation):
                without.append(op)
        with_shuttle = evaluate_schedule(_schedule_with_shuttle())
        clean = evaluate_schedule(without)
        assert with_shuttle.success_rate < clean.success_rate

    def test_single_qubit_gates_nearly_free(self):
        device = linear_device(1, 4)
        schedule = Schedule(device, "singles")
        for _ in range(100):
            schedule.append(GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=2))
        result = evaluate_schedule(schedule)
        assert result.success_rate > 0.999

    def test_single_qubit_gates_can_be_excluded(self):
        device = linear_device(1, 4)
        schedule = Schedule(device, "singles")
        schedule.append(GateOperation(gate=Gate("h", (0,)), trap=0, chain_length=2))
        config = EvaluatorConfig(include_single_qubit_gates=False)
        result = ScheduleEvaluator(config).evaluate(schedule)
        assert result.success_rate == pytest.approx(1.0)

    def test_custom_heating_parameters(self):
        gentle = evaluate_schedule(
            _schedule_with_shuttle(), heating=HeatingParameters(amplitude_scale=1e-6)
        )
        harsh = evaluate_schedule(
            _schedule_with_shuttle(), heating=HeatingParameters(amplitude_scale=1e-2)
        )
        assert gentle.success_rate > harsh.success_rate


class TestIdealisedScenarios:
    def test_ignore_shuttle_cost_removes_transport(self):
        schedule = _schedule_with_shuttle()
        ideal = evaluate_schedule(schedule, ignore_shuttle_cost=True)
        real = evaluate_schedule(schedule)
        assert ideal.total_shuttle_time_us == 0.0
        assert ideal.success_rate >= real.success_rate

    def test_ignore_swap_cost_removes_swaps(self):
        device = linear_device(1, 6)
        schedule = Schedule(device, "swaps")
        schedule.append(SwapOperation(trap=0, qubit_a=0, qubit_b=1, chain_length=4))
        schedule.append(GateOperation(gate=Gate("cx", (0, 1)), trap=0, chain_length=4))
        no_swap = evaluate_schedule(schedule, ignore_swap_cost=True)
        real = evaluate_schedule(schedule)
        assert no_swap.success_rate > real.success_rate
        assert no_swap.execution_time_us < real.execution_time_us

    def test_result_metadata(self):
        result = evaluate_schedule(_schedule_with_shuttle(), gate_implementation="am2")
        assert result.gate_implementation is GateImplementation.AM2
        assert result.gate_count_2q == 2
        assert result.shuttle_count == 1
        assert result.execution_time_s == pytest.approx(result.execution_time_us / 1e6)
        assert result.details["evaluated_gate_fidelities"] == 2.0
