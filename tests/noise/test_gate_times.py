"""Unit tests for the two-qubit gate duration models (paper §4.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import NoiseModelError
from repro.noise.gate_times import (
    GateImplementation,
    am1_gate_time,
    am2_gate_time,
    fm_gate_time,
    pm_gate_time,
    single_qubit_gate_time,
    two_qubit_gate_time,
)


class TestFM:
    def test_formula_above_floor(self):
        # 13.33 * 20 - 54 = 212.6
        assert fm_gate_time(20) == pytest.approx(212.6)

    def test_floor_at_small_chains(self):
        assert fm_gate_time(2) == pytest.approx(100.0)
        assert fm_gate_time(5) == pytest.approx(100.0)

    def test_monotone_in_chain_length(self):
        times = [fm_gate_time(n) for n in range(2, 40)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_rejects_single_ion(self):
        with pytest.raises(NoiseModelError):
            fm_gate_time(1)


class TestDistanceModels:
    def test_pm_formula(self):
        assert pm_gate_time(0) == pytest.approx(160.0)
        assert pm_gate_time(10) == pytest.approx(210.0)

    def test_am1_formula_and_floor(self):
        assert am1_gate_time(1) == pytest.approx(78.0)
        assert am1_gate_time(0) == pytest.approx(10.0)

    def test_am2_formula(self):
        assert am2_gate_time(0) == pytest.approx(10.0)
        assert am2_gate_time(5) == pytest.approx(200.0)

    def test_negative_separation_rejected(self):
        for fn in (pm_gate_time, am1_gate_time, am2_gate_time):
            with pytest.raises(NoiseModelError):
                fn(-1)

    def test_am_cheaper_than_pm_for_adjacent_ions(self):
        # Fig. 13 rationale: AM gates win for short-range interactions.
        assert am2_gate_time(0) < pm_gate_time(0)
        assert am1_gate_time(0) < pm_gate_time(0)

    def test_pm_weak_dependence_on_distance(self):
        # PM grows by 5 µs per ion, AM1 by 100 µs per ion.
        assert pm_gate_time(20) - pm_gate_time(0) < am1_gate_time(20) - am1_gate_time(2)


class TestDispatch:
    def test_enum_from_name(self):
        assert GateImplementation.from_name("FM") is GateImplementation.FM
        assert GateImplementation.from_name(GateImplementation.PM) is GateImplementation.PM

    def test_unknown_name_rejected(self):
        with pytest.raises(NoiseModelError):
            GateImplementation.from_name("laser")

    def test_dispatch_matches_direct_calls(self):
        assert two_qubit_gate_time("fm", 12, 3) == pytest.approx(fm_gate_time(12))
        assert two_qubit_gate_time("pm", 12, 3) == pytest.approx(pm_gate_time(3))
        assert two_qubit_gate_time("am1", 12, 3) == pytest.approx(am1_gate_time(3))
        assert two_qubit_gate_time("am2", 12, 3) == pytest.approx(am2_gate_time(3))

    def test_single_qubit_gate_time_is_small(self):
        assert 0 < single_qubit_gate_time() < fm_gate_time(2)
