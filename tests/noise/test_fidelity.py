"""Unit tests for the Eq.-(4) fidelity model and success-rate accumulator."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import NoiseModelError
from repro.noise.fidelity import (
    SWAP_TWO_QUBIT_GATE_COUNT,
    FidelityModel,
    SuccessRateAccumulator,
)
from repro.noise.heating import HeatingParameters


class TestFidelityModel:
    def test_equation_four_components(self):
        heating = HeatingParameters(amplitude_scale=1e-4)
        model = FidelityModel(heating=heating)
        fidelity = model.two_qubit_gate_fidelity(
            gate_time_us=100.0, chain_length=10, mean_phonon=0.0
        )
        expected = 1.0 - 1.0 * 100e-6 - heating.amplitude_factor(10) * 1.0
        assert fidelity == pytest.approx(expected)

    def test_hotter_trap_is_worse(self):
        model = FidelityModel()
        cold = model.two_qubit_gate_fidelity(100.0, 10, mean_phonon=0.0)
        hot = model.two_qubit_gate_fidelity(100.0, 10, mean_phonon=1.0)
        assert hot < cold

    def test_longer_chain_is_worse(self):
        model = FidelityModel()
        short = model.two_qubit_gate_fidelity(100.0, 5, 0.1)
        long = model.two_qubit_gate_fidelity(100.0, 20, 0.1)
        assert long < short

    def test_accumulated_transport_time_costs_fidelity(self):
        model = FidelityModel()
        idle = model.two_qubit_gate_fidelity(100.0, 10, 0.0, accumulated_transport_us=1e5)
        fresh = model.two_qubit_gate_fidelity(100.0, 10, 0.0)
        assert idle < fresh

    def test_fidelity_never_negative(self):
        model = FidelityModel()
        value = model.two_qubit_gate_fidelity(1e12, 50, 1e6)
        assert value == pytest.approx(model.minimum_fidelity)

    def test_swap_is_three_gates(self):
        model = FidelityModel()
        single = model.two_qubit_gate_fidelity(100.0, 10, 0.2)
        assert model.swap_gate_fidelity(100.0, 10, 0.2) == pytest.approx(
            single**SWAP_TWO_QUBIT_GATE_COUNT
        )

    def test_single_qubit_fidelity_matches_paper(self):
        assert FidelityModel().single_qubit_gate_fidelity_value() == pytest.approx(0.999999)

    def test_validation(self):
        model = FidelityModel()
        with pytest.raises(NoiseModelError):
            model.two_qubit_gate_fidelity(-1.0, 10, 0.0)
        with pytest.raises(NoiseModelError):
            model.two_qubit_gate_fidelity(1.0, 10, -0.5)
        with pytest.raises(NoiseModelError):
            FidelityModel(single_qubit_fidelity=0.0)
        with pytest.raises(NoiseModelError):
            FidelityModel(minimum_fidelity=0.0)


class TestSuccessRateAccumulator:
    def test_product_of_fidelities(self):
        acc = SuccessRateAccumulator()
        acc.multiply(0.9)
        acc.multiply(0.8)
        assert acc.success_rate == pytest.approx(0.72)
        assert acc.gate_count == 2

    def test_log_space_avoids_underflow(self):
        acc = SuccessRateAccumulator()
        for _ in range(100_000):
            acc.multiply(0.999)
        assert acc.log_success_rate == pytest.approx(100_000 * math.log(0.999))
        assert acc.success_rate == pytest.approx(math.exp(acc.log_success_rate))

    def test_zero_fidelity_collapses_to_zero(self):
        acc = SuccessRateAccumulator()
        acc.multiply(0.9)
        acc.multiply(0.0)
        acc.multiply(0.9)
        assert acc.success_rate == 0.0
        assert acc.log_success_rate == float("-inf")

    def test_fidelity_above_one_rejected(self):
        acc = SuccessRateAccumulator()
        with pytest.raises(NoiseModelError):
            acc.multiply(1.5)

    def test_empty_accumulator_is_one(self):
        assert SuccessRateAccumulator().success_rate == pytest.approx(1.0)
