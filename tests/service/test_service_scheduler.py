"""Scheduler, cancellation and journal tests: the concurrency surface.

Deterministic concurrency tests drive the real
:class:`CompilationService`/:class:`ServiceScheduler` stack with **stub
engines** whose compilations are gated on events and barriers, so
interleavings are forced rather than hoped for; the journal/restart
tests use the real engine against a disk cache directory.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.runtime.cache import CacheStats, ScheduleCache
from repro.runtime.pool import BatchResult, JobOutcome
from repro.service import CompilationService, JobJournal, make_server, replay_journal
from repro.service.jobs import JobStore, ServiceJob

SMOKE_MANIFEST = Path(__file__).resolve().parents[2] / "examples" / "manifests" / "smoke.json"

WAIT = 30.0  # generous upper bound; every wait is event-driven


def manifest(circuit: str, label: str = "") -> dict:
    return {"jobs": [{"circuit": circuit, "device": "G-2x2", "label": label}]}


def wait_until(predicate, timeout: float = WAIT) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def _outcome(job, index: int) -> JobOutcome:
    return JobOutcome(
        job=job,
        fingerprint=f"{index:064x}",
        compile_fingerprint=f"{index:064x}",
        record={"index": index},
        compile_time_s=0.0,
        from_cache=False,
    )


class StubEngine:
    """An engine whose 'compilations' are synchronisation points.

    ``gates`` maps an outcome index to a :class:`threading.Event` (or
    :class:`threading.Barrier`) every run waits on before delivering that
    outcome; ``outcomes_per_run`` controls how many it delivers.
    """

    workers = 1
    warm = False

    def __init__(self, outcomes_per_run: int = 2, gates: dict | None = None) -> None:
        self.cache = ScheduleCache()
        self.outcomes_per_run = outcomes_per_run
        self.gates = gates or {}
        self.started: list[str] = []
        self.finished: list[str] = []
        self._lock = threading.Lock()

    def run(self, jobs, on_outcome=None):
        label = jobs[0].label if jobs else ""
        with self._lock:
            self.started.append(label)
        for index in range(self.outcomes_per_run):
            gate = self.gates.get(index)
            if isinstance(gate, threading.Barrier):
                gate.wait(timeout=WAIT)
            elif gate is not None:
                assert gate.wait(timeout=WAIT)
            if on_outcome is not None:
                on_outcome(_outcome(jobs[0] if jobs else None, index))
        with self._lock:
            self.finished.append(label)
        return BatchResult(
            outcomes=[], cache_stats=CacheStats(), compilations=0, workers=1
        )

    def close(self) -> None:
        pass


@pytest.fixture
def stub_service():
    """Factory for services over stub engines; closes them afterwards."""
    services = []

    def build(engine, slots: int = 2) -> CompilationService:
        service = CompilationService(engine=engine, slots=slots)
        services.append(service)
        return service

    yield build
    for service in services:
        service.close(drain_timeout=0.5)


class TestConcurrentExecution:
    def test_two_jobs_make_interleaved_progress(self, stub_service):
        # Every outcome is gated on a two-party barrier: the test can
        # only complete if both jobs are inside engine.run at the same
        # time — a serial executor would deadlock (and trip the barrier
        # timeout) instead.
        gates = {0: threading.Barrier(2), 1: threading.Barrier(2)}
        engine = StubEngine(outcomes_per_run=2, gates=gates)
        service = stub_service(engine, slots=2)
        job_a, _ = service.submit_document(manifest("qft_8", "a"))
        job_b, _ = service.submit_document(manifest("bv_12", "b"))
        wait_until(lambda: job_a.finished and job_b.finished)
        assert job_a.status == job_b.status == "done"
        # Running intervals overlap...
        assert job_a.started_at < job_b.finished_at
        assert job_b.started_at < job_a.finished_at
        # ...and the outcome *timestamps* interleave: each job's first
        # outcome lands before the other job's second.
        assert job_a.outcome_times[0] < job_b.outcome_times[1]
        assert job_b.outcome_times[0] < job_a.outcome_times[1]

    def test_single_slot_runs_strictly_serially(self, stub_service):
        engine = StubEngine(outcomes_per_run=1)
        service = stub_service(engine, slots=1)
        job_a, _ = service.submit_document(manifest("qft_8", "a"))
        job_b, _ = service.submit_document(manifest("bv_12", "b"))
        wait_until(lambda: job_a.finished and job_b.finished)
        # The second run starts only after the first finished.
        assert engine.started.index("b") > 0
        assert engine.finished.index("a") == 0

    def test_priority_orders_queue_fifo_within_priority(self, stub_service):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=1, gates={0: hold})
        service = stub_service(engine, slots=1)
        blocker, _ = service.submit_document(manifest("qft_8", "blocker"))
        wait_until(lambda: blocker.status == "running")
        low_a, _ = service.submit_document(manifest("bv_12", "low-a"), priority=0)
        low_b, _ = service.submit_document(manifest("bv_16", "low-b"), priority=0)
        high, _ = service.submit_document(manifest("qft_12", "high"), priority=5)
        hold.set()
        wait_until(lambda: all(j.finished for j in (blocker, low_a, low_b, high)))
        assert engine.started == ["blocker", "high", "low-a", "low-b"]


class TestCancellation:
    def test_cancel_while_running_stops_between_compilations(self, stub_service):
        first_done = threading.Event()
        resume = threading.Event()

        class Engine(StubEngine):
            def run(self, jobs, on_outcome=None):
                on_outcome(_outcome(jobs[0], 0))
                first_done.set()
                assert resume.wait(timeout=WAIT)
                on_outcome(_outcome(jobs[0], 1))  # the cancellation point
                raise AssertionError("the second outcome must be refused")

        service = stub_service(Engine(), slots=1)
        job, _ = service.submit_document(manifest("qft_8", "victim"))
        assert first_done.wait(timeout=WAIT)
        cancelled, accepted = service.cancel(job.job_id)
        assert accepted and cancelled is job and job.cancel_requested
        resume.set()
        wait_until(lambda: job.finished)
        assert job.status == "cancelled"
        # The outcome that landed before the cancel stays streamed.
        lines = list(service.stream_lines(job.job_id, timeout=WAIT))
        assert [line["type"] for line in lines] == ["outcome", "end"]
        assert lines[-1]["status"] == "cancelled"

    def test_cancel_of_queued_job_never_runs(self, stub_service):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=1, gates={0: hold})
        service = stub_service(engine, slots=1)
        blocker, _ = service.submit_document(manifest("qft_8", "blocker"))
        wait_until(lambda: blocker.status == "running")
        queued, _ = service.submit_document(manifest("bv_12", "queued"))
        job, accepted = service.cancel(queued.job_id)
        assert accepted and job.status == "cancelled"
        assert job.started_at is None
        hold.set()
        wait_until(lambda: blocker.finished)
        assert "queued" not in engine.started
        # A cancelled id is retryable, like a failed one.
        retried, resubmitted = service.submit_document(manifest("bv_12", "queued"))
        assert not resubmitted and retried is not queued
        wait_until(lambda: retried.finished)
        assert retried.status == "done"

    def test_duplicate_resubmission_during_execution_is_idempotent(self, stub_service):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=1, gates={0: hold})
        service = stub_service(engine, slots=1)
        job, resubmitted = service.submit_document(manifest("qft_8", "dup"))
        assert not resubmitted
        wait_until(lambda: job.status == "running")
        again, resubmitted = service.submit_document(manifest("qft_8", "dup"))
        assert resubmitted and again is job
        assert service.scheduler.stats()["queued"] == 0  # no second queue entry
        hold.set()
        wait_until(lambda: job.finished)
        assert engine.started == ["dup"]


class TestGracefulShutdown:
    def test_close_drains_running_and_cancels_queued(self):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=1, gates={0: hold})
        service = CompilationService(engine=engine, slots=1)
        running, _ = service.submit_document(manifest("qft_8", "running"))
        wait_until(lambda: running.status == "running")
        queued, _ = service.submit_document(manifest("bv_12", "queued"))
        # Let the running batch finish shortly after the drain begins.
        threading.Timer(0.2, hold.set).start()
        service.close(drain_timeout=WAIT)
        assert running.status == "done"
        assert queued.status == "cancelled"

    def test_close_past_drain_deadline_requests_cancellation(self):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=2, gates={1: hold})
        service = CompilationService(engine=engine, slots=1)
        job, _ = service.submit_document(manifest("qft_8", "slow"))
        wait_until(lambda: len(job.outcomes) == 1)
        service.close(drain_timeout=0.1)  # far shorter than the block
        assert job.cancel_requested
        hold.set()  # the daemon slot hits the cancellation point next
        wait_until(lambda: job.finished)
        assert job.status == "cancelled"


class TestJournalReplay:
    def test_finished_jobs_survive_restart(self, tmp_path):
        with CompilationService(workers=1, cache_dir=tmp_path, warm=False) as service:
            job, _ = service.submit_document(manifest("qft_8", "persist"))
            wait_until(lambda: job.finished)
            assert job.status == "done"
            job_id = job.job_id

        restarted = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
        try:
            replayed = restarted.store.get(job_id)
            assert replayed is not None and replayed.replayed
            assert replayed.status == "done"
            assert replayed.summary is not None
            payload = replayed.status_payload()
            assert payload["replayed"] is True
            assert payload["jobs"] == 1
            assert payload["job_specs"][0]["circuit"] == "qft_8"
            # The durable result store kept the full original stream, so
            # resubmitting the same manifest deduplicates against the
            # replayed record — its results are servable as stored
            # bytes, no re-run needed.
            assert replayed.stored_lines is not None
            again, resubmitted = restarted.submit_document(manifest("qft_8", "persist"))
            assert resubmitted and again is replayed
            lines = list(restarted.stream_lines(job_id))
            assert lines[-1]["type"] == "end" and lines[-1]["status"] == "done"
            assert len(lines) == 2  # one outcome + the end line
        finally:
            restarted.close(drain_timeout=WAIT)

    def test_restart_without_result_store_reruns_from_schedule_cache(self, tmp_path):
        """The pre-store behaviour, still the contract when results=False:
        a replayed terminal job lost its stream, so resubmission re-runs
        (served from the disk schedule cache, compilations=0)."""
        with CompilationService(
            workers=1, cache_dir=tmp_path, warm=False, results=False
        ) as service:
            job, _ = service.submit_document(manifest("qft_8", "persist"))
            wait_until(lambda: job.finished)
            job_id = job.job_id

        restarted = CompilationService(
            workers=1, cache_dir=tmp_path, warm=False, results=False
        )
        try:
            replayed = restarted.store.get(job_id)
            assert replayed is not None and replayed.stored_lines is None
            again, resubmitted = restarted.submit_document(manifest("qft_8", "persist"))
            assert not resubmitted and again is not replayed
            assert again.job_id == job_id
            wait_until(lambda: again.finished)
            assert again.status == "done"
            assert again.summary["compilations"] == 0
            assert len(again.outcomes) == 1 and again.outcomes[0].from_cache
        finally:
            restarted.close(drain_timeout=WAIT)

    def test_interrupted_job_is_resubmitted_and_served_from_cache(self, tmp_path):
        # First service compiles the schedules into the disk cache.
        document = manifest("qft_8", "warm-restart")
        with CompilationService(workers=1, cache_dir=tmp_path, warm=False) as service:
            job, _ = service.submit_document(document)
            wait_until(lambda: job.finished)
            journal_path = service.journal.path

        # Simulate a submission the dead process never finished: journal
        # 'submitted' + 'running' with no terminal event.
        relabelled = manifest("qft_8", "interrupted")
        with JobJournal(journal_path) as journal:
            journal.append(
                "submitted",
                "fedcba9876543210",
                created_at=time.time(),
                priority=0,
                jobs=1,
                specs=[{"circuit": "qft_8"}],
                manifest=relabelled,
            )
            journal.append("running", "fedcba9876543210")

        restarted = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
        try:
            job = restarted.store.get("fedcba9876543210")
            assert job is not None and job.replayed
            wait_until(lambda: job.finished)
            assert job.status == "done"
            # The compile fingerprints were cached by the first service:
            # recovery re-runs the batch without recompiling anything.
            assert job.summary["compilations"] == 0
            assert all(outcome.from_cache for outcome in job.outcomes)
        finally:
            restarted.close(drain_timeout=WAIT)

    def test_interrupted_job_without_manifest_fails_with_restart_error(self, tmp_path):
        journal_path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(journal_path) as journal:
            journal.append(
                "submitted",
                "0123456789abcdef",
                created_at=time.time(),
                priority=0,
                jobs=2,
                specs=[],
                manifest=None,
            )
        for _ in range(2):  # the failure marker must itself be durable
            service = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
            try:
                job = service.store.get("0123456789abcdef")
                assert job is not None
                assert job.status == "failed"
                assert job.error["type"] == "ServiceRestart"
                assert "restart" in job.error["message"]
            finally:
                service.close(drain_timeout=WAIT)

    def test_recover_fail_policy_never_resubmits(self, tmp_path):
        journal_path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(journal_path) as journal:
            journal.append(
                "submitted",
                "00112233445566aa",
                created_at=time.time(),
                jobs=1,
                specs=[],
                manifest=manifest("qft_8", "no-retry"),
            )
        service = CompilationService(
            workers=1, cache_dir=tmp_path, warm=False, recover="fail"
        )
        try:
            job = service.store.get("00112233445566aa")
            assert job.status == "failed"
            assert job.error["type"] == "ServiceRestart"
        finally:
            service.close(drain_timeout=WAIT)

    def test_close_journals_queued_cancellations(self, tmp_path):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=1, gates={0: hold})
        service = CompilationService(
            engine=engine, slots=1, journal_path=tmp_path / "j.jsonl"
        )
        running, _ = service.submit_document(manifest("qft_8", "running"))
        wait_until(lambda: running.status == "running")
        queued, _ = service.submit_document(manifest("bv_12", "queued"))
        threading.Timer(0.2, hold.set).start()
        service.close(drain_timeout=WAIT)
        states = {s["job_id"]: s["status"] for s in replay_journal(tmp_path / "j.jsonl")}
        assert states[running.job_id] == "done"
        assert states[queued.job_id] == "cancelled"

    def test_close_past_deadline_journals_forced_cancellation(self, tmp_path):
        # The journal must record the shutdown-forced cancellation even
        # though the slot thread never gets to finish the transition —
        # otherwise a restart would resurrect deliberately-stopped work.
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=2, gates={1: hold})
        service = CompilationService(
            engine=engine, slots=1, journal_path=tmp_path / "j.jsonl"
        )
        job, _ = service.submit_document(manifest("qft_8", "slow"))
        wait_until(lambda: len(job.outcomes) == 1)
        service.close(drain_timeout=0.1)
        states = {
            s["job_id"]: s["status"] for s in replay_journal(tmp_path / "j.jsonl")
        }
        assert states[job.job_id] == "cancelled"
        hold.set()  # release the daemon slot thread

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path) as journal:
            journal.append(
                "submitted", "aa" * 8, created_at=1.0, jobs=1, specs=[], manifest=None
            )
            journal.append("running", "aa" * 8)
        with path.open("a") as handle:
            handle.write('{"v": 1, "event": "done", "job_id": "aa')  # torn write
        states = replay_journal(path)
        assert len(states) == 1
        assert states[0]["status"] == "running"  # the torn terminal never landed


class TestTryStartCancelAtomicity:
    """The queued→running and queued→cancelled transitions share one
    lock: whichever happens first wins, the loser backs off."""

    def test_cancel_then_try_start_refuses_to_run(self):
        job = ServiceJob("a" * 16, [])
        assert job.cancel() and job.status == "cancelled"
        assert not job.try_start()
        assert job.status == "cancelled" and job.started_at is None

    def test_try_start_then_cancel_goes_cooperative(self):
        job = ServiceJob("b" * 16, [])
        assert job.try_start() and job.status == "running"
        assert job.cancel()  # accepted, but only as a request flag
        assert job.status == "running" and job.cancel_requested

    def test_try_start_is_single_shot(self):
        job = ServiceJob("c" * 16, [])
        assert job.try_start()
        assert not job.try_start()


class TestJobStoreSnapshots:
    def test_all_and_counts_return_stable_snapshots(self):
        store = JobStore()
        store.put(ServiceJob("a" * 16, []))
        snapshot = store.all()
        counts = store.counts()
        store.put(ServiceJob("b" * 16, []))
        assert len(snapshot) == 1  # unaffected by the later put
        assert counts == {
            "queued": 1, "running": 0, "done": 0, "failed": 0, "cancelled": 0,
        }
        assert len(store.all()) == 2

    def test_iteration_survives_concurrent_puts(self):
        store = JobStore()
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            i = 0
            while not stop.is_set():
                store.put(ServiceJob(f"{i:016x}", []))
                i += 1

        def reader():
            try:
                for _ in range(300):
                    store.all()
                    store.counts()
            except BaseException as exc:  # noqa: BLE001 - the regression signal
                errors.append(exc)

        writer_thread = threading.Thread(target=writer, daemon=True)
        reader_thread = threading.Thread(target=reader)
        writer_thread.start()
        reader_thread.start()
        reader_thread.join(WAIT)
        stop.set()
        writer_thread.join(WAIT)
        assert not errors


class TestCancelOverHTTP:
    def test_delete_cancels_a_queued_job(self):
        hold = threading.Event()
        engine = StubEngine(outcomes_per_run=1, gates={0: hold})
        service = CompilationService(engine=engine, slots=1)
        server = make_server(service=service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        from repro.service import ServiceClient

        client = ServiceClient(server.url, timeout=WAIT)
        try:
            running = client.submit(manifest("qft_8", "running"))
            wait_until(
                lambda: client.job(running["job_id"])["status"] == "running"
            )
            queued = client.submit(manifest("bv_12", "queued"))
            payload = client.cancel(queued["job_id"])
            assert payload["status"] == "cancelled"
            hold.set()
            # The cancelled job still streams: zero outcomes, then an
            # 'end' line carrying the terminal state.
            lines = list(client.stream_results(queued["job_id"]))
            assert [line["type"] for line in lines] == ["end"]
            assert lines[0]["status"] == "cancelled"
            assert client.job(queued["job_id"])["status"] == "cancelled"
        finally:
            server.shutdown()
            server.server_close()
            service.close(drain_timeout=WAIT)
            thread.join(timeout=5)


class TestStreamedParityUnderConcurrency:
    def test_overlapping_submissions_stay_byte_identical(self, tmp_path):
        """Two real batches running concurrently over one warm engine
        must stream exactly the records a direct run_batch produces."""
        from repro.runtime.api import run_batch
        from repro.runtime.manifest import jobs_from_manifest

        documents = [
            json.loads(SMOKE_MANIFEST.read_text()),
            json.loads(SMOKE_MANIFEST.read_text()),
        ]
        documents[1]["defaults"]["gate_implementation"] = "pm"
        direct = [
            run_batch(jobs_from_manifest(document)).records()
            for document in documents
        ]
        with CompilationService(workers=2, cache_dir=tmp_path, slots=2) as service:
            jobs = [service.submit_document(document)[0] for document in documents]
            wait_until(lambda: all(job.finished for job in jobs))
            assert [job.status for job in jobs] == ["done", "done"]
            streamed = [
                [
                    line["record"]
                    for line in service.stream_lines(job.job_id, timeout=WAIT)
                    if line["type"] == "outcome"
                ]
                for job in jobs
            ]
        for streamed_records, direct_records in zip(streamed, direct):
            assert json.dumps(streamed_records, sort_keys=True) == json.dumps(
                direct_records, sort_keys=True
            )
