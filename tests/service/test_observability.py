"""Service observability tests: /v1/metrics, healthz extras, the client.

Covers the wiring the obs unit tests cannot: the endpoint serves valid
Prometheus text with the right content type, HTTP traffic lands in the
per-route counters (including error statuses), scheduler/cache/journal
families are all present, and the health payload carries uptime and
journal size.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import ServiceError
from repro.obs import MetricsRegistry, parse_exposition
from repro.service import CompilationService, ServiceClient, make_server

SMOKE_MANIFEST = Path(__file__).resolve().parents[2] / "examples" / "manifests" / "smoke.json"

#: Metric families the service contract promises on /v1/metrics.
EXPECTED_FAMILIES = (
    "repro_http_requests_total",
    "repro_http_request_seconds",
    "repro_service_uptime_seconds",
    "repro_service_info",
    "repro_service_jobs",
    "repro_scheduler_slots",
    "repro_scheduler_queued_jobs",
    "repro_scheduler_jobs_total",
    "repro_scheduler_queue_latency_seconds",
    "repro_scheduler_slot_busy_seconds_total",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_entries",
    "repro_engine_runs_total",
    "repro_engine_compilations_total",
    "repro_engine_workers",
    "repro_journal_events_total",
    "repro_journal_file_bytes",
    "repro_journal_rotations_total",
    "repro_cache_stores_total",
    "repro_cache_network_errors_total",
    "repro_result_store_events_total",
    "repro_result_store_bytes_written_total",
    "repro_result_store_entries",
    "repro_result_store_disk_bytes",
)


@pytest.fixture(scope="module")
def service_stack(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("obs-service-cache")
    server = make_server(workers=2, port=0, cache_dir=cache_dir)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=120.0)
    # One completed job so every instrument has seen traffic.
    client.results(client.submit_file(SMOKE_MANIFEST)["job_id"])
    yield server, client
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(timeout=5)


class TestMetricsEndpoint:
    def test_serves_prometheus_content_type(self, service_stack):
        server, _ = service_stack
        with urllib.request.urlopen(f"{server.url}/v1/metrics") as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert body.endswith("\n")

    def test_exposition_is_valid_and_covers_the_contract(self, service_stack):
        _, client = service_stack
        parsed = parse_exposition(client.metrics())  # raises on malformed text
        for family in EXPECTED_FAMILIES:
            assert family in parsed, f"missing metric family {family}"
        version_sample = parsed["repro_service_info"].samples[0]
        from repro import __version__

        assert version_sample.labels_dict() == {"version": __version__}
        assert parsed["repro_scheduler_slots"].value() == 2

    def test_http_counters_track_traffic_and_status_codes(self, service_stack):
        _, client = service_stack
        before = parse_exposition(client.metrics())

        client.health()
        with pytest.raises(ServiceError):
            client.job("0" * 16)  # unknown id -> 404

        after = parse_exposition(client.metrics())
        healthz = after["repro_http_requests_total"].value(
            method="GET", route="/v1/healthz", status="200"
        )
        try:
            healthz_before = before["repro_http_requests_total"].value(
                method="GET", route="/v1/healthz", status="200"
            )
        except KeyError:
            healthz_before = 0
        assert healthz == healthz_before + 1
        missing = after["repro_http_requests_total"].value(
            method="GET", route="/v1/jobs/{id}", status="404"
        )
        assert missing >= 1
        # The latency histogram counts the same requests.
        assert after["repro_http_request_seconds"].value(
            method="GET", route="/v1/healthz", le="+Inf"
        ) >= healthz

    def test_latency_histograms_use_tuned_buckets(self, service_stack):
        # The bucket edges are tuned from the measured distributions in
        # benchmarks/results/BENCH_service_throughput.json: every loadgen
        # profile lands in the 3-66 ms band, so the HTTP histogram must
        # resolve it finer than the default 10/25/50 ms edges.
        from repro.obs import QUEUE_LATENCY_BUCKETS, SERVICE_LATENCY_BUCKETS

        _, client = service_stack
        parsed = parse_exposition(client.metrics())

        def edges(family):
            return sorted(
                {
                    float(sample.labels_dict()["le"])
                    for sample in parsed[family].samples
                    if sample.name.endswith("_bucket")
                    and sample.labels_dict()["le"] != "+Inf"
                }
            )

        assert edges("repro_http_request_seconds") == list(
            SERVICE_LATENCY_BUCKETS
        )
        assert edges("repro_scheduler_queue_latency_seconds") == list(
            QUEUE_LATENCY_BUCKETS
        )
        # The tuned band really is finer where the traffic lives: at
        # least eight edges below 100 ms (the defaults have six).
        assert sum(1 for edge in SERVICE_LATENCY_BUCKETS if edge < 0.1) >= 8

    def test_job_census_counts_the_completed_job(self, service_stack):
        _, client = service_stack
        parsed = parse_exposition(client.metrics())
        assert parsed["repro_service_jobs"].value(status="done") >= 1
        assert parsed["repro_scheduler_jobs_total"].value(transition="done") >= 1

    def test_journal_metrics_reflect_appended_events(self, service_stack):
        server, client = service_stack
        parsed = parse_exposition(client.metrics())
        journal = server.service.journal
        assert journal is not None
        # submitted + running + done for at least one job.
        assert parsed["repro_journal_events_total"].value() >= 3
        assert parsed["repro_journal_file_bytes"].value() == journal.size_bytes()

    def test_uptime_counts_upward(self, service_stack):
        _, client = service_stack
        first = parse_exposition(client.metrics())["repro_service_uptime_seconds"].value()
        second = parse_exposition(client.metrics())["repro_service_uptime_seconds"].value()
        assert 0 < first <= second


class TestHealthExtras:
    def test_healthz_reports_uptime_and_journal_size(self, service_stack):
        _, client = service_stack
        health = client.health()
        assert health["uptime_seconds"] > 0
        journal = health["journal"]
        assert journal["size_bytes"] > 0
        assert journal["events_appended"] >= 3
        assert Path(journal["path"]).exists()

    def test_journal_is_null_when_disabled(self, tmp_path):
        service = CompilationService(workers=1, cache_dir=tmp_path, journal=False)
        try:
            health = service.health_payload()
            assert health["journal"] is None
            assert health["uptime_seconds"] >= 0
        finally:
            service.close()


class TestEmbeddingRegistry:
    def test_external_registry_receives_service_metrics(self, tmp_path):
        registry = MetricsRegistry()
        own = registry.counter("app_events_total", "The embedder's own counter.")
        own.inc(5)
        service = CompilationService(
            workers=1, cache_dir=tmp_path, metrics_registry=registry
        )
        try:
            rendered = service.metrics_text()
            assert "app_events_total 5" in rendered
            assert "repro_service_uptime_seconds" in rendered
            assert service.metrics.registry is registry
        finally:
            service.close()

    def test_client_metrics_returns_raw_text(self, service_stack):
        _, client = service_stack
        text = client.metrics()
        assert isinstance(text, str)
        assert text.startswith("# HELP")
