"""HTTP service tests: parity with run_batch, caching, error paths."""

from __future__ import annotations

import http.client
import json
import threading
from pathlib import Path

import pytest

from repro.exceptions import ManifestError, ReproError, ServiceError
from repro.registry import available_compilers
from repro.runtime.api import run_batch
from repro.runtime.manifest import load_manifest
from repro.service import CompilationService, ServiceClient, job_batch_id, make_server

SMOKE_MANIFEST = Path(__file__).resolve().parents[2] / "examples" / "manifests" / "smoke.json"


@pytest.fixture(scope="module")
def service_stack():
    """One live service + HTTP server + client, shared across the module."""
    server = make_server(workers=2, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=120.0)
    yield server.service, client
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(timeout=5)


class TestEndToEndParity:
    def test_streamed_records_byte_identical_to_run_batch(self, service_stack):
        _, client = service_stack
        receipt = client.submit_file(SMOKE_MANIFEST)
        lines = list(client.stream_results(receipt["job_id"]))
        assert lines[-1]["type"] == "end" and lines[-1]["status"] == "done"
        streamed = [line["record"] for line in lines[:-1]]
        assert all(line["type"] == "outcome" for line in lines[:-1])

        direct = run_batch(load_manifest(SMOKE_MANIFEST))
        assert json.dumps(streamed, sort_keys=True) == json.dumps(
            direct.records(), sort_keys=True
        )

    def test_encoded_stream_byte_identical_to_dict_stream(self, service_stack):
        """The zero-re-serialisation fast path changes no wire bytes."""
        service, client = service_stack
        job_id = client.submit_file(SMOKE_MANIFEST)["job_id"]
        client.results(job_id)  # wait until the job finishes
        dict_lines = list(service.stream_lines(job_id, timeout=60))
        encoded = list(service.stream_encoded(job_id, timeout=60))
        assert encoded == [
            json.dumps(line, sort_keys=True).encode("utf-8") for line in dict_lines
        ]

    def test_restream_serves_cached_line_bytes(self, service_stack):
        service, client = service_stack
        job_id = client.submit_file(SMOKE_MANIFEST)["job_id"]
        client.results(job_id)
        job = service.job(job_id)
        replay = list(service.stream_encoded(job_id, timeout=60))
        # Every outcome line is the exact cached object, not a re-encode.
        for line, cached in zip(replay, job.encoded_lines):
            assert line is cached

    def test_repeated_submission_is_idempotent(self, service_stack):
        _, client = service_stack
        first = client.submit_file(SMOKE_MANIFEST)
        again = client.submit_file(SMOKE_MANIFEST)
        assert again["job_id"] == first["job_id"]
        assert again["resubmitted"] is True
        # The deduplicated job still streams its full results.
        assert len(client.records(again["job_id"])) == 2

    def test_equivalent_compilations_served_from_schedule_cache(self, service_stack):
        _, client = service_stack
        client.results(client.submit_file(SMOKE_MANIFEST)["job_id"])
        # Same compilations, different evaluation settings: a distinct
        # job id whose compile fingerprints are already cached.
        manifest = json.loads(SMOKE_MANIFEST.read_text())
        manifest["defaults"]["gate_implementation"] = "pm"
        receipt = client.submit(manifest)
        outcomes = client.results(receipt["job_id"])
        assert all(outcome["from_cache"] for outcome in outcomes)
        assert client.job(receipt["job_id"])["summary"]["compilations"] == 0

    def test_job_ids_derive_from_fingerprints(self, service_stack):
        _, client = service_stack
        receipt = client.submit_file(SMOKE_MANIFEST)
        assert receipt["job_id"] == job_batch_id(load_manifest(SMOKE_MANIFEST))

    def test_metadata_only_differences_get_distinct_jobs(self, service_stack):
        # label/parameter/value never enter the compile fingerprints but
        # do appear in records — two manifests differing only there must
        # not collide on one job id (the collision would silently serve
        # the first manifest's records to the second submitter).
        _, client = service_stack
        base = {"jobs": [{"circuit": "qft_12", "device": "G-2x2", "label": "run-A"}]}
        relabelled = {"jobs": [{"circuit": "qft_12", "device": "G-2x2", "label": "run-B"}]}
        first = client.submit(base)
        second = client.submit(relabelled)
        assert first["job_id"] != second["job_id"]
        assert client.records(second["job_id"])[0]["label"] == "run-B"
        # ... while the compilation itself is still shared via the cache.
        assert client.results(second["job_id"])[0]["from_cache"] is True

    def test_status_endpoint_reports_progress(self, service_stack):
        _, client = service_stack
        job_id = client.submit_file(SMOKE_MANIFEST)["job_id"]
        client.results(job_id)
        payload = client.job(job_id)
        assert payload["status"] == "done"
        assert payload["completed"] == payload["jobs"] == 2
        assert [spec["circuit"] for spec in payload["job_specs"]] == ["qft_12", "bv_16"]
        assert any(entry["job_id"] == job_id for entry in client.jobs())


class TestCachedScheduleLookup:
    def test_lookup_by_compile_fingerprint(self, service_stack):
        _, client = service_stack
        job_id = client.submit_file(SMOKE_MANIFEST)["job_id"]
        outcome = client.results(job_id)[0]
        payload = client.schedule(outcome["compile_fingerprint"])
        entry = payload["entry"]
        assert entry["compiler_name"] == "s-sync"
        assert entry["schedule"]["operations"]

    def test_unknown_fingerprint_is_structured_404(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.schedule("f" * 64)
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"]["type"] == "unknown_fingerprint"

    def test_format_version_mismatch_is_a_miss_not_a_500(self, tmp_path):
        # An on-disk entry from another library version must surface as
        # "unknown fingerprint", never as a server error.
        service = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
        fingerprint = "a" * 64
        (tmp_path / f"{fingerprint}.json").write_text(
            json.dumps({"format_version": 999, "schedule": {}})
        )
        try:
            assert service.schedule_payload(fingerprint) is None
        finally:
            service.close()


class TestRegistryAndHealth:
    def test_compilers_endpoint_mirrors_registry(self, service_stack):
        _, client = service_stack
        listed = {row["name"]: row for row in client.compilers()}
        assert set(listed) == {spec.name for spec in available_compilers()}
        assert listed["s-sync"]["accepts_mapping"] is True
        assert "routing" in " ".join(listed["s-sync"]["passes"])

    def test_health_reports_engine_and_cache(self, service_stack):
        _, client = service_stack
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["engine"]["warm"] is True
        assert set(payload["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }

    def test_health_reports_scheduler_depth_and_cache_counters(self, service_stack):
        _, client = service_stack
        payload = client.health()
        scheduler = payload["scheduler"]
        assert scheduler["slots"] >= 1
        assert scheduler["active"] >= 0 and scheduler["queued"] >= 0
        assert {"hits", "misses", "stores", "evictions"} <= set(payload["cache"])


class TestJobListingAndCancel:
    def test_jobs_listing_paginates(self, service_stack):
        _, client = service_stack
        client.results(client.submit_file(SMOKE_MANIFEST)["job_id"])
        page = client.jobs_page(offset=0, limit=1)
        assert page["count"] == 1 and page["total"] >= 1
        assert len(page["jobs"]) == 1
        everything = client.jobs_page()
        assert everything["count"] == everything["total"]
        # Pages tile the full listing without overlap.
        ids = [job["job_id"] for job in everything["jobs"]]
        paged = [
            job["job_id"]
            for offset in range(everything["total"])
            for job in client.jobs(offset=offset, limit=1)
        ]
        assert paged == ids

    def test_bad_pagination_query_is_400(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/jobs?offset=nope")
        assert excinfo.value.status == 400

    def test_cancel_of_finished_job_is_409(self, service_stack):
        _, client = service_stack
        job_id = client.submit_file(SMOKE_MANIFEST)["job_id"]
        client.results(job_id)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"]["type"] == "job_finished"

    def test_cancel_of_unknown_job_is_404(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.cancel("0" * 16)
        assert excinfo.value.status == 404

    def test_submit_rejects_non_integer_priority(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/v1/jobs?priority=high", b"{}")
        assert excinfo.value.status == 400


class TestErrorPaths:
    def test_malformed_json_body_is_400(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.submit(b"{not json")
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error"]["type"] == "manifest_error"
        assert "invalid JSON" in str(excinfo.value)

    def test_unknown_compiler_is_400(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"jobs": [{"circuit": "qft_8", "device": "G-2x2", "compiler": "nope"}]})
        assert excinfo.value.status == 400
        assert "unknown compiler" in str(excinfo.value)

    def test_bad_device_spec_is_400(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"jobs": [{"circuit": "qft_8", "device": "X-9"}]})
        assert excinfo.value.status == 400
        assert "invalid device spec" in str(excinfo.value)

    def test_empty_manifest_is_400(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"jobs": []})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client.job("0" * 16)
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"]["type"] == "unknown_job"

    def test_unknown_results_stream_is_404(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream_results("0" * 16))
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_invalid_content_length_is_400_not_500(self, service_stack):
        _, client = service_stack
        host = client.base_url.removeprefix("http://")
        hostname, port = host.rsplit(":", 1)
        connection = http.client.HTTPConnection(hostname, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            payload = json.loads(response.read().decode())
            assert payload["error"]["type"] == "bad_request"
        finally:
            connection.close()

    def test_oversized_body_is_413(self, service_stack):
        _, client = service_stack
        host = client.base_url.removeprefix("http://")
        hostname, port = host.rsplit(":", 1)
        connection = http.client.HTTPConnection(hostname, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Length", str(10**9))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()

    def test_wrong_method_is_405(self, service_stack):
        _, client = service_stack
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/v1/compilers", b"{}")
        assert excinfo.value.status == 405

    def test_infeasible_job_fails_the_batch_not_the_service(self, service_stack):
        _, client = service_stack
        # qft_40 passes manifest validation but cannot fit the device;
        # the job ends "failed" with a typed error, and the service keeps
        # serving afterwards.
        receipt = client.submit(
            {"jobs": [{"circuit": "qft_40", "device": "G-2x2", "capacity": 4}]}
        )
        with pytest.raises(ServiceError, match="failed"):
            client.results(receipt["job_id"])
        payload = client.job(receipt["job_id"])
        assert payload["status"] == "failed"
        assert payload["error"]["type"] == "MappingError"
        assert client.health()["status"] == "ok"


class TestTypedManifestErrors:
    def test_manifest_error_is_a_repro_error(self):
        assert issubclass(ManifestError, ReproError)

    def test_service_rejects_without_running_anything(self, service_stack):
        service, client = service_stack
        before = len(service.store)
        with pytest.raises(ServiceError):
            client.submit({"jobs": [{"circuit": "qft_8"}]})
        assert len(service.store) == before
