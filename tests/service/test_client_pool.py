"""Keep-alive behaviour of the pooled ServiceClient transport."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ServiceError
from repro.service import ServiceClient
from repro.service.server import make_server


@pytest.fixture()
def server(tmp_path):
    server = make_server(workers=1, port=0, cache_dir=tmp_path, journal=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(timeout=5)


MANIFEST = {"jobs": [{"circuit": "qft_4", "device": "G-2x2"}]}


class TestConnectionReuse:
    def test_sequential_requests_share_one_connection(self, server):
        client = ServiceClient(server.url)
        for _ in range(5):
            assert client.health()["status"] == "ok"
        assert client.connections_opened == 1

    def test_streaming_results_returns_the_connection_to_the_pool(self, server):
        client = ServiceClient(server.url)
        receipt = client.submit(MANIFEST)
        records = client.records(receipt["job_id"])
        assert len(records) == 1
        assert client.health()["status"] == "ok"
        # submit + stream + health all rode the same socket.
        assert client.connections_opened == 1

    def test_error_responses_keep_the_connection_alive(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.job("0" * 16)
        assert excinfo.value.status == 404
        assert client.health()["status"] == "ok"
        assert client.connections_opened == 1

    def test_unread_body_paths_do_not_poison_the_pool(self, server):
        """A body posted to a route that never reads it must not leak
        into the next request on a reused connection."""
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/v1/compilers", b"{}")
        assert excinfo.value.status == 405
        # The poisoned connection was closed, not pooled; this request
        # runs clean (on a fresh socket).
        receipt = client.submit(MANIFEST)
        assert receipt["job_id"]

    def test_stale_pooled_connection_reconnects_transparently(self, server):
        client = ServiceClient(server.url)
        assert client.health()["status"] == "ok"
        # Kill the pooled socket under the client, as an idle-timeout or
        # restarted server would.
        with client._pool_lock:
            for connection in client._idle:
                connection.close()
        assert client.health()["status"] == "ok"  # retried on a fresh socket

    def test_concurrent_threads_draw_distinct_connections(self, server):
        client = ServiceClient(server.url)
        barrier = threading.Barrier(4)
        errors: list[Exception] = []

        def probe() -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(3):
                    assert client.health()["status"] == "ok"
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=probe) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert 1 <= client.connections_opened <= 4

    def test_close_empties_the_idle_pool(self, server):
        client = ServiceClient(server.url)
        client.health()
        client.close()
        assert client._idle == []
        # Still usable afterwards — a new connection is simply opened.
        assert client.health()["status"] == "ok"
        assert client.connections_opened == 2
