"""Journal compaction tests: the rewrite, the replay parity, the flag.

``compact_journal`` rewrites the append-only event log into the minimal
events replay needs; the invariant under test throughout is that
**replaying the compacted file yields exactly the folded states of the
original** — compaction must never change what a restart rebuilds.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.service import (
    CompilationService,
    JobJournal,
    compact_journal,
    replay_journal,
)

WAIT = 30.0


def wait_until(predicate, timeout: float = WAIT) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def manifest(circuit: str, label: str = "") -> dict:
    return {"jobs": [{"circuit": circuit, "device": "G-2x2", "label": label}]}


def append_full_lifecycle(journal: JobJournal, job_id: str, extra_events: int = 0) -> None:
    """One job's submitted/running/done trail plus redundant noise."""
    journal.append(
        "submitted",
        job_id,
        created_at=time.time(),
        priority=1,
        jobs=1,
        specs=[{"circuit": "qft_8"}],
        manifest=manifest("qft_8", job_id),
    )
    journal.append("running", job_id)
    # Redundant re-submissions of the same id: replay keeps only the
    # last fold, compaction must drop the superseded trail entirely.
    for _ in range(extra_events):
        journal.append(
            "submitted",
            job_id,
            created_at=time.time(),
            priority=1,
            jobs=1,
            specs=[{"circuit": "qft_8"}],
            manifest=manifest("qft_8", job_id),
        )
        journal.append("running", job_id)
    journal.append("done", job_id, summary={"jobs": 1, "compilations": 1})


class TestCompactJournal:
    def test_compaction_preserves_replay_exactly(self, tmp_path):
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path) as journal:
            append_full_lifecycle(journal, "aa" * 8, extra_events=3)
            append_full_lifecycle(journal, "bb" * 8)
            # A queued-only job and a running-only job survive too.
            journal.append(
                "submitted",
                "cc" * 8,
                created_at=time.time(),
                priority=0,
                jobs=2,
                specs=[{"circuit": "bv_8"}],
                manifest=None,
            )
            journal.append(
                "submitted",
                "dd" * 8,
                created_at=time.time(),
                priority=5,
                jobs=1,
                specs=[],
                manifest=manifest("bv_8"),
            )
            journal.append("running", "dd" * 8)

        before = replay_journal(path)
        events_before, events_after = compact_journal(path)
        after = replay_journal(path)

        assert after == before
        assert events_after < events_before
        # Minimality: submitted per job, running where started, terminal
        # where finished = 3 + 3 + 1 + 2 for the four jobs above.
        assert events_after == 9

    def test_compaction_drops_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path) as journal:
            append_full_lifecycle(journal, "aa" * 8)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 99, "event": "future", "job_id": "x"}) + "\n")
            handle.write('{"torn": ')  # crashed mid-write
        before = replay_journal(path)
        compact_journal(path)
        assert replay_journal(path) == before
        for line in path.read_text().splitlines():
            assert json.loads(line)["v"] == 1

    def test_missing_file_is_a_noop(self, tmp_path):
        assert compact_journal(tmp_path / "absent.jsonl") == (0, 0)

    def test_error_and_summary_survive_compaction(self, tmp_path):
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path) as journal:
            journal.append(
                "submitted",
                "ee" * 8,
                created_at=123.0,
                priority=0,
                jobs=1,
                specs=[],
                manifest=None,
            )
            journal.append("running", "ee" * 8)
            journal.append(
                "failed", "ee" * 8, error={"type": "ReproError", "message": "boom"}
            )
        compact_journal(path)
        (state,) = replay_journal(path)
        assert state["status"] == "failed"
        assert state["error"] == {"type": "ReproError", "message": "boom"}


class TestServiceStartupCompaction:
    def test_restart_compacts_and_preserves_the_job_table(self, tmp_path):
        with CompilationService(workers=1, cache_dir=tmp_path, warm=False) as service:
            job, _ = service.submit_document(manifest("qft_8", "compact-me"))
            wait_until(lambda: job.finished)
            journal_path = service.journal.path
            job_id = job.job_id

        # Pad the journal with a superseded lifecycle for the same job,
        # as a long-lived service would accumulate across resubmissions.
        with JobJournal(journal_path) as journal:
            append_full_lifecycle(journal, job_id, extra_events=5)
        size_before = journal_path.stat().st_size
        folded_before = replay_journal(journal_path)

        restarted = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
        try:
            assert journal_path.stat().st_size < size_before
            replayed = restarted.store.get(job_id)
            assert replayed is not None and replayed.status == "done"
            # The compacted file folds to the same states the service
            # actually recovered from.
            assert replay_journal(journal_path) == folded_before
        finally:
            restarted.close(drain_timeout=WAIT)

    def test_no_compact_keeps_the_event_log(self, tmp_path):
        with CompilationService(workers=1, cache_dir=tmp_path, warm=False) as service:
            job, _ = service.submit_document(manifest("qft_8", "keep-log"))
            wait_until(lambda: job.finished)
            journal_path = service.journal.path
        with JobJournal(journal_path) as journal:
            append_full_lifecycle(journal, "ab" * 8, extra_events=5)
        size_before = journal_path.stat().st_size

        preserved = CompilationService(
            workers=1, cache_dir=tmp_path, warm=False, compact=False
        )
        try:
            # Untouched on startup: the escape hatch for operators who
            # treat the journal as an audit log.
            assert journal_path.stat().st_size >= size_before
        finally:
            preserved.close(drain_timeout=WAIT)

    def test_new_events_append_after_compaction(self, tmp_path):
        with CompilationService(workers=1, cache_dir=tmp_path, warm=False) as service:
            job, _ = service.submit_document(manifest("qft_8", "first"))
            wait_until(lambda: job.finished)

        restarted = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
        try:
            second, _ = restarted.submit_document(manifest("bv_8", "second"))
            wait_until(lambda: second.finished)
            journal_path = restarted.journal.path
        finally:
            restarted.close(drain_timeout=WAIT)
        states = {s["job_id"]: s["status"] for s in replay_journal(journal_path)}
        assert len(states) == 2
        assert set(states.values()) == {"done"}


class TestJournalRotation:
    """Size-triggered in-place rotation (``max_bytes``) while appending."""

    def test_rotation_compacts_in_place_and_preserves_replay(self, tmp_path):
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path, max_bytes=4096) as journal:
            # Superseded lifecycles are pure bloat: rotation folds them
            # away without losing any job's final state.
            for index in range(8):
                append_full_lifecycle(journal, f"{index:016x}", extra_events=6)
            assert journal.rotations >= 1
            assert journal.size_bytes() <= journal.bytes_written
        states = {s["job_id"]: s["status"] for s in replay_journal(path)}
        assert states == {f"{index:016x}": "done" for index in range(8)}
        # And the file stayed usable for appends after each rotation.
        assert path.stat().st_size > 0

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path) as journal:
            for index in range(4):
                append_full_lifecycle(journal, f"{index:016x}", extra_events=6)
            assert journal.rotations == 0
            # Append-only: every byte written is still on disk.
            assert journal.size_bytes() == journal.bytes_written

    def test_thrash_guard_bounds_rotation_frequency(self, tmp_path):
        """Live state bigger than the threshold must not rotate per append."""
        path = tmp_path / "jobs.journal.jsonl"
        with JobJournal(path, max_bytes=512) as journal:
            # ~8 distinct done jobs exceed 512 bytes even fully compacted,
            # so the file can never shrink below max_bytes.
            for index in range(8):
                append_full_lifecycle(journal, f"{index:016x}")
            appends = journal.events_appended
            rotations = journal.rotations
            # Each rotation needed at least max_bytes//2 fresh bytes, so
            # the count is far below one-per-append.
            assert rotations < appends / 2

    def test_service_rotates_mid_run_and_counts_it(self, tmp_path):
        service = CompilationService(
            workers=1,
            cache_dir=tmp_path,
            warm=False,
            journal_max_bytes=1024,
        )
        try:
            jobs = []
            for index in range(6):
                job, _ = service.submit_document(
                    manifest("qft_4", f"rotate-{index}")
                )
                jobs.append(job)
            wait_until(lambda: all(job.finished for job in jobs))
            assert service.journal.rotations >= 1
            assert service.health_payload()["journal"]["rotations"] >= 1
            exposition = service.metrics.render()
            assert "repro_journal_rotations_total" in exposition
            journal_path = service.journal.path
        finally:
            service.close(drain_timeout=WAIT)

        # A restart rebuilds every job from the rotated journal.
        restarted = CompilationService(workers=1, cache_dir=tmp_path, warm=False)
        try:
            for job in jobs:
                replayed = restarted.store.get(job.job_id)
                assert replayed is not None and replayed.status == "done"
            assert replay_journal(journal_path)
        finally:
            restarted.close(drain_timeout=WAIT)
