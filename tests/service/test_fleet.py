"""Fleet router tests: sharded routing, shared cache, death and failover.

The fleet contract under test: consistent fingerprint-hash routing (a
resubmission lands on the worker that owns the job), cross-worker
schedule-cache sharing through the router tier (one compilation
fleet-wide per distinct circuit), aggregated read endpoints, and bounded
failover — killing a worker never loses an acknowledged job, and the
replayed result records are byte-identical to the originals.

Workers are real spawned processes, so this file keeps fleets small
(two workers, one engine process each) and reuses one fleet across the
read-only tests.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.obs import parse_exposition
from repro.service import ServiceClient
from repro.service.fleet import FleetRouter, make_fleet

WAIT = 120.0


def wait_until(predicate, timeout: float = WAIT) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.05)


def manifest(circuit: str, label: str) -> dict:
    return {"jobs": [{"circuit": circuit, "device": "G-2x2", "label": label}]}


def boot_fleet(cache_dir, size: int = 2, **kwargs):
    server = make_fleet(
        port=0,
        size=size,
        cache_dir=cache_dir,
        workers=1,
        warm=False,
        slots=1,
        **kwargs,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def stop_fleet(server, thread) -> None:
    server.shutdown()
    server.server_close()
    server.close()
    thread.join(timeout=10)


def fetch_json(url: str):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("fleet-cache")
    server, thread = boot_fleet(cache_dir)
    client = ServiceClient(server.url, timeout=WAIT)
    yield server, client
    client.close()
    stop_fleet(server, thread)


class TestRoutingAndAggregation:
    def test_submissions_shard_and_resubmissions_stay_put(self, fleet):
        server, client = fleet
        receipts = [
            client.submit(manifest("qft_4", f"shard-{index}")) for index in range(6)
        ]
        for receipt in receipts:
            records = client.records(receipt["job_id"])
            assert len(records) == 1
        # Deterministic routing: every job id maps onto its hash shard.
        fleet_state = fetch_json(f"{server.url}/v1/fleet")
        routed = [worker["jobs_routed"] for worker in fleet_state["workers"]]
        assert sum(routed) >= 6
        # Byte-identical resubmission dedups on the owning worker rather
        # than compiling anywhere else.
        again = client.submit(manifest("qft_4", "shard-0"))
        assert again["resubmitted"]
        assert again["job_id"] == receipts[0]["job_id"]

    def test_jobs_listing_merges_every_worker(self, fleet):
        server, client = fleet
        page = client.jobs_page()
        assert page["total"] >= 6
        assert len(page["jobs"]) == page["count"]
        created = [job["created_at"] for job in page["jobs"]]
        assert created == sorted(created)
        # Pagination windows the merged listing, not one worker's.
        window = client.jobs_page(offset=1, limit=2)
        assert window["count"] == 2
        assert window["jobs"][0]["job_id"] == page["jobs"][1]["job_id"]

    def test_health_reports_fleet_topology(self, fleet):
        _, client = fleet
        health = client.health()
        assert health["status"] == "ok"
        assert health["fleet"]["size"] == 2
        assert health["fleet"]["alive"] == 2
        assert len(health["fleet"]["workers"]) == 2
        assert all(worker["url"] for worker in health["fleet"]["workers"])

    def test_metrics_aggregate_workers_and_add_fleet_families(self, fleet):
        _, client = fleet
        parsed = parse_exposition(client.metrics())  # must stay well-formed
        assert parsed["repro_fleet_workers"].value(state="alive") == 2
        assert parsed["repro_fleet_workers"].value(state="configured") == 2
        # Worker families survive aggregation, summed across the fleet.
        done = parsed["repro_scheduler_jobs_total"].value(transition="done")
        assert done >= 6
        routed = sum(s.value for s in parsed["repro_fleet_jobs_routed_total"].samples)
        assert routed >= 6
        assert "repro_fleet_failovers_total" in parsed
        assert "repro_fleet_respawns_total" in parsed

    def test_cross_worker_cache_sharing_compiles_each_circuit_once(self, fleet):
        server, client = fleet
        # All the distinct-label qft_4 jobs above share one compile
        # fingerprint; the fleet-wide compilation count proves the first
        # worker's schedule reached the others through the router tier.
        parsed = parse_exposition(client.metrics())
        assert parsed["repro_engine_compilations_total"].value() == 1
        fleet_state = fetch_json(f"{server.url}/v1/fleet")
        assert fleet_state["shared_cache"]["stores"] >= 1

    def test_unknown_job_and_bad_manifest_map_to_client_errors(self, fleet):
        server, client = fleet
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.job("0" * 16)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit(b"{not json")
        assert excinfo.value.status == 400


class TestFailover:
    def test_killed_worker_fails_over_and_respawns(self, tmp_path):
        server, thread = boot_fleet(tmp_path, health_interval=0.2)
        client = ServiceClient(server.url, timeout=WAIT)
        try:
            receipt = client.submit(manifest("bv_5", "survivor"))
            job_id = receipt["job_id"]
            original = client.records(job_id)
            assert len(original) == 1

            router: FleetRouter = server.router
            owner = router.workers[router.shard_of(job_id)]
            victim_pid = owner.process.pid
            os.kill(victim_pid, signal.SIGKILL)

            # The fleet keeps answering while the shard is down: the
            # router replays the memoized manifest on the other worker
            # (or the respawned one) and streams identical records.
            replayed = client.records(job_id)
            assert replayed == original

            # The health loop brings the fleet back to full strength.
            wait_until(
                lambda: client.health()["fleet"]["alive"] == 2, timeout=WAIT
            )
            health = client.health()
            assert health["status"] == "ok"
            restarts = sum(
                worker["restarts"] for worker in health["fleet"]["workers"]
            )
            failures = parse_exposition(client.metrics())
            assert (
                restarts >= 1
                or failures["repro_fleet_failovers_total"].value() >= 1
            )
        finally:
            client.close()
            stop_fleet(server, thread)

    def test_death_before_results_still_serves_the_job(self, tmp_path):
        # Kill the owning worker *immediately* after the submission is
        # acknowledged — before anyone has read a single result line —
        # and slow the health loop so failover (not respawn) must serve.
        server, thread = boot_fleet(tmp_path, health_interval=30.0)
        client = ServiceClient(server.url, timeout=WAIT)
        try:
            receipt = client.submit(manifest("qaoa_5", "mid-flight"))
            job_id = receipt["job_id"]
            router: FleetRouter = server.router
            owner = router.workers[router.shard_of(job_id)]
            os.kill(owner.process.pid, signal.SIGKILL)

            records = client.records(job_id)
            assert len(records) == 1
            assert records[0]["circuit"] == "qaoa_5"
            assert parse_exposition(client.metrics())[
                "repro_fleet_failovers_total"
            ].value() >= 1
        finally:
            client.close()
            stop_fleet(server, thread)
