"""The durable result store: streamed persistence, replay, GC discipline.

The contract: a finished job's ``GET /v1/jobs/<id>/results`` stream is
byte-identical across a full service restart, served from the store with
zero recompilation; failed/cancelled jobs leave nothing behind; and the
LRU byte budget can never evict a stream that is still being written.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.service.app import CompilationService
from repro.service.results import ResultStore
from repro.service.server import make_server

WAIT = 60.0


def wait_until(predicate, timeout: float = WAIT) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def manifest(circuit: str, label: str) -> dict:
    return {"jobs": [{"circuit": circuit, "device": "G-2x2", "label": label}]}


class TestResultStoreUnit:
    def test_stream_then_finalize_round_trips_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        writer = store.open_writer("a" * 16)
        writer.append(b'{"index": 0}')
        writer.append(b'{"index": 1}')
        store.finalize("a" * 16, b'{"type": "end"}')
        assert store.load("a" * 16) == [
            b'{"index": 0}',
            b'{"index": 1}',
            b'{"type": "end"}',
        ]
        assert store.stores == 1 and store.entries() == 1

    def test_unknown_and_abandoned_jobs_load_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("f" * 16) is None
        writer = store.open_writer("b" * 16)
        writer.append(b'{"index": 0}')
        store.abandon("b" * 16)
        assert store.load("b" * 16) is None
        assert store.entries() == 0 and store.abandoned == 1
        assert not list(tmp_path.iterdir())  # no .part litter either

    def test_stale_part_files_are_swept_at_startup(self, tmp_path):
        (tmp_path / "deadbeefdeadbeef.part").write_bytes(b"torn stream\n")
        (tmp_path / "cafecafecafecafe.results").write_bytes(b'{"ok": 1}\n')
        store = ResultStore(tmp_path)
        assert not (tmp_path / "deadbeefdeadbeef.part").exists()
        assert store.load("cafecafecafecafe") == [b'{"ok": 1}']

    def test_budget_evicts_lru_finalized_files_only(self, tmp_path):
        line = b"x" * 100
        store = ResultStore(tmp_path, max_disk_bytes=250)
        for index, job_id in enumerate(("aa" * 8, "bb" * 8, "cc" * 8)):
            writer = store.open_writer(job_id)
            writer.append(line)
            store.finalize(job_id, b"end")
            time.sleep(0.02)  # distinct mtimes for deterministic LRU order
        # ~105 bytes per file; three don't fit in 250, oldest goes.
        assert store.load("aa" * 8) is None
        assert store.load("bb" * 8) is not None
        assert store.load("cc" * 8) is not None
        assert store.evictions == 1

    def test_gc_never_touches_an_actively_streaming_job(self, tmp_path):
        store = ResultStore(tmp_path, max_disk_bytes=150)
        streaming = store.open_writer("dd" * 8)
        streaming.append(b"y" * 500)  # far over budget, still in flight
        writer = store.open_writer("ee" * 8)
        writer.append(b"x" * 100)
        store.finalize("ee" * 8, b"end")
        # The in-flight .part was not a candidate: it is intact, and the
        # finalized file (keep-exempt) survived too.
        assert streaming.path.exists()
        assert store.load("ee" * 8) is not None
        store.finalize("dd" * 8, b"end")
        assert store.load("dd" * 8) is not None  # keep-exempt at its own seal

    def test_replay_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path, max_disk_bytes=250)
        for job_id in ("aa" * 8, "bb" * 8):
            writer = store.open_writer(job_id)
            writer.append(b"x" * 100)
            store.finalize(job_id, b"end")
            time.sleep(0.02)
        time.sleep(0.02)
        assert store.load("aa" * 8) is not None  # touch the older one
        writer = store.open_writer("cc" * 8)
        writer.append(b"x" * 100)
        store.finalize("cc" * 8, b"end")
        # bb is now the least recently used and pays for the new entry.
        assert store.load("bb" * 8) is None
        assert store.load("aa" * 8) is not None

    def test_torn_final_file_is_unservable(self, tmp_path):
        (tmp_path / ("ab" * 8 + ".results")).write_bytes(b'{"no": "newline"}')
        store = ResultStore(tmp_path)
        assert store.load("ab" * 8) is None


class TestServiceIntegration:
    def test_failed_jobs_leave_no_result_file(self, tmp_path):
        with CompilationService(workers=1, cache_dir=tmp_path, warm=False) as service:
            with pytest.raises(Exception):
                service.submit_document({"jobs": [{"circuit": "nope"}]})
            job, _ = service.submit_document(manifest("qft_4", "ok"))
            wait_until(lambda: job.finished)
            wait_until(lambda: service.results.entries() == 1)
            assert service.results.load(job.job_id) is not None

    def test_restart_serves_byte_identical_stream_with_zero_compilations(
        self, tmp_path
    ):
        def boot():
            server = make_server(workers=1, port=0, cache_dir=tmp_path, warm=False)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            return server

        def fetch(server, job_id: str) -> bytes:
            with urllib.request.urlopen(
                f"{server.url}/v1/jobs/{job_id}/results"
            ) as response:
                return response.read()

        def stop(server):
            server.shutdown()
            server.server_close()
            server.service.close()

        server = boot()
        body = json.dumps(manifest("qft_4", "durable")).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/jobs", data=body, method="POST"
        )
        with urllib.request.urlopen(request) as response:
            job_id = json.loads(response.read())["job_id"]
        original = fetch(server, job_id)
        stop(server)

        restarted = boot()
        try:
            assert fetch(restarted, job_id) == original
            # Served from the store: the engine compiled nothing.
            engine_stats = restarted.service.engine.cache.stats
            assert restarted.service.results.replays >= 1
            assert engine_stats.stores == 0  # no compilation reached the cache
            # And a resubmission deduplicates instead of re-running.
            with urllib.request.urlopen(
                urllib.request.Request(
                    f"{restarted.url}/v1/jobs", data=body, method="POST"
                )
            ) as response:
                again = json.loads(response.read())
            assert again["resubmitted"] and again["job_id"] == job_id
            assert fetch(restarted, job_id) == original
        finally:
            stop(restarted)
