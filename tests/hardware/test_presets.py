"""Unit tests for the paper's named device presets."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.hardware.presets import (
    PAPER_PRESETS,
    device_for_circuit,
    paper_device,
    paper_device_catalog,
    paper_preset,
    preset_names,
)


class TestPresetTable:
    def test_all_paper_names_present(self):
        names = preset_names()
        for expected in ("S-4", "L-4", "L-6", "G-2x2", "G-2x3", "G-3x3"):
            assert expected in names

    def test_paper_capacities(self):
        assert paper_preset("S-4").default_capacity == 22
        assert paper_preset("G-2x2").default_capacity == 22
        assert paper_preset("G-2x3").default_capacity == 17
        assert paper_preset("G-3x3").default_capacity == 12
        assert paper_preset("L-4").default_capacity == 22
        assert paper_preset("L-6").default_capacity == 17

    def test_unknown_preset_rejected(self):
        with pytest.raises(DeviceError):
            paper_preset("T-9")


class TestPaperDevice:
    def test_preset_shapes(self):
        assert paper_device("S-4").num_traps == 4
        assert paper_device("G-2x3").num_traps == 6
        assert paper_device("G-3x3").num_traps == 9
        assert paper_device("L-6").num_traps == 6

    def test_case_insensitive(self):
        assert paper_device("g-2x2").name == "G-2x2"

    def test_capacity_override(self):
        device = paper_device("G-2x2", capacity=10)
        assert device.total_capacity == 40

    def test_total_capacity_defaults(self):
        # Paper chose capacities so each device holds roughly 100 ions.
        for preset in PAPER_PRESETS:
            device = paper_device(preset.name)
            assert 60 <= device.total_capacity <= 140

    def test_non_preset_structural_names(self):
        assert paper_device("G-4x4", capacity=6).num_traps == 16
        assert paper_device("L-8", capacity=6).num_traps == 8
        assert paper_device("S-5", capacity=6).num_traps == 5

    def test_non_preset_requires_capacity(self):
        with pytest.raises(DeviceError):
            paper_device("G-4x4")

    def test_unparseable_name_rejected(self):
        with pytest.raises(DeviceError):
            paper_device("X-3", capacity=5)


class TestCatalogAndFitting:
    def test_catalog_contains_all_presets(self):
        catalog = paper_device_catalog()
        assert set(catalog) == set(preset_names())

    def test_catalog_capacity_override(self):
        catalog = paper_device_catalog(capacity=5)
        assert all(
            device.total_capacity == 5 * device.num_traps for device in catalog.values()
        )

    def test_device_for_circuit_grows_when_needed(self):
        device = device_for_circuit("G-3x3", 150, slack=2)
        assert device.total_capacity >= 150 + 2 * 9

    def test_device_for_circuit_keeps_default_when_it_fits(self):
        device = device_for_circuit("G-2x3", 30)
        assert device.total_capacity == paper_device("G-2x3").total_capacity
