"""Unit tests for the static weighted slot graph (paper §3.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.hardware.graph import GraphWeights, SlotGraph
from repro.hardware.topologies import grid_device, linear_device


class TestGraphWeights:
    def test_defaults_match_paper(self):
        weights = GraphWeights()
        assert weights.inner_weight == pytest.approx(0.001)
        assert weights.shuttle_weight == pytest.approx(1.0)
        assert weights.ratio == pytest.approx(1000.0)

    def test_threshold_must_separate_regimes(self):
        with pytest.raises(DeviceError):
            GraphWeights(inner_weight=0.6, shuttle_weight=1.0, threshold=0.5)
        with pytest.raises(DeviceError):
            GraphWeights(threshold=2.0)

    def test_positive_weights_required(self):
        with pytest.raises(DeviceError):
            GraphWeights(inner_weight=0.0)
        with pytest.raises(DeviceError):
            GraphWeights(shuttle_weight=-1.0)

    def test_with_ratio(self):
        weights = GraphWeights().with_ratio(100.0)
        assert weights.ratio == pytest.approx(100.0)
        assert weights.inner_weight == pytest.approx(0.001)
        with pytest.raises(DeviceError):
            GraphWeights().with_ratio(-5)


class TestSlotGraphStructure:
    def test_node_count_equals_total_capacity(self):
        device = linear_device(3, 4)
        graph = SlotGraph(device)
        assert graph.num_nodes == device.total_capacity
        assert len(graph.nodes()) == 12

    def test_intra_trap_edges_are_complete(self):
        device = linear_device(1, 5)
        graph = SlotGraph(device)
        # A 5-slot trap has C(5,2)=10 intra edges and no shuttle edges.
        assert graph.graph.number_of_edges() == 10
        assert graph.shuttle_edges() == []

    def test_intra_weights_scale_with_distance(self):
        graph = SlotGraph(linear_device(1, 4))
        assert graph.edge_weight((0, 0), (0, 1)) == pytest.approx(0.001)
        assert graph.edge_weight((0, 0), (0, 3)) == pytest.approx(0.003)
        assert graph.edge_kind((0, 0), (0, 3)) == "intra"

    def test_shuttle_edges_connect_facing_edge_slots(self):
        device = linear_device(2, 4)
        graph = SlotGraph(device)
        shuttle_edges = graph.shuttle_edges()
        assert len(shuttle_edges) == 1
        nodes = set(shuttle_edges[0])
        assert nodes == {(0, 3), (1, 0)}
        assert graph.edge_weight((0, 3), (1, 0)) == pytest.approx(1.0)

    def test_grid_shuttle_weight_includes_junction(self):
        device = grid_device(1, 2, 3)
        graph = SlotGraph(device)
        (a, b), = graph.shuttle_edges()
        assert graph.edge_weight(a, b) == pytest.approx(2.0)
        assert graph.edge_kind(a, b) == "shuttle"

    def test_missing_edge_raises(self):
        graph = SlotGraph(linear_device(2, 3))
        with pytest.raises(DeviceError):
            graph.edge_weight((0, 0), (1, 2))


class TestSlotGraphQueries:
    def test_same_trap_and_edge_slots(self):
        graph = SlotGraph(linear_device(2, 4))
        assert graph.same_trap((0, 1), (0, 3))
        assert not graph.same_trap((0, 1), (1, 1))
        assert graph.is_edge_slot((0, 0))
        assert graph.is_edge_slot((0, 3))
        assert not graph.is_edge_slot((0, 2))

    def test_departing_and_receiving_slots(self):
        graph = SlotGraph(linear_device(3, 5))
        assert graph.departing_slot(0, 1) == (0, 4)
        assert graph.receiving_slot(0, 1) == (1, 0)
        assert graph.departing_slot(2, 1) == (2, 0)
        assert graph.receiving_slot(2, 1) == (1, 4)

    def test_slot_distance_same_trap(self):
        graph = SlotGraph(linear_device(2, 6))
        assert graph.slot_distance((0, 1), (0, 4)) == pytest.approx(0.003)
        assert graph.slot_distance((0, 2), (0, 2)) == 0.0

    def test_slot_distance_cross_trap_matches_components(self):
        graph = SlotGraph(linear_device(2, 4))
        # (0,1) -> depart (0,3): 2 steps; shuttle 1; arrive (1,0) -> (1,2): 2 steps.
        expected = 0.002 + 1.0 + 0.002
        assert graph.slot_distance((0, 1), (1, 2)) == pytest.approx(expected)

    def test_slot_distance_symmetry(self):
        graph = SlotGraph(grid_device(2, 2, 4))
        a, b = (0, 1), (3, 2)
        assert graph.slot_distance(a, b) == pytest.approx(graph.slot_distance(b, a))
