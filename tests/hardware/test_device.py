"""Unit tests for the QCCDDevice model and its routing queries."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.hardware.device import QCCDDevice
from repro.hardware.topologies import grid_device, linear_device, star_device
from repro.hardware.trap import Connection, Trap


class TestConstruction:
    def test_requires_at_least_one_trap(self):
        with pytest.raises(DeviceError):
            QCCDDevice([], [])

    def test_duplicate_trap_ids_rejected(self):
        with pytest.raises(DeviceError):
            QCCDDevice([Trap(0, 4), Trap(0, 4)], [])

    def test_non_contiguous_ids_rejected(self):
        with pytest.raises(DeviceError):
            QCCDDevice([Trap(0, 4), Trap(2, 4)], [Connection(0, 2)])

    def test_connection_to_unknown_trap_rejected(self):
        with pytest.raises(DeviceError):
            QCCDDevice([Trap(0, 4), Trap(1, 4)], [Connection(0, 5)])

    def test_duplicate_connection_rejected(self):
        with pytest.raises(DeviceError):
            QCCDDevice(
                [Trap(0, 4), Trap(1, 4)],
                [Connection(0, 1), Connection(1, 0)],
            )

    def test_disconnected_graph_rejected(self):
        with pytest.raises(DeviceError):
            QCCDDevice([Trap(0, 4), Trap(1, 4), Trap(2, 4)], [Connection(0, 1)])

    def test_single_trap_device_is_fine(self):
        device = QCCDDevice([Trap(0, 8)], [])
        assert device.num_traps == 1
        assert device.total_capacity == 8


class TestAccessors:
    def test_traps_sorted_by_id(self):
        device = linear_device(4, 5)
        assert [t.trap_id for t in device.traps] == [0, 1, 2, 3]

    def test_total_capacity(self):
        assert linear_device(3, 7).total_capacity == 21

    def test_capacity_and_trap_lookup(self):
        device = linear_device(2, 9)
        assert device.capacity(1) == 9
        with pytest.raises(DeviceError):
            device.trap(5)

    def test_neighbors(self):
        device = linear_device(4, 5)
        assert device.neighbors(0) == [1]
        assert device.neighbors(1) == [0, 2]

    def test_connection_between(self):
        device = linear_device(3, 5)
        assert device.connection_between(0, 1).endpoints in {(0, 1), (1, 0)}
        with pytest.raises(DeviceError):
            device.connection_between(0, 2)

    def test_are_connected(self):
        device = grid_device(2, 2, 4)
        assert device.are_connected(0, 1)
        assert not device.are_connected(0, 3)

    def test_trap_graph_is_a_copy(self):
        device = linear_device(3, 5)
        graph = device.trap_graph
        graph.remove_node(0)
        assert device.num_traps == 3


class TestRouting:
    def test_linear_distances_are_hop_counts(self):
        device = linear_device(4, 5)
        assert device.trap_distance(0, 3) == pytest.approx(3.0)
        assert device.trap_distance(2, 2) == pytest.approx(0.0)

    def test_grid_distances_include_junction_weight(self):
        device = grid_device(2, 2, 4)
        # Adjacent grid traps connect through one junction: weight 2.
        assert device.trap_distance(0, 1) == pytest.approx(2.0)
        assert device.trap_distance(0, 3) == pytest.approx(4.0)

    def test_star_distance_is_single_hop(self):
        device = star_device(5, 4)
        assert device.trap_distance(0, 4) == pytest.approx(2.0)

    def test_trap_path_endpoints(self):
        device = linear_device(5, 4)
        path = device.trap_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 5

    def test_path_connections_and_junctions(self):
        device = grid_device(2, 3, 4)
        connections = device.path_connections(0, 5)
        assert len(connections) == 3
        assert device.path_junctions(0, 5) == 3
        assert device.path_segments(0, 5) == 6

    def test_max_trap_distance(self):
        device = linear_device(4, 4)
        assert device.max_trap_distance() == pytest.approx(3.0)

    def test_unknown_trap_in_routing_raises(self):
        device = linear_device(2, 4)
        with pytest.raises(DeviceError):
            device.trap_distance(0, 9)


class TestWithCapacity:
    def test_with_capacity_replaces_all_traps(self):
        device = grid_device(2, 2, 4)
        bigger = device.with_capacity(10)
        assert bigger.total_capacity == 40
        assert bigger.name == device.name
        assert device.total_capacity == 16


class TestPrecomputedMatrices:
    """The cached all-pairs matrices must agree with the graph queries."""

    def _devices(self):
        return [
            linear_device(5, 4),
            grid_device(2, 3, 4),
            grid_device(3, 3, 4),
            star_device(5, 4),
        ]

    def test_distance_matrix_matches_trap_distance(self):
        for device in self._devices():
            matrix = device.distance_matrix
            for a in range(device.num_traps):
                for b in range(device.num_traps):
                    assert matrix[a][b] == pytest.approx(device.trap_distance(a, b))

    def test_distance_matrix_is_a_copy(self):
        device = grid_device(2, 2, 4)
        matrix = device.distance_matrix
        matrix[0][1] = -99.0
        assert device.trap_distance(0, 1) > 0

    def test_hop_matrices_match_stored_paths(self):
        for device in self._devices():
            for a in range(device.num_traps):
                for b in range(device.num_traps):
                    if a == b:
                        with pytest.raises(DeviceError):
                            device.next_hop(a, b)
                        with pytest.raises(DeviceError):
                            device.penultimate_hop(a, b)
                        continue
                    path = device.trap_path(a, b)
                    assert device.next_hop(a, b) == path[1]
                    assert device.penultimate_hop(a, b) == path[-2]

    def test_unknown_trap_in_hop_queries_raises(self):
        device = linear_device(3, 4)
        with pytest.raises(DeviceError):
            device.next_hop(0, 7)
        with pytest.raises(DeviceError):
            device.penultimate_hop(7, 0)


class TestMatrixScheduleParity:
    """Compiling with the cached matrices must yield the exact schedules
    the per-query graph computations produced (the pre-cache behaviour)."""

    @staticmethod
    def _recomputing(device: QCCDDevice) -> QCCDDevice:
        import networkx as nx

        class RecomputingDevice(QCCDDevice):
            """Answers every routing query with a fresh Dijkstra run."""

            def _single_source(self, a):
                return nx.single_source_dijkstra_path(self._graph, a, weight="weight")

            def trap_distance(self, a, b):
                self.trap(a), self.trap(b)
                return nx.dijkstra_path_length(self._graph, a, b, weight="weight")

            def trap_path(self, a, b):
                self.trap(a), self.trap(b)
                return list(self._single_source(a)[b])

            def next_hop(self, a, b):
                return self._single_source(a)[b][1]

            def penultimate_hop(self, a, b):
                return self._single_source(a)[b][-2]

        return RecomputingDevice(
            device.traps, device.connections, name=device.name,
            junction_weight=device.junction_weight,
        )

    @pytest.mark.parametrize("compiler", ["s-sync", "murali", "dai"])
    def test_schedules_identical_with_and_without_cache(self, compiler):
        from repro.circuit.library import qft_circuit
        from repro.registry import make_pipeline
        from repro.schedule.serialize import schedule_to_dict

        circuit = qft_circuit(12)
        cached_device = grid_device(2, 3, 4)
        uncached_device = self._recomputing(grid_device(2, 3, 4))
        cached = make_pipeline(compiler, cached_device).compile(circuit)
        uncached = make_pipeline(compiler, uncached_device).compile(circuit)
        assert schedule_to_dict(cached.schedule) == schedule_to_dict(uncached.schedule)
