"""Unit tests for traps, connections and junction records."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.hardware.trap import Connection, JunctionCrossing, Trap


class TestTrap:
    def test_defaults_and_name(self):
        trap = Trap(3, 10)
        assert trap.name == "trap3"
        assert trap.edge_positions == (0, 9)

    def test_custom_name_kept(self):
        assert Trap(0, 4, name="T(0,0)").name == "T(0,0)"

    def test_rejects_negative_id(self):
        with pytest.raises(DeviceError):
            Trap(-1, 5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(DeviceError):
            Trap(0, 0)

    def test_is_hashable_and_frozen(self):
        trap = Trap(1, 5)
        assert hash(trap) == hash(Trap(1, 5))
        with pytest.raises(AttributeError):
            trap.capacity = 7  # type: ignore[misc]


class TestConnection:
    def test_endpoints_and_other(self):
        conn = Connection(0, 1)
        assert conn.endpoints == (0, 1)
        assert conn.other(0) == 1
        assert conn.other(1) == 0

    def test_other_unknown_trap_raises(self):
        with pytest.raises(DeviceError):
            Connection(0, 1).other(5)

    def test_rejects_self_loop(self):
        with pytest.raises(DeviceError):
            Connection(2, 2)

    def test_rejects_negative_ids(self):
        with pytest.raises(DeviceError):
            Connection(-1, 0)

    def test_rejects_negative_junctions(self):
        with pytest.raises(DeviceError):
            Connection(0, 1, junctions=-1)

    def test_rejects_zero_segments(self):
        with pytest.raises(DeviceError):
            Connection(0, 1, segments=0)

    def test_shuttle_weight_formula(self):
        assert Connection(0, 1, junctions=0).shuttle_weight() == pytest.approx(1.0)
        assert Connection(0, 1, junctions=1).shuttle_weight() == pytest.approx(2.0)
        assert Connection(0, 1, junctions=2).shuttle_weight() == pytest.approx(3.0)

    def test_shuttle_weight_custom_junction_weight(self):
        assert Connection(0, 1, junctions=2).shuttle_weight(0.5) == pytest.approx(2.0)


class TestJunctionCrossing:
    def test_defaults(self):
        assert JunctionCrossing().num_paths == 3

    def test_rejects_single_path(self):
        with pytest.raises(DeviceError):
            JunctionCrossing(num_paths=1)
