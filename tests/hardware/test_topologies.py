"""Unit tests for the L / R / G / S / H topology factories."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.hardware.topologies import (
    build_topology,
    grid_device,
    hex_device,
    linear_device,
    ring_device,
    star_device,
    trap_capacities,
)


class TestLinear:
    def test_structure(self):
        device = linear_device(4, 5)
        assert device.num_traps == 4
        assert len(device.connections) == 3
        assert all(c.junctions == 0 for c in device.connections)

    def test_name_default(self):
        assert linear_device(6, 3).name == "L-6"

    def test_validation(self):
        with pytest.raises(DeviceError):
            linear_device(0, 5)
        with pytest.raises(DeviceError):
            linear_device(3, 0)


class TestRing:
    def test_structure(self):
        device = ring_device(5, 4)
        assert device.num_traps == 5
        assert len(device.connections) == 5
        # Wrap-around makes opposite traps closer than in a line.
        assert device.trap_distance(0, 4) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(DeviceError):
            ring_device(2, 4)


class TestGrid:
    def test_structure_2x3(self):
        device = grid_device(2, 3, 4)
        assert device.num_traps == 6
        # 2x3 grid has 7 internal edges.
        assert len(device.connections) == 7
        assert all(c.junctions == 1 for c in device.connections)

    def test_corner_and_center_degree(self):
        device = grid_device(3, 3, 4)
        assert len(device.neighbors(0)) == 2
        assert len(device.neighbors(4)) == 4

    def test_name_default(self):
        assert grid_device(3, 3, 4).name == "G-3x3"

    def test_validation(self):
        with pytest.raises(DeviceError):
            grid_device(0, 3, 4)
        with pytest.raises(DeviceError):
            grid_device(1, 1, 4)
        with pytest.raises(DeviceError):
            grid_device(2, 2, 0)


class TestStar:
    def test_all_pairs_connected(self):
        device = star_device(4, 5)
        assert len(device.connections) == 6
        for a in range(4):
            for b in range(a + 1, 4):
                assert device.are_connected(a, b)

    def test_single_junction_per_hop(self):
        device = star_device(3, 5)
        assert all(c.junctions == 1 for c in device.connections)

    def test_validation(self):
        with pytest.raises(DeviceError):
            star_device(1, 5)


class TestHex:
    def test_structure_2x3(self):
        device = hex_device(2, 3, 4)
        assert device.num_traps == 6
        assert device.name == "H-2x3"
        # 4 horizontal edges + vertical rungs at (r+c) even: (0,0), (0,2).
        assert len(device.connections) == 6
        assert device.are_connected(0, 3) and device.are_connected(2, 5)
        assert not device.are_connected(1, 4)
        assert all(c.junctions == 1 for c in device.connections)

    def test_degree_at_most_three(self):
        device = hex_device(3, 3, 4)
        assert all(len(device.neighbors(t)) <= 3 for t in range(device.num_traps))

    def test_every_trap_reachable(self):
        device = hex_device(3, 2, 4)
        for other in range(1, device.num_traps):
            assert device.trap_distance(0, other) < float("inf")

    def test_validation(self):
        with pytest.raises(DeviceError):
            hex_device(1, 1, 4)
        with pytest.raises(DeviceError):
            hex_device(3, 1, 4)  # single column disconnects the brick wall
        with pytest.raises(DeviceError):
            hex_device(2, 2, 0)


class TestHeterogeneousCapacities:
    def test_trap_capacities_broadcasts_an_int(self):
        assert trap_capacities(3, 5) == [5, 5, 5]

    def test_trap_capacities_validation(self):
        with pytest.raises(DeviceError):
            trap_capacities(3, [4, 4])  # length mismatch
        with pytest.raises(DeviceError):
            trap_capacities(2, [4, 0])  # non-positive entry

    def test_linear_per_trap_capacities(self):
        device = linear_device(3, [2, 6, 3])
        assert [device.trap(i).capacity for i in range(3)] == [2, 6, 3]
        assert device.total_capacity == 11

    def test_grid_per_trap_capacities(self):
        device = grid_device(2, 2, [1, 2, 3, 4])
        assert [device.trap(i).capacity for i in range(4)] == [1, 2, 3, 4]

    def test_hex_rejects_wrong_length(self):
        with pytest.raises(DeviceError):
            hex_device(2, 2, [3, 3, 3])


class TestBuildTopology:
    def test_dispatch(self):
        assert build_topology("linear", 4, num_traps=3).num_traps == 3
        assert build_topology("grid", 4, rows=2, cols=2).num_traps == 4
        assert build_topology("star", 4, num_traps=5).num_traps == 5
        assert build_topology("ring", 4, num_traps=4).num_traps == 4
        assert build_topology("hex", 4, rows=2, cols=3).num_traps == 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(DeviceError):
            build_topology("hypercube", 4)
