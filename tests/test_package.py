"""Package-level tests: exports, version, exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but not importable"

    def test_key_entry_points_present(self):
        for name in (
            "SSyncCompiler",
            "MuraliCompiler",
            "DaiCompiler",
            "paper_device",
            "qft_circuit",
            "evaluate_schedule",
            "verify_schedule",
            "build_benchmark",
        ):
            assert name in repro.__all__

    def test_subpackage_alls_resolve(self):
        import repro.analysis as analysis
        import repro.circuit as circuit
        import repro.core as core
        import repro.hardware as hardware
        import repro.noise as noise
        import repro.schedule as schedule

        for module in (analysis, circuit, core, hardware, noise, schedule):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("CircuitError", "DeviceError", "MappingError", "SchedulingError", "StateError", "NoiseModelError"):
            error_cls = getattr(exceptions, name)
            assert issubclass(error_cls, exceptions.ReproError)
            assert issubclass(error_cls, Exception)

    def test_verification_error_is_a_repro_error(self):
        from repro.schedule.verify import ScheduleVerificationError

        assert issubclass(ScheduleVerificationError, exceptions.ReproError)

    def test_catching_the_base_class_catches_subclasses(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.MappingError("boom")
