"""Documentation tests: code blocks must run, relative links must resolve.

Every fenced ```python block in README.md and docs/*.md is extracted and
executed (blocks from one file run as a single script, in order, so they
may build on each other), and every relative markdown link is checked
against the working tree.  Docs that cannot drift silently are the point
of the suite — a renamed API or moved file fails CI here.

A block can opt out by placing ``<!-- docs-test: skip -->`` on the line
directly above its fence (none currently do).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """(start line, source) of every executable ```python block."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    in_block = False
    skip_next = False
    language = ""
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(lines, start=1):
        match = _FENCE.match(line.strip())
        if match and not in_block:
            in_block = True
            language = match.group(1).lower()
            start = number + 1
            buffer = []
            if skip_next:
                language = "skipped"
            continue
        if line.strip() == "```" and in_block:
            if language == "python":
                blocks.append((start, "\n".join(buffer)))
            in_block = False
            skip_next = False
            continue
        if in_block:
            buffer.append(line)
        else:
            skip_next = line.strip() == "<!-- docs-test: skip -->"
    return blocks


@pytest.mark.parametrize("doc", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_python_blocks_execute(doc: Path):
    blocks = extract_python_blocks(doc.read_text())
    if not blocks:
        pytest.skip(f"{doc.name} has no python blocks")
    script = "\n\n".join(
        f"# --- {doc.name} block at line {line} ---\n{source}"
        for line, source in blocks
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        cwd=REPO_ROOT,  # blocks may read tracked files; none may write
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"a python block in {doc.name} failed (blocks start at lines "
        f"{[line for line, _ in blocks]})\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )


@pytest.mark.parametrize("doc", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_relative_links_resolve(doc: Path):
    text = doc.read_text()
    # Drop fenced code before scanning: JSON examples contain [..](..)-
    # shaped noise and shell snippets are not links.
    prose = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    broken = []
    for target in _LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name} links to missing paths: {broken}"


def test_docs_suite_is_present():
    """The documentation set the repository promises actually exists."""
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "benchmarks.md", "service.md"} <= names
