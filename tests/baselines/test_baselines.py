"""Unit tests for the Murali-style and Dai-style baseline compilers."""

from __future__ import annotations

import pytest

from repro.baselines import BASELINE_REGISTRY, DaiCompiler, MuraliCompiler
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import bernstein_vazirani_circuit, ghz_circuit, qft_circuit
from repro.exceptions import MappingError
from repro.hardware.topologies import grid_device, linear_device, star_device
from repro.schedule.verify import verify_schedule


class TestRegistry:
    def test_both_baselines_registered(self):
        assert set(BASELINE_REGISTRY) == {"murali", "dai"}
        assert BASELINE_REGISTRY["murali"] is MuraliCompiler
        assert BASELINE_REGISTRY["dai"] is DaiCompiler


class TestMuraliMapping:
    def test_qubits_packed_by_first_use(self):
        device = linear_device(3, 6)
        circuit = QuantumCircuit(6)
        # Qubit 5 is used first, so it should land in trap 0.
        circuit.cx(5, 0).cx(1, 2)
        state = MuraliCompiler(device).build_initial_state(circuit)
        assert state.trap_of(5) == 0
        assert state.chain(0)[0] == 5

    def test_two_slots_reserved_per_trap(self):
        device = linear_device(3, 6)
        circuit = qft_circuit(8)
        state = MuraliCompiler(device).build_initial_state(circuit)
        assert max(state.chain_length(t.trap_id) for t in device.traps) <= 4

    def test_reservation_relaxed_when_tight(self):
        device = linear_device(2, 5)
        circuit = qft_circuit(9)
        state = MuraliCompiler(device).build_initial_state(circuit)
        assert state.all_qubits() == set(range(9))

    def test_device_too_small_rejected(self):
        device = linear_device(2, 3)
        with pytest.raises(MappingError):
            MuraliCompiler(device).build_initial_state(qft_circuit(7))

    def test_idle_qubits_still_placed(self):
        device = linear_device(2, 6)
        circuit = QuantumCircuit(6)
        circuit.cx(0, 1)
        state = MuraliCompiler(device).build_initial_state(circuit)
        assert state.all_qubits() == set(range(6))


class TestDaiMapping:
    def test_interacting_qubits_clustered(self):
        device = linear_device(2, 8)
        circuit = QuantumCircuit(8)
        for a in range(4):
            for b in range(a + 1, 4):
                circuit.cx(a, b)
                circuit.cx(a + 4, b + 4)
        state = DaiCompiler(device).build_initial_state(circuit)
        assert len({state.trap_of(q) for q in range(4)}) == 1
        assert len({state.trap_of(q) for q in range(4, 8)}) == 1

    def test_device_too_small_rejected(self):
        device = linear_device(1, 4)
        with pytest.raises(MappingError):
            DaiCompiler(device).build_initial_state(qft_circuit(6))


@pytest.mark.parametrize("compiler_cls", [MuraliCompiler, DaiCompiler], ids=["murali", "dai"])
class TestBaselineCompilation:
    def test_schedules_are_valid(self, compiler_cls):
        device = grid_device(2, 2, 5)
        circuit = qft_circuit(12)
        result = compiler_cls(device).compile(circuit)
        report = verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        assert report.two_qubit_gates == circuit.num_two_qubit_gates

    def test_result_metadata(self, compiler_cls):
        device = linear_device(3, 5)
        circuit = ghz_circuit(9, ladder=False)
        result = compiler_cls(device).compile(circuit)
        assert result.compiler_name == compiler_cls.name
        assert result.compile_time_s >= 0
        assert result.two_qubit_gate_count == circuit.num_two_qubit_gates

    def test_single_trap_needs_no_shuttles(self, compiler_cls):
        device = linear_device(1, 12)
        circuit = qft_circuit(8)
        result = compiler_cls(device).compile(circuit)
        assert result.shuttle_count == 0
        assert result.swap_count == 0

    def test_star_topology(self, compiler_cls):
        device = star_device(3, 6)
        circuit = bernstein_vazirani_circuit(10)
        result = compiler_cls(device).compile(circuit)
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)

    def test_cross_trap_work_produces_shuttles(self, compiler_cls):
        device = linear_device(3, 5)
        circuit = qft_circuit(10)
        result = compiler_cls(device).compile(circuit)
        assert result.shuttle_count > 0


class TestRelativeBehaviour:
    def test_murali_inserts_more_swaps_than_dai_on_long_range_circuits(self):
        device = grid_device(2, 3, 6)
        circuit = qft_circuit(20)
        murali = MuraliCompiler(device).compile(circuit)
        dai = DaiCompiler(device).compile(circuit)
        assert murali.swap_count > dai.swap_count

    def test_dai_moves_cheaper_endpoint(self):
        # With one qubit already at a trap edge and the other buried, Dai
        # should not need more shuttles than gates.
        device = linear_device(2, 6)
        circuit = QuantumCircuit(10)
        circuit.cx(0, 9)
        result = DaiCompiler(device).compile(circuit)
        assert result.shuttle_count <= 2
