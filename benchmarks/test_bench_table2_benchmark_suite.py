"""E2 — Table 2: the benchmark application suite.

Regenerates the paper's Table 2 (application, qubit count, two-qubit gate
count, communication pattern) from the circuit generators, checking the
generated structure against the paper's reported metadata, and benchmarks
circuit construction.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.reporting import format_table
from repro.circuit.library import PAPER_BENCHMARKS, build_benchmark, qft_circuit


def table2_rows(full: bool) -> list[dict[str, object]]:
    """Rows of Table 2: paper metadata next to the generated circuits."""
    rows: list[dict[str, object]] = []
    for spec in PAPER_BENCHMARKS:
        if not full and spec.paper_two_qubit_gates > 5000:
            # The 13.5k-gate Heisenberg circuit is generated only in full mode.
            circuit = None
        else:
            circuit = build_benchmark(spec.name)
        rows.append(
            {
                "application": spec.name,
                "qubits": spec.num_qubits,
                "communication": spec.communication,
                "paper_2q_gates": spec.paper_two_qubit_gates,
                "generated_2q_gates": circuit.num_two_qubit_gates if circuit else "(skipped)",
                "generated_qubits": circuit.num_qubits if circuit else "(skipped)",
            }
        )
    return rows


def test_table2_benchmark_suite(benchmark) -> None:
    """Regenerate Table 2 and benchmark QFT circuit construction."""
    rows = table2_rows(full_scale())
    text = format_table(rows, title="Table 2 — benchmark applications")
    save_table("table2_benchmarks", text)
    print("\n" + text)

    for row in rows:
        if isinstance(row["generated_2q_gates"], int):
            assert row["generated_qubits"] == row["qubits"]
            paper = int(row["paper_2q_gates"])
            generated = int(row["generated_2q_gates"])
            assert abs(generated - paper) <= 0.1 * paper

    benchmark(lambda: qft_circuit(24))
