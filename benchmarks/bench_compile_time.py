"""Tracked compile-time benchmark harness (``BENCH_compile_time.json``).

Compile time is a first-class result of the paper (Fig. 15), so its
trajectory is tracked machine-readably from PR 3 onward.  The harness
measures two suites and writes
``benchmarks/results/BENCH_compile_time.json``:

* the **scaled suite** — every (compiler, circuit, size) point on the
  Fig. 15 device (G-2x2, trap capacity 20): the stock ``s-sync``
  compiler (flat scheduler core), the ``s-sync-incremental`` and
  ``s-sync-naive`` cores it is parity-locked to, and the ``murali``
  baseline;
* the **backend shoot-out** — 64/96/128-qubit points on routing-bound
  devices (many traps, tight capacity: the regime where candidate
  scoring dominates compile time), comparing the flat core against the
  incremental core on the exact same workload.

Repeats are *interleaved* across compilers within each point — every
compiler sees the same slice of machine noise, so the flat-versus-
incremental ratios are stable enough to gate on (process-to-process
variance alone is ~20%).  Per point the harness also records the delta
of the ``repro_engine_compile_seconds_total`` counter (the same
instrument the batch engine exposes on ``/v1/metrics``), tying the
benchmark numbers to the service's observability vocabulary.

The committed JSON carries:

* ``points`` / ``backend_points`` — the current measurements
  (best-of-N total seconds plus the routing-pass seconds);
* ``baseline.points`` — the same measurements taken on the
  *pre-incremental-core* tree (recorded once with ``--save-baseline``);
* ``speedups`` — current versus baseline per scaled point;
* ``backend_speedups`` — flat versus incremental per shoot-out point;
* ``serialization`` — the artifact-path section: encode/decode times
  and sizes of the binary schedule codec versus the JSON document form
  at the gate point, plus measured disk-hit latency through a real
  ``ScheduleCache`` (binary v3 entry versus a legacy v2 JSON entry).

Usage::

    PYTHONPATH=src python benchmarks/bench_compile_time.py            # measure + write JSON
    PYTHONPATH=src python benchmarks/bench_compile_time.py --full     # paper-scale sizes
    PYTHONPATH=src python benchmarks/bench_compile_time.py --save-baseline
    PYTHONPATH=src python benchmarks/bench_compile_time.py \
        --check benchmarks/results/BENCH_compile_time.json            # CI regression gate
    PYTHONPATH=src python benchmarks/bench_compile_time.py \
        --check benchmarks/results/BENCH_compile_time.json --gate-only  # CI smoke
    PYTHONPATH=src python benchmarks/bench_compile_time.py \
        --serialization-only --check benchmarks/results/BENCH_compile_time.json

``--check`` re-measures the suite and exits non-zero when any point's
routing seconds regressed more than ``--threshold`` (default 2x) over
the committed numbers, when the incremental core falls behind the naive
reference, or when the flat core loses its 2x routing margin over the
incremental core at the designated 64-qubit gate point.  ``--gate-only``
restricts the run to that single gate point — the CI smoke
configuration.  ``--serialization-only`` restricts the run to the
serialization section, whose own (machine-independent) gates require
binary decode to stay at least 3x faster than JSON parsing and binary
cache entries at least 2x smaller than their JSON form.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.circuit.library import build_family
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.hardware.presets import paper_device
from repro.obs import MetricsRegistry
from repro.registry import make_pipeline
from repro.runtime.cache import CachedCompilation, ScheduleCache
from repro.schedule.serialize import (
    schedule_from_bytes,
    schedule_from_dict,
    schedule_to_bytes,
    schedule_to_dict,
)

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_compile_time.json"

FORMAT_VERSION = 2
DEVICE_NAME = "G-2x2"
CAPACITY = 20
FAMILIES = ("qft", "alt", "qaoa", "bv")
SCALED_SIZES = (16, 24, 32)
FULL_SIZES = (48, 56, 64)

#: Backend shoot-out points: size -> (device, capacity).  Routing-bound
#: on purpose — many traps and tight slack maximise candidates per
#: iteration, which is the regime the flat batched scorer optimises.
#: (G-2x2 at capacity 20 tops out at 80 ions, so 96/128 qubits need the
#: wider grids regardless.)
BACKEND_DEVICES: dict[int, tuple[str, int]] = {
    64: ("G-3x3", 8),
    96: ("G-2x4", 14),
    128: ("G-2x4", 18),
}
BACKEND_FAMILIES = ("qft", "alt")

#: The CI-gated point: flat routing must stay at least this many times
#: faster than incremental on this circuit/size (measured 2.1-2.5x).
GATE_CIRCUIT = "alt"
GATE_SIZE = 64
GATE_RATIO = 2.0

#: Serialization gates (machine-independent ratios, measured in one run
#: at the ``alt_64`` gate point): binary decode must stay at least 3x
#: faster than parsing the JSON document form (measured ~4.7x), and a
#: binary cache entry at least 2x smaller than its JSON form (~4.8x).
DECODE_SPEEDUP_GATE = 3.0
ENTRY_SIZE_RATIO_GATE = 2.0

# The benchmark accounts its compile wall-time into the same counter
# the batch engine binds on /v1/metrics, and reports the per-point
# delta — one vocabulary across service dashboards and benchmark JSON.
_METRICS = MetricsRegistry()
_COMPILE_SECONDS = _METRICS.counter(
    "repro_engine_compile_seconds_total",
    "Wall-clock seconds spent inside fresh compilations; divide by "
    "uptime times workers for pool utilisation.",
)


def _ssync_config(backend: str | None) -> SSyncConfig | None:
    """An ``SSyncConfig`` pinning one scheduler core, or ``None``.

    Returns ``None`` on trees that predate the requested knob, so the
    pre-change baseline can be recorded by the very same harness code:
    without a ``backend`` field the harness simply measures the stock
    compiler, and without the legacy ``incremental`` flag it skips the
    naive point.
    """
    from dataclasses import fields, replace

    from repro.core.scheduler import SchedulerConfig

    config = SSyncConfig()
    field_names = {f.name for f in fields(SchedulerConfig)}
    if backend is None:
        return config
    if "backend" in field_names:
        return replace(config, scheduler=replace(config.scheduler, backend=backend))
    if backend == "naive" and "incremental" in field_names:
        return replace(config, scheduler=replace(config.scheduler, incremental=False))
    if backend == "incremental" and "incremental" in field_names:
        return replace(config, scheduler=replace(config.scheduler, incremental=True))
    return None


def _scaled_compilers(device) -> dict[str, Any]:
    """Name -> ``compile(circuit) -> CompilationResult`` for the scaled suite."""
    compilers: dict[str, Any] = {"s-sync": SSyncCompiler(device).compile}
    for name, backend in (("s-sync-incremental", "incremental"), ("s-sync-naive", "naive")):
        config = _ssync_config(backend)
        if config is not None:
            compilers[name] = SSyncCompiler(device, config).compile
    compilers["murali"] = lambda circuit: make_pipeline("murali", device).compile(circuit)
    return compilers


def _backend_compilers(device) -> dict[str, Any]:
    """The flat-versus-incremental pair for the backend shoot-out."""
    compilers: dict[str, Any] = {"s-sync": SSyncCompiler(device).compile}
    config = _ssync_config("incremental")
    if config is not None:
        compilers["s-sync-incremental"] = SSyncCompiler(device, config).compile
    return compilers


def _measure_point(
    compilers: dict[str, Any],
    circuit,
    repeats: int,
    extra: dict[str, Any],
) -> list[dict[str, Any]]:
    """Best-of-``repeats`` per compiler, repeats interleaved across them."""
    best_total = {name: float("inf") for name in compilers}
    best_routing = dict(best_total)
    last_result: dict[str, Any] = {}
    metric_delta = {name: 0.0 for name in compilers}
    for _ in range(repeats):
        for name, compile_fn in compilers.items():
            before = _COMPILE_SECONDS.value
            result = compile_fn(circuit)
            metric_delta[name] += _COMPILE_SECONDS.value - before
            last_result[name] = result
            best_total[name] = min(best_total[name], result.compile_time_s)
            best_routing[name] = min(
                best_routing[name],
                sum(t.wall_time_s for t in result.pass_timings if t.name == "routing"),
            )
    points = []
    for name, result in last_result.items():
        points.append(
            {
                "compiler": name,
                "seconds": round(best_total[name], 6),
                "routing_seconds": round(best_routing[name], 6),
                "metric_compile_seconds_delta": round(metric_delta[name], 6),
                "generic_swap_iterations": result.statistics.generic_swap_iterations,
                "candidate_evaluations": result.statistics.candidate_evaluations,
                **extra,
            }
        )
        print(
            f"{name:>20}  {extra['circuit']}_{extra['size']:<3} on "
            f"{extra.get('device', DEVICE_NAME)}  total {best_total[name]:.4f}s  "
            f"routing {best_routing[name]:.4f}s",
            flush=True,
        )
    return points


class _MeteredCompile:
    """Wrap a compile callable so its wall time feeds the shared counter."""

    def __init__(self, compile_fn) -> None:
        self._compile = compile_fn

    def __call__(self, circuit):
        result = self._compile(circuit)
        _COMPILE_SECONDS.inc(result.compile_time_s)
        return result


def _metered(compilers: dict[str, Any]) -> dict[str, Any]:
    return {name: _MeteredCompile(fn) for name, fn in compilers.items()}


def measure_points(repeats: int = 5, full: bool = False) -> list[dict[str, Any]]:
    """The scaled suite: every (compiler, circuit, size) point on G-2x2."""
    sizes = FULL_SIZES if full else SCALED_SIZES
    compilers = _metered(_scaled_compilers(paper_device(DEVICE_NAME, CAPACITY)))
    points: list[dict[str, Any]] = []
    for family in FAMILIES:
        for size in sizes:
            circuit = build_family(family, size)
            points.extend(
                _measure_point(
                    compilers,
                    circuit,
                    repeats,
                    {"circuit": family, "size": size, "device": DEVICE_NAME, "capacity": CAPACITY},
                )
            )
    return points


def measure_backend_points(repeats: int = 3, gate_only: bool = False) -> list[dict[str, Any]]:
    """The 64/96/128-qubit flat-versus-incremental shoot-out points."""
    points: list[dict[str, Any]] = []
    for size, (device_name, capacity) in BACKEND_DEVICES.items():
        for family in BACKEND_FAMILIES:
            if gate_only and (family, size) != (GATE_CIRCUIT, GATE_SIZE):
                continue
            device = paper_device(device_name, capacity)
            compilers = _metered(_backend_compilers(device))
            circuit = build_family(family, size)
            points.extend(
                _measure_point(
                    compilers,
                    circuit,
                    repeats,
                    {"circuit": family, "size": size, "device": device_name, "capacity": capacity},
                )
            )
    return points


def _point_key(point: dict[str, Any]) -> tuple[str, str, int, str]:
    return (
        str(point["compiler"]),
        str(point["circuit"]),
        int(point["size"]),
        str(point.get("device", DEVICE_NAME)),
    )


def compute_speedups(
    points: list[dict[str, Any]], baseline_points: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Current-vs-baseline speedup for every s-sync point present in both."""
    current = {_point_key(p): p for p in points}
    speedups: list[dict[str, Any]] = []
    for base in baseline_points:
        key = _point_key(base)
        now = current.get(key)
        if now is None or key[0] != "s-sync":
            continue
        speedups.append(
            {
                "circuit": base["circuit"],
                "size": base["size"],
                "baseline_seconds": base["seconds"],
                "seconds": now["seconds"],
                "speedup_total": round(base["seconds"] / max(now["seconds"], 1e-9), 2),
                "baseline_routing_seconds": base["routing_seconds"],
                "routing_seconds": now["routing_seconds"],
                "speedup_routing": round(
                    base["routing_seconds"] / max(now["routing_seconds"], 1e-9), 2
                ),
            }
        )
    return speedups


def compute_backend_speedups(backend_points: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Flat-core routing speedup over the incremental core per point."""
    fresh = {_point_key(p): p for p in backend_points}
    speedups: list[dict[str, Any]] = []
    for point in backend_points:
        if point["compiler"] != "s-sync":
            continue
        key = _point_key(point)
        incremental = fresh.get(("s-sync-incremental",) + key[1:])
        if incremental is None:
            continue
        flat_s = float(point["routing_seconds"])
        incremental_s = float(incremental["routing_seconds"])
        speedups.append(
            {
                "circuit": point["circuit"],
                "size": point["size"],
                "device": point["device"],
                "capacity": point["capacity"],
                "flat_routing_seconds": flat_s,
                "incremental_routing_seconds": incremental_s,
                "speedup_routing": round(incremental_s / max(flat_s, 1e-9), 2),
            }
        )
    return speedups


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _time_disk_hits(
    entry: CachedCompilation, repeats: int
) -> tuple[float, float]:
    """Best-of-N cold disk-hit latency: (binary v3, legacy v2 JSON).

    Each sample builds a fresh :class:`ScheduleCache` (empty memory
    tier), hits the on-disk entry, and fully materialises the cached
    schedule — the complete price a worker pays to reuse a compilation
    after a restart.  The legacy samples rewrite the ``.json`` file each
    round because a hit migrates it to binary, so their number includes
    the one-time migration cost a real upgrade pays.
    """
    binary_best = float("inf")
    legacy_best = float("inf")
    legacy_doc = entry.to_dict()
    legacy_doc["format_version"] = 2
    legacy_text = json.dumps(legacy_doc, sort_keys=True)
    with tempfile.TemporaryDirectory() as tmp:
        binary_dir = Path(tmp) / "binary"
        legacy_dir = Path(tmp) / "legacy"
        binary_dir.mkdir()
        legacy_dir.mkdir()
        ScheduleCache(directory=binary_dir).put("fp", entry)
        for _ in range(repeats):
            cache = ScheduleCache(directory=binary_dir)
            started = time.perf_counter()
            loaded = cache.get("fp")
            list(loaded.schedule())
            binary_best = min(binary_best, time.perf_counter() - started)

            # A hit migrates the JSON entry to binary; start each legacy
            # sample from the pre-migration state.
            (legacy_dir / "fp.sched").unlink(missing_ok=True)
            (legacy_dir / "fp.json").write_text(legacy_text)
            cache = ScheduleCache(directory=legacy_dir)
            started = time.perf_counter()
            loaded = cache.get("fp")
            list(loaded.schedule())
            legacy_best = min(legacy_best, time.perf_counter() - started)
    return binary_best, legacy_best


def measure_serialization(repeats: int = 5) -> dict[str, Any]:
    """The artifact-path section: codec times, sizes, disk-hit latency.

    One compilation of the gate-point workload, then best-of-N timings
    of the four (codec, direction) pairs on its schedule.  Decode
    timings include full operation materialisation so the binary path
    cannot win by laziness alone.
    """
    device_name, capacity = BACKEND_DEVICES[GATE_SIZE]
    device = paper_device(device_name, capacity)
    result = SSyncCompiler(device).compile(build_family(GATE_CIRCUIT, GATE_SIZE))
    schedule = result.schedule
    json_text = json.dumps(schedule_to_dict(schedule), sort_keys=True)
    blob = schedule_to_bytes(schedule)
    entry = CachedCompilation.from_result(result)
    entry_blob = entry.to_bytes()
    entry_json_bytes = len(json.dumps(entry.to_dict(), sort_keys=True))

    json_encode_s = _best_of(
        lambda: json.dumps(schedule_to_dict(schedule), sort_keys=True), repeats
    )
    binary_encode_s = _best_of(lambda: schedule_to_bytes(schedule), repeats)
    json_parse_s = _best_of(
        lambda: list(schedule_from_dict(json.loads(json_text))), repeats
    )
    binary_decode_s = _best_of(lambda: list(schedule_from_bytes(blob)), repeats)
    disk_hit_binary_s, disk_hit_legacy_s = _time_disk_hits(entry, repeats)

    section = {
        "circuit": GATE_CIRCUIT,
        "size": GATE_SIZE,
        "device": device_name,
        "capacity": capacity,
        "operations": len(schedule),
        "json_encode_seconds": round(json_encode_s, 6),
        "binary_encode_seconds": round(binary_encode_s, 6),
        "json_parse_seconds": round(json_parse_s, 6),
        "binary_decode_seconds": round(binary_decode_s, 6),
        "decode_speedup": round(json_parse_s / max(binary_decode_s, 1e-9), 2),
        "encode_speedup": round(json_encode_s / max(binary_encode_s, 1e-9), 2),
        "schedule_json_bytes": len(json_text),
        "schedule_binary_bytes": len(blob),
        "entry_json_bytes": entry_json_bytes,
        "entry_binary_bytes": len(entry_blob),
        "entry_size_ratio": round(entry_json_bytes / max(len(entry_blob), 1), 2),
        "disk_hit_binary_seconds": round(disk_hit_binary_s, 6),
        "disk_hit_legacy_json_seconds": round(disk_hit_legacy_s, 6),
    }
    print(
        f"{'serialization':>20}  {GATE_CIRCUIT}_{GATE_SIZE} on {device_name}  "
        f"decode {section['decode_speedup']}x  "
        f"entry size {section['entry_size_ratio']}x  "
        f"disk hit {disk_hit_binary_s:.4f}s vs {disk_hit_legacy_s:.4f}s legacy",
        flush=True,
    )
    return section


def check_serialization(section: dict[str, Any]) -> list[str]:
    """Gate messages for the serialization section (same-run ratios)."""
    failures: list[str] = []
    if section["decode_speedup"] < DECODE_SPEEDUP_GATE:
        failures.append(
            f"binary decode lost its {DECODE_SPEEDUP_GATE:.0f}x margin over JSON "
            f"parse: {section['binary_decode_seconds']:.4f}s vs "
            f"{section['json_parse_seconds']:.4f}s "
            f"({section['decode_speedup']:.2f}x)"
        )
    if section["entry_size_ratio"] < ENTRY_SIZE_RATIO_GATE:
        failures.append(
            f"binary cache entry lost its {ENTRY_SIZE_RATIO_GATE:.0f}x size margin: "
            f"{section['entry_binary_bytes']} bytes vs "
            f"{section['entry_json_bytes']} JSON bytes "
            f"({section['entry_size_ratio']:.2f}x)"
        )
    return failures


#: Points faster than this are timer/noise dominated and are excluded
#: from the cross-run regression gate.
MIN_CHECKED_SECONDS = 0.001


def check_regressions(
    points: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> list[str]:
    """Regression messages for this run versus the committed numbers.

    Three gates, so the check stays meaningful on machines slower or
    faster than the one that produced the committed file:

    * absolute — a point's routing seconds must not exceed
      ``threshold`` x the committed value (sub-millisecond points are
      skipped: they are noise-dominated);
    * relative (machine-independent) — on every circuit/size where both
      were measured in *this* run, the incremental ``s-sync`` core must
      not be meaningfully slower (>20%, beyond run-to-run noise) than
      the ``s-sync-naive`` reference it replaces;
    * backend (machine-independent) — at the designated 64-qubit gate
      point, the flat core's routing must stay at least ``GATE_RATIO``
      times faster than the incremental core measured in the same run
      with interleaved repeats.
    """
    fresh = {_point_key(p): p for p in points}
    failures: list[str] = []
    committed_points = list(committed.get("points", []))
    committed_points.extend(committed.get("backend_points", []))
    for committed_point in committed_points:
        key = _point_key(committed_point)
        now = fresh.get(key)
        if now is None:
            continue
        old = float(committed_point["routing_seconds"])
        new = float(now["routing_seconds"])
        if old >= MIN_CHECKED_SECONDS and new > threshold * old:
            failures.append(
                f"{key[0]} {key[1]}_{key[2]} on {key[3]}: routing {new:.4f}s > "
                f"{threshold:.1f}x committed {old:.4f}s"
            )
    for point in points:
        if point["compiler"] != "s-sync":
            continue
        key = _point_key(point)
        naive = fresh.get(("s-sync-naive",) + key[1:])
        if naive is None:
            continue
        incremental_s = float(point["routing_seconds"])
        naive_s = float(naive["routing_seconds"])
        if naive_s >= MIN_CHECKED_SECONDS and incremental_s > 1.2 * naive_s:
            failures.append(
                f"s-sync {point['circuit']}_{point['size']}: routing "
                f"{incremental_s:.4f}s slower than the naive reference {naive_s:.4f}s"
            )
    gate_device = BACKEND_DEVICES[GATE_SIZE][0]
    flat = fresh.get(("s-sync", GATE_CIRCUIT, GATE_SIZE, gate_device))
    incremental = fresh.get(("s-sync-incremental", GATE_CIRCUIT, GATE_SIZE, gate_device))
    if flat is not None and incremental is not None:
        flat_s = float(flat["routing_seconds"])
        incremental_s = float(incremental["routing_seconds"])
        if incremental_s < GATE_RATIO * flat_s:
            failures.append(
                f"flat core lost its {GATE_RATIO:.0f}x margin at "
                f"{GATE_CIRCUIT}_{GATE_SIZE} on {gate_device}: flat {flat_s:.4f}s vs "
                f"incremental {incremental_s:.4f}s "
                f"({incremental_s / max(flat_s, 1e-9):.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--full", action="store_true", help="paper-scale circuit sizes")
    parser.add_argument(
        "--gate-only",
        action="store_true",
        help="measure only the CI-gated 64-qubit backend point (smoke mode)",
    )
    parser.add_argument(
        "--skip-backend",
        action="store_true",
        help="skip the 64/96/128-qubit backend shoot-out points",
    )
    parser.add_argument(
        "--serialization-only",
        action="store_true",
        help="measure only the serialization/cache artifact section",
    )
    parser.add_argument(
        "--save-baseline",
        action="store_true",
        help="record this run as the pre-change baseline section",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="re-measure and fail on regression versus a committed run",
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args(argv)

    serialization: dict[str, Any] | None = None
    if args.serialization_only:
        points = []
        backend_points = []
        serialization = measure_serialization(repeats=args.repeats)
    elif args.gate_only:
        points = []
        backend_points = measure_backend_points(repeats=args.repeats, gate_only=True)
    else:
        points = measure_points(repeats=args.repeats, full=args.full)
        backend_points = (
            []
            if args.skip_backend
            else measure_backend_points(repeats=max(3, args.repeats // 2 + 1))
        )
        serialization = measure_serialization(repeats=max(3, args.repeats // 2 + 1))

    if args.check is not None:
        committed = json.loads(args.check.read_text())
        failures = check_regressions(points + backend_points, committed, args.threshold)
        if serialization is not None:
            failures.extend(check_serialization(serialization))
        # Write the measurements before deciding the exit code, so a red
        # CI run still uploads the numbers that triggered it.
        if args.output != RESULTS_PATH:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(
                json.dumps(
                    {
                        "points": points,
                        "backend_points": backend_points,
                        "serialization": serialization,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        if failures:
            print("\ncompile-time regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nno point regressed more than {args.threshold:.1f}x; all good")
        return 0

    existing: dict[str, Any] = {}
    if args.output.exists():
        existing = json.loads(args.output.read_text())

    if args.serialization_only:
        # Merge the fresh section into the committed document in place.
        existing["serialization"] = serialization
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.output} (serialization section only)")
        return 0

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "device": DEVICE_NAME,
        "capacity": CAPACITY,
        "repeats": args.repeats,
        "full_scale": args.full,
        "python": platform.python_version(),
        "points": points,
        "backend_points": backend_points,
        "baseline": existing.get("baseline", {}),
        "speedups": [],
        "backend_speedups": compute_backend_speedups(backend_points),
        "serialization": serialization,
    }
    if args.save_baseline:
        document["baseline"] = {
            "note": "measured by this harness before the incremental scheduler core",
            "points": points,
        }
    baseline_points = document["baseline"].get("points", [])
    document["speedups"] = compute_speedups(points, baseline_points)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    for speedup in document["speedups"]:
        print(
            f"  {speedup['circuit']}_{speedup['size']}: routing "
            f"{speedup['baseline_routing_seconds']:.4f}s -> {speedup['routing_seconds']:.4f}s "
            f"({speedup['speedup_routing']}x)"
        )
    for speedup in document["backend_speedups"]:
        print(
            f"  {speedup['circuit']}_{speedup['size']} on {speedup['device']}: flat "
            f"{speedup['flat_routing_seconds']:.4f}s vs incremental "
            f"{speedup['incremental_routing_seconds']:.4f}s "
            f"({speedup['speedup_routing']}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
