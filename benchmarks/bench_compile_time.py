"""Tracked compile-time benchmark harness (``BENCH_compile_time.json``).

Compile time is a first-class result of the paper (Fig. 15), so its
trajectory is tracked machine-readably from PR 3 onward: this harness
measures wall-clock compilation time per (compiler, circuit, size) point
on the Fig. 15 device (G-2x2, trap capacity 20) and writes
``benchmarks/results/BENCH_compile_time.json``.

The committed JSON carries three things:

* ``points`` — the current measurements (best-of-N total seconds plus
  the routing-pass seconds, which is what the incremental scheduler
  core optimises);
* ``baseline.points`` — the same measurements taken by this harness on
  the *pre-incremental-core* tree (recorded once with
  ``--save-baseline`` before the optimisation landed);
* ``speedups`` — current versus baseline per point, so regressions and
  wins are visible in the diff of a single committed file.

Usage::

    PYTHONPATH=src python benchmarks/bench_compile_time.py            # measure + write JSON
    PYTHONPATH=src python benchmarks/bench_compile_time.py --full     # paper-scale sizes
    PYTHONPATH=src python benchmarks/bench_compile_time.py --save-baseline
    PYTHONPATH=src python benchmarks/bench_compile_time.py \
        --check benchmarks/results/BENCH_compile_time.json            # CI regression gate

``--check`` re-measures the suite and exits non-zero when any point's
routing seconds regressed more than ``--threshold`` (default 2x) over
the committed numbers — loose enough for noisy CI runners, tight enough
to catch an accidental return to quadratic behaviour.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Any

from repro.circuit.library import build_family
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.hardware.presets import paper_device
from repro.registry import make_pipeline

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_compile_time.json"

FORMAT_VERSION = 1
DEVICE_NAME = "G-2x2"
CAPACITY = 20
FAMILIES = ("qft", "alt", "qaoa", "bv")
SCALED_SIZES = (16, 24, 32)
FULL_SIZES = (48, 56, 64)


def _naive_config() -> SSyncConfig | None:
    """An SSyncConfig forcing the reference (non-incremental) scorer.

    Returns ``None`` on trees that predate the incremental core (the
    harness then simply measures the stock s-sync compiler), so the
    pre-change baseline can be recorded by the very same code.
    """
    from dataclasses import fields, replace

    from repro.core.scheduler import SchedulerConfig

    if not any(f.name == "incremental" for f in fields(SchedulerConfig)):
        return None
    config = SSyncConfig()
    return replace(config, scheduler=replace(config.scheduler, incremental=False))


def _compilers() -> dict[str, Any]:
    """Name -> ``compile(circuit) -> CompilationResult`` callables."""
    device = paper_device(DEVICE_NAME, CAPACITY)
    ssync = SSyncCompiler(device)
    compilers: dict[str, Any] = {"s-sync": ssync.compile}
    naive = _naive_config()
    if naive is not None:
        compilers["s-sync-naive"] = SSyncCompiler(device, naive).compile
    compilers["murali"] = lambda circuit: make_pipeline("murali", device).compile(circuit)
    return compilers


def measure_points(repeats: int = 5, full: bool = False) -> list[dict[str, Any]]:
    """Best-of-``repeats`` seconds for every (compiler, circuit, size) point."""
    sizes = FULL_SIZES if full else SCALED_SIZES
    compilers = _compilers()
    points: list[dict[str, Any]] = []
    for family in FAMILIES:
        for size in sizes:
            circuit = build_family(family, size)
            for name, compile_fn in compilers.items():
                total = routing = float("inf")
                result = None
                for _ in range(repeats):
                    result = compile_fn(circuit)
                    total = min(total, result.compile_time_s)
                    routing = min(
                        routing,
                        sum(t.wall_time_s for t in result.pass_timings if t.name == "routing"),
                    )
                assert result is not None
                points.append(
                    {
                        "compiler": name,
                        "circuit": family,
                        "size": size,
                        "seconds": round(total, 6),
                        "routing_seconds": round(routing, 6),
                        "generic_swap_iterations": result.statistics.generic_swap_iterations,
                        "candidate_evaluations": result.statistics.candidate_evaluations,
                    }
                )
                print(
                    f"{name:>14}  {family}_{size:<3}  total {total:.4f}s  "
                    f"routing {routing:.4f}s",
                    flush=True,
                )
    return points


def _point_key(point: dict[str, Any]) -> tuple[str, str, int]:
    return (str(point["compiler"]), str(point["circuit"]), int(point["size"]))


def compute_speedups(
    points: list[dict[str, Any]], baseline_points: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Current-vs-baseline speedup for every s-sync point present in both."""
    current = {_point_key(p): p for p in points}
    speedups: list[dict[str, Any]] = []
    for base in baseline_points:
        key = _point_key(base)
        now = current.get(key)
        if now is None or key[0] != "s-sync":
            continue
        speedups.append(
            {
                "circuit": base["circuit"],
                "size": base["size"],
                "baseline_seconds": base["seconds"],
                "seconds": now["seconds"],
                "speedup_total": round(base["seconds"] / max(now["seconds"], 1e-9), 2),
                "baseline_routing_seconds": base["routing_seconds"],
                "routing_seconds": now["routing_seconds"],
                "speedup_routing": round(
                    base["routing_seconds"] / max(now["routing_seconds"], 1e-9), 2
                ),
            }
        )
    return speedups


#: Points faster than this are timer/noise dominated and are excluded
#: from the cross-run regression gate.
MIN_CHECKED_SECONDS = 0.001


def check_regressions(
    points: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> list[str]:
    """Regression messages for this run versus the committed numbers.

    Two gates, so the check stays meaningful on machines slower or
    faster than the one that produced the committed file:

    * absolute — a point's routing seconds must not exceed
      ``threshold`` x the committed value (sub-millisecond points are
      skipped: they are noise-dominated);
    * relative (machine-independent) — on every circuit/size where both
      were measured in *this* run, the incremental ``s-sync`` core must
      not be meaningfully slower (>20%, beyond run-to-run noise) than
      the ``s-sync-naive`` reference it replaces.
    """
    fresh = {_point_key(p): p for p in points}
    failures: list[str] = []
    for committed_point in committed.get("points", []):
        key = _point_key(committed_point)
        now = fresh.get(key)
        if now is None:
            continue
        old = float(committed_point["routing_seconds"])
        new = float(now["routing_seconds"])
        if old >= MIN_CHECKED_SECONDS and new > threshold * old:
            failures.append(
                f"{key[0]} {key[1]}_{key[2]}: routing {new:.4f}s > "
                f"{threshold:.1f}x committed {old:.4f}s"
            )
    for point in points:
        if point["compiler"] != "s-sync":
            continue
        naive = fresh.get(("s-sync-naive", str(point["circuit"]), int(point["size"])))
        if naive is None:
            continue
        incremental_s = float(point["routing_seconds"])
        naive_s = float(naive["routing_seconds"])
        if naive_s >= MIN_CHECKED_SECONDS and incremental_s > 1.2 * naive_s:
            failures.append(
                f"s-sync {point['circuit']}_{point['size']}: incremental routing "
                f"{incremental_s:.4f}s slower than the naive reference {naive_s:.4f}s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--full", action="store_true", help="paper-scale circuit sizes")
    parser.add_argument(
        "--save-baseline",
        action="store_true",
        help="record this run as the pre-change baseline section",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="re-measure and fail on regression versus a committed run",
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args(argv)

    points = measure_points(repeats=args.repeats, full=args.full)

    if args.check is not None:
        committed = json.loads(args.check.read_text())
        failures = check_regressions(points, committed, args.threshold)
        # Write the measurements before deciding the exit code, so a red
        # CI run still uploads the numbers that triggered it.
        if args.output != RESULTS_PATH:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(json.dumps({"points": points}, indent=2, sort_keys=True) + "\n")
        if failures:
            print("\ncompile-time regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nno point regressed more than {args.threshold:.1f}x; all good")
        return 0

    existing: dict[str, Any] = {}
    if args.output.exists():
        existing = json.loads(args.output.read_text())

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "device": DEVICE_NAME,
        "capacity": CAPACITY,
        "repeats": args.repeats,
        "full_scale": args.full,
        "python": platform.python_version(),
        "points": points,
        "baseline": existing.get("baseline", {}),
        "speedups": [],
    }
    if args.save_baseline:
        document["baseline"] = {
            "note": "measured by this harness before the incremental scheduler core",
            "points": points,
        }
    baseline_points = document["baseline"].get("points", [])
    document["speedups"] = compute_speedups(points, baseline_points)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    for speedup in document["speedups"]:
        print(
            f"  {speedup['circuit']}_{speedup['size']}: routing "
            f"{speedup['baseline_routing_seconds']:.4f}s -> {speedup['routing_seconds']:.4f}s "
            f"({speedup['speedup_routing']}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
