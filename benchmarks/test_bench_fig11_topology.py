"""E6 — Fig. 11: effect of communication topology and trap capacity.

Regenerates the success-rate and execution-time curves versus total trap
capacity for the seven topologies of Fig. 11, for a long-range (QFT), a
sparse (BV), a short-distance (adder) and a deep (Heisenberg) workload.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.reporting import format_grouped_series
from repro.analysis.sweeps import topology_capacity_sweep
from repro.circuit.library import build_family

TOPOLOGIES = ("L-6", "G-2x3", "S-6", "L-4", "G-2x2", "S-4", "G-3x3")


def _sweep(full: bool):
    if full:
        applications = {"qft": 64, "bv": 64, "adder": 32, "heisenberg": 48}
        capacities = (12, 14, 17, 20, 22, 25)
    else:
        applications = {"qft": 24, "bv": 32, "adder": 12, "heisenberg": 16}
        capacities = (8, 12, 17, 22)
    records = {}
    for family, size in applications.items():
        records[family] = topology_capacity_sweep(
            lambda n, fam=family: build_family(fam, n),
            size,
            topology_names=TOPOLOGIES,
            capacities=capacities,
        )
    return records


def test_fig11_topology_and_capacity(benchmark) -> None:
    """Regenerate the Fig. 11 curves and benchmark one sweep point."""
    per_application = _sweep(full_scale())
    sections = []
    for family, records in per_application.items():
        rows = [r.as_dict() for r in records]
        assert rows, f"no feasible sweep points for {family}"
        success = format_grouped_series(rows, "label", "value", "success_rate", float_format="{:.3e}")
        timing = format_grouped_series(rows, "label", "value", "execution_time_us", float_format="{:.4g}")
        sections.append(
            f"[{family}] success rate vs total capacity\n{success}\n"
            f"[{family}] execution time (us) vs total capacity\n{timing}"
        )
        # Every record must be a feasible compile with a sensible outcome.
        assert all(0.0 <= r.success_rate <= 1.0 for r in records)
        assert all(r.execution_time_us > 0 for r in records)
    text = "Fig. 11 — topology and trap-capacity sweep\n\n" + "\n\n".join(sections)
    save_table("fig11_topology_capacity", text)
    print("\n" + text)

    # Grid topologies should be competitive: the best grid point is at least
    # as good as the best linear point for the long-range QFT workload.
    qft_records = per_application["qft"]
    best = lambda prefix: max(
        (r.success_rate for r in qft_records if r.label.startswith(prefix)), default=0.0
    )
    assert best("G-") >= 0.5 * best("L-")

    benchmark(
        lambda: topology_capacity_sweep(
            lambda n: build_family("bv", n), 16, topology_names=("G-2x2",), capacities=(8,)
        )
    )
