"""E4 — Fig. 9: SWAP gate counts, S-SYNC versus the baseline compilers.

Regenerates the SWAP-count comparison (lower is better).  The paper
reports average reductions of 68.5% vs Murali et al. and 54.9% vs Dai et
al.; this harness asserts the direction of both comparisons in aggregate.
"""

from __future__ import annotations

from bench_common import comparison_records, full_scale, records_as_rows, save_table

from repro.analysis.metrics import compare_compilers
from repro.analysis.reporting import format_table
from repro.circuit.library import build_benchmark
from repro.hardware.presets import paper_device


def test_fig09_swap_counts(benchmark) -> None:
    """Regenerate the Fig. 9 series and benchmark one comparison point."""
    records = comparison_records(full_scale())
    rows = records_as_rows(records, "swaps")
    text = format_table(
        rows,
        columns=["circuit", "device", "murali", "dai", "s-sync"],
        title="Fig. 9 — SWAP gate counts (lower is better)",
    )
    save_table("fig09_swap_counts", text)
    print("\n" + text)

    total_ssync = sum(row["s-sync"] for row in rows)
    total_murali = sum(row["murali"] for row in rows)
    total_dai = sum(row["dai"] for row in rows)
    print(
        f"total SWAPs — murali: {total_murali}, dai: {total_dai}, s-sync: {total_ssync}"
    )
    # Aggregate reduction versus Murali must be large (paper: 68.5%).
    assert total_ssync < 0.6 * total_murali
    # S-SYNC should not insert dramatically more SWAPs than Dai overall.
    assert total_ssync <= 1.5 * total_dai + 10

    benchmark(
        lambda: compare_compilers(
            build_benchmark("qaoa_32"), paper_device("G-2x2"), compilers=("s-sync",)
        )
    )
