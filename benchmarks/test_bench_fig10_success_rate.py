"""E5 — Fig. 10: application success rates under the FM gate model.

Regenerates the success-rate comparison (higher is better) and asserts
the headline direction: S-SYNC's success rate beats the Murali et al.
baseline on (nearly) every workload and by a sizeable factor on average.
"""

from __future__ import annotations

from bench_common import comparison_records, full_scale, records_as_rows, save_table

from repro.analysis.reporting import format_table, geometric_mean
from repro.circuit.library import build_benchmark
from repro.core.compiler import SSyncCompiler
from repro.hardware.presets import paper_device
from repro.noise.evaluator import evaluate_schedule


def test_fig10_success_rates(benchmark) -> None:
    """Regenerate the Fig. 10 series and benchmark schedule evaluation."""
    records = comparison_records(full_scale())
    rows = records_as_rows(records, "success_rate")
    text = format_table(
        rows,
        columns=["circuit", "device", "murali", "dai", "s-sync"],
        title="Fig. 10 — success rate under FM gates (higher is better)",
        float_format="{:.3e}",
    )
    save_table("fig10_success_rates", text)
    print("\n" + text)

    gains = []
    wins = 0
    for row in rows:
        if row["murali"] > 0:
            gains.append(max(row["s-sync"], 1e-300) / row["murali"])
        if row["s-sync"] >= row["murali"]:
            wins += 1
    assert wins >= 0.9 * len(rows)
    if gains:
        mean_gain = geometric_mean(gains)
        print(f"geomean success-rate gain vs Murali et al.: {mean_gain:.2f}x")
        assert mean_gain > 1.5

    result = SSyncCompiler(paper_device("G-2x3")).compile(build_benchmark("qft_24"))
    benchmark(lambda: evaluate_schedule(result.schedule))
