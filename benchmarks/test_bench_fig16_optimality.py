"""E11 — Fig. 16: optimality analysis against idealised bounds.

Regenerates the comparison of S-SYNC against the "perfect shuttle",
"perfect SWAP" and "ideal" scenarios on the G-2x2 topology (capacity 20)
and asserts the bound ordering plus the paper's observation that S-SYNC
closely tracks the perfect-SWAP bound.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.optimality import optimality_report
from repro.analysis.reporting import format_table
from repro.circuit.library import build_benchmark
from repro.hardware.presets import paper_device


def test_fig16_optimality(benchmark) -> None:
    """Regenerate the Fig. 16 bars and benchmark one optimality report."""
    device = paper_device("G-2x2", capacity=20)
    if full_scale():
        bench_names = ("bv_64", "adder_32", "qaoa_64", "alt_64", "qft_64")
    else:
        bench_names = ("bv_32", "adder_16", "qaoa_32", "alt_32", "qft_24")

    reports = [optimality_report(build_benchmark(name), device) for name in bench_names]
    rows = [r.as_dict() for r in reports]
    text = format_table(
        rows,
        columns=["circuit", "s_sync", "perfect_swap", "perfect_shuttle", "ideal"],
        title="Fig. 16 — optimality analysis (G-2x2, capacity 20)",
        float_format="{:.3e}",
    )
    save_table("fig16_optimality", text)
    print("\n" + text)

    for report in reports:
        assert report.s_sync <= report.perfect_shuttle
        assert report.s_sync <= report.perfect_swap
        assert report.perfect_shuttle <= report.ideal
        assert report.perfect_swap <= report.ideal
    # The paper observes S-SYNC closely matches the perfect-SWAP bound on
    # applications with simple communication patterns.
    simple = [r for r in reports if r.circuit.startswith(("bv", "adder"))]
    assert simple
    assert all(r.swap_gap < 2.0 for r in simple)

    benchmark(lambda: optimality_report(build_benchmark("bv_24"), device))
