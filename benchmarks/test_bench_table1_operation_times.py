"""E1 — Table 1: QCCD transport operation times.

Regenerates the paper's Table 1 (move / split / merge / junction-crossing
durations) from the library's timing model and benchmarks the cost of
evaluating shuttle durations.
"""

from __future__ import annotations

from bench_common import save_table

from repro.analysis.reporting import format_table
from repro.noise.operation_times import PAPER_OPERATION_TIMES


def table1_rows() -> list[dict[str, object]]:
    """The rows of Table 1 as reported by the timing model."""
    rows = [
        {"operation": name, "time_us": value}
        for name, value in PAPER_OPERATION_TIMES.as_table().items()
    ]
    rows.append(
        {
            "operation": "full shuttle (1 segment, 0 junctions)",
            "time_us": PAPER_OPERATION_TIMES.shuttle_us(1, 0),
        }
    )
    rows.append(
        {
            "operation": "full shuttle (2 segments, 1 junction)",
            "time_us": PAPER_OPERATION_TIMES.shuttle_us(2, 1),
        }
    )
    return rows


def test_table1_operation_times(benchmark) -> None:
    """Regenerate Table 1 and benchmark shuttle-duration evaluation."""
    rows = table1_rows()
    text = format_table(rows, title="Table 1 — QCCD operation times (µs)")
    save_table("table1_operation_times", text)
    print("\n" + text)

    # Paper values must be reproduced exactly.
    by_name = {row["operation"]: row["time_us"] for row in rows}
    assert by_name["move"] == 5.0
    assert by_name["split"] == 80.0
    assert by_name["merge"] == 80.0
    assert by_name["cross 3-path junction"] == 100.0

    benchmark(lambda: [PAPER_OPERATION_TIMES.shuttle_us(s, j) for s in range(1, 20) for j in range(4)])
