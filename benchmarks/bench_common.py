"""Shared helpers for the figure/table regeneration benchmarks.

Every benchmark module regenerates the data behind one of the paper's
tables or figures, writes it as a text table under
``benchmarks/results/`` and runs a small representative workload under
``pytest-benchmark`` so ``pytest benchmarks/ --benchmark-only`` both
times the compiler and reproduces the artefacts.

Set ``REPRO_FULL=1`` to run the paper-scale circuit sizes (64-qubit
QFT, 32-bit adder, 48-spin Heisenberg...); the default sizes are scaled
down so the whole harness finishes in a couple of minutes while
preserving the comparisons' shape.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.analysis.metrics import ComparisonRecord, compare_compilers
from repro.circuit.library import build_benchmark
from repro.hardware.presets import paper_device

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-scale workloads of Figs. 8-10: benchmark name -> topologies.
FULL_WORKLOADS: dict[str, tuple[str, ...]] = {
    "qft_24": ("S-4", "L-6", "G-2x2", "G-2x3", "G-3x3"),
    "adder_32": ("S-4", "L-4", "G-2x2", "G-2x3"),
    "qaoa_64": ("S-4", "L-4", "G-2x2", "G-2x3", "G-3x3"),
    "alt_64": ("S-4", "G-2x2", "G-2x3", "G-3x3"),
    "qft_64": ("S-4", "G-2x2", "G-3x3"),
    "bv_64": ("S-4", "L-6", "G-2x3", "G-3x3"),
}

#: Scaled-down default workloads with the same communication character.
SCALED_WORKLOADS: dict[str, tuple[str, ...]] = {
    "qft_24": ("S-4", "L-6", "G-2x2", "G-2x3", "G-3x3"),
    "adder_16": ("S-4", "L-4", "G-2x2", "G-2x3"),
    "qaoa_32": ("S-4", "L-4", "G-2x2", "G-2x3", "G-3x3"),
    "alt_32": ("S-4", "G-2x2", "G-2x3", "G-3x3"),
    "qft_32": ("S-4", "G-2x2", "G-3x3"),
    "bv_48": ("S-4", "L-6", "G-2x3", "G-3x3"),
}


def full_scale() -> bool:
    """True when the harness should run paper-scale workloads."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def comparison_workloads() -> dict[str, tuple[str, ...]]:
    """The benchmark -> topology map used by Figs. 8-10."""
    return FULL_WORKLOADS if full_scale() else SCALED_WORKLOADS


def save_table(name: str, text: str) -> Path:
    """Write one artefact's text table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@lru_cache(maxsize=None)
def comparison_records(full: bool) -> tuple[ComparisonRecord, ...]:
    """Compile every (benchmark, topology) pair with every compiler.

    Cached so Figs. 8, 9 and 10 (and the headline summary) share one set
    of compilations within a single pytest session.
    """
    workloads = FULL_WORKLOADS if full else SCALED_WORKLOADS
    records: list[ComparisonRecord] = []
    for bench_name, topologies in workloads.items():
        circuit = build_benchmark(bench_name)
        for topology in topologies:
            device = paper_device(topology)
            if device.total_capacity <= circuit.num_qubits:
                continue
            records.extend(compare_compilers(circuit, device))
    return tuple(records)


def records_as_rows(records: tuple[ComparisonRecord, ...], value_key: str) -> list[dict[str, object]]:
    """Pivot comparison records into one row per (circuit, device)."""
    rows: dict[tuple[str, str], dict[str, object]] = {}
    for record in records:
        key = (record.circuit, record.device)
        row = rows.setdefault(key, {"circuit": record.circuit, "device": record.device})
        row[record.compiler] = getattr(record, value_key)
    return [rows[key] for key in sorted(rows)]
