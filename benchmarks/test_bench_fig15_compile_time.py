"""E10 — Fig. 15: compilation-time scaling with application size.

Regenerates the compilation-time curves (S-SYNC versus the Murali et al.
baseline on QFT, plus S-SYNC across the whole benchmark suite) on the
G-2x2 topology with trap capacity 20, and asserts that S-SYNC's
compilation time stays within an interactive budget at every measured
size.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.reporting import format_table
from repro.analysis.sweeps import compile_time_sweep
from repro.circuit.library import build_family
from repro.hardware.presets import paper_device


def test_fig15_compilation_time(benchmark) -> None:
    """Regenerate the Fig. 15 curves and benchmark one compile."""
    device = paper_device("G-2x2", capacity=20)
    sizes = (48, 56, 64, 72) if full_scale() else (16, 24, 32)

    # Left panel: QFT, S-SYNC versus the Murali baseline.
    qft_records = compile_time_sweep(
        lambda n: build_family("qft", n), sizes, device, compilers=("murali", "s-sync")
    )
    # Right panel: S-SYNC across the application families.  The QFT
    # curve is already covered by the left panel's s-sync points, so it
    # is not re-run — re-appending the same sweep used to duplicate the
    # qft rows in the emitted table.
    family_records = []
    for family in ("adder", "bv", "qaoa", "alt"):
        family_records.extend(
            compile_time_sweep(
                lambda n, fam=family: build_family(fam, n if fam != "adder" else max(n // 2 - 1, 2)),
                sizes,
                device,
                compilers=("s-sync",),
            )
        )

    rows = [r.as_dict() for r in qft_records] + [r.as_dict() for r in family_records]
    text = format_table(
        rows,
        columns=["compiler", "circuit", "application_size", "compile_time_s"],
        title="Fig. 15 — compilation time (s) vs application size (G-2x2, capacity 20)",
        float_format="{:.4f}",
    )
    save_table("fig15_compile_time", text)
    print("\n" + text)

    ssync_times = [r.compile_time_s for r in qft_records + family_records if r.compiler == "s-sync"]
    assert ssync_times
    # Scalability claim: every compile stays interactive (the paper reports
    # a few seconds at 70 qubits on a laptop).
    assert max(ssync_times) < 30.0

    benchmark(
        lambda: compile_time_sweep(
            lambda n: build_family("qft", n), (16,), device, compilers=("s-sync",)
        )
    )
