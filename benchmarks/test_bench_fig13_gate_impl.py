"""E8 — Fig. 13: success rate under different gate implementations.

Regenerates the FM / AM1 / AM2 / PM comparison on the G-2x3 topology for
the benchmark applications and asserts the paper's qualitative findings
about distance-sensitive (AM) versus distance-insensitive (FM/PM) gates.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.reporting import format_table
from repro.analysis.sweeps import gate_implementation_sweep
from repro.circuit.library import build_benchmark
from repro.hardware.presets import paper_device
from repro.noise.evaluator import evaluate_schedule


def test_fig13_gate_implementations(benchmark) -> None:
    """Regenerate the Fig. 13 bars and benchmark one evaluation."""
    if full_scale():
        bench_names = ("adder_32", "qft_64", "bv_64", "qaoa_64", "alt_64")
        device = paper_device("G-2x3", capacity=16)
    else:
        bench_names = ("adder_16", "qft_24", "bv_32", "qaoa_32", "alt_32")
        device = paper_device("G-2x3", capacity=16)
    circuits = [build_benchmark(name) for name in bench_names]
    records = gate_implementation_sweep(circuits, device)

    rows: dict[str, dict[str, object]] = {}
    for record in records:
        rows.setdefault(record.circuit, {"application": record.circuit})[record.label] = (
            record.success_rate
        )
    table_rows = [rows[name] for name in sorted(rows)]
    text = format_table(
        table_rows,
        columns=["application", "fm", "am1", "am2", "pm"],
        title="Fig. 13 — success rate per gate implementation (G-2x3)",
        float_format="{:.3e}",
    )
    save_table("fig13_gate_implementations", text)
    print("\n" + text)

    # AM1's strong distance dependence makes it the weakest choice for the
    # long-range QFT workload; FM/PM hold up better there.
    qft_row = next(row for name, row in rows.items() if name.startswith("qft"))
    assert qft_row["am1"] <= qft_row["fm"]
    assert qft_row["am1"] <= qft_row["pm"]
    # For the short-distance adder, the fast AM2 gate beats AM1.
    adder_row = next(row for name, row in rows.items() if name.startswith("adder"))
    assert adder_row["am2"] >= adder_row["am1"]

    result_schedule = None
    from repro.core.compiler import SSyncCompiler

    result_schedule = SSyncCompiler(device).compile(circuits[0]).schedule
    benchmark(lambda: evaluate_schedule(result_schedule, gate_implementation="am2"))
