"""E9 — Fig. 14: sensitivity to the heuristic hyper-parameters.

Regenerates the two sensitivity studies on the G-2x2 topology (trap
capacity 20): the shuttle/inner weight ratio ``r`` (left panel) and the
decay rate δ (right panel).  The paper's finding is robustness — success
rates barely move across reasonable settings — which the assertions
check as a bounded spread across the sweep.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.reporting import format_grouped_series
from repro.analysis.sweeps import decay_rate_sweep, weight_ratio_sweep
from repro.circuit.library import build_family
from repro.hardware.presets import paper_device


def _spread(values: list[float]) -> float:
    """Max/min ratio of a list of positive floats (1.0 = perfectly flat)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 1.0
    return max(positive) / min(positive)


def test_fig14_hyperparameter_sensitivity(benchmark) -> None:
    """Regenerate the Fig. 14 curves and benchmark one sweep point."""
    device = paper_device("G-2x2", capacity=20)
    if full_scale():
        sizes = (48, 56, 64)
        families = ("adder", "qft", "qaoa")
    else:
        sizes = (24, 32)
        families = ("adder", "qft", "qaoa")

    sections = []
    ratio_spreads: list[float] = []
    for family in families:
        factory = lambda n, fam=family: build_family(fam, n if fam != "adder" else max(n // 2 - 1, 2))
        ratio_records = weight_ratio_sweep(
            factory, sizes, device, ratios=(100.0, 1000.0, 10000.0, 100000.0)
        )
        decay_records = decay_rate_sweep(
            factory, sizes, device, deltas=(0.0, 0.01, 0.001, 0.0001)
        )
        assert ratio_records and decay_records
        sections.append(
            f"[{family}] success rate vs shuttle/inner weight ratio\n"
            + format_grouped_series(
                [r.as_dict() for r in ratio_records], "label", "value", "success_rate", "{:.3e}"
            )
        )
        sections.append(
            f"[{family}] success rate vs decay rate delta\n"
            + format_grouped_series(
                [r.as_dict() for r in decay_records], "label", "value", "success_rate", "{:.3e}"
            )
        )
        for size in sizes:
            values = [r.success_rate for r in ratio_records if r.value == size or r.circuit.endswith(str(size))]
            if values:
                ratio_spreads.append(_spread(values))

    text = "Fig. 14 — hyper-parameter sensitivity on G-2x2 (capacity 20)\n\n" + "\n\n".join(sections)
    save_table("fig14_sensitivity", text)
    print("\n" + text)

    # Robustness claim: varying r by three orders of magnitude moves the
    # success rate by far less than the compiler-vs-baseline gap.
    assert all(spread < 50.0 for spread in ratio_spreads)

    benchmark(
        lambda: weight_ratio_sweep(
            lambda n: build_family("qft", n), (16,), device, ratios=(1000.0,)
        )
    )
