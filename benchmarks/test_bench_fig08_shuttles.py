"""E3 — Fig. 8: shuttle counts, S-SYNC versus the baseline compilers.

Regenerates the shuttle-count comparison across the benchmark suite and
topologies (lower is better) and asserts the paper's qualitative claim:
S-SYNC never needs more shuttles than the Murali et al. baseline and
reduces them by a large factor on average.
"""

from __future__ import annotations

from bench_common import comparison_records, full_scale, records_as_rows, save_table

from repro.analysis.metrics import compare_compilers
from repro.analysis.reporting import format_table, geometric_mean
from repro.circuit.library import build_benchmark
from repro.hardware.presets import paper_device


def test_fig08_shuttle_counts(benchmark) -> None:
    """Regenerate the Fig. 8 series and benchmark one comparison point."""
    records = comparison_records(full_scale())
    rows = records_as_rows(records, "shuttles")
    text = format_table(
        rows,
        columns=["circuit", "device", "murali", "dai", "s-sync"],
        title="Fig. 8 — shuttle counts (lower is better)",
    )
    save_table("fig08_shuttle_counts", text)
    print("\n" + text)

    reductions = []
    wins = 0
    for row in rows:
        if row["s-sync"] <= row["murali"]:
            wins += 1
        if row["s-sync"]:
            reductions.append(row["murali"] / row["s-sync"])
    # S-SYNC wins the large majority of (circuit, topology) points; the few
    # exceptions are nearest-neighbour workloads where the baseline's packed
    # mapping is already near-optimal (visible in the paper's Fig. 8 too).
    assert wins >= 0.7 * len(rows)
    if reductions:
        mean_reduction = geometric_mean(reductions)
        print(f"geomean shuttle reduction vs Murali et al.: {mean_reduction:.2f}x")
        assert mean_reduction > 2.0

    benchmark(
        lambda: compare_compilers(
            build_benchmark("qft_24"), paper_device("G-2x3"), compilers=("s-sync",)
        )
    )
