"""E13 (extension) — ablation of S-SYNC's design ingredients.

DESIGN.md calls out several design choices (lookahead, decay, the
mountain intra-trap ordering, the shuttle-vs-SWAP weight separation).
This harness quantifies each one's contribution on a serial
(Cuccaro adder) and a long-range (QFT) workload, writing the table to
``benchmarks/results/ablation.txt``.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.ablation import ablation_summary, run_ablation
from repro.analysis.reporting import format_table
from repro.circuit.library import build_benchmark
from repro.hardware.presets import paper_device


def test_ablation_of_design_choices(benchmark) -> None:
    """Run every ablation variant and benchmark the full configuration."""
    device = paper_device("G-2x3")
    bench_names = ("adder_32", "qft_32") if full_scale() else ("adder_16", "qft_24")

    rows = []
    summaries = {}
    for name in bench_names:
        circuit = build_benchmark(name)
        records = run_ablation(circuit, device)
        rows.extend(record.as_dict() for record in records)
        summaries[name] = ablation_summary(records)

    text = format_table(
        rows,
        columns=[
            "circuit",
            "variant",
            "shuttles",
            "swaps",
            "success_rate",
            "execution_time_us",
            "compile_time_s",
        ],
        title="Ablation — contribution of each design ingredient (G-2x3)",
        float_format="{:.3e}",
    )
    save_table("ablation", text)
    print("\n" + text)

    for name, summary in summaries.items():
        # Removing the lookahead should never reduce the shuttle count on
        # these workloads, and on the serial adder it should clearly hurt.
        assert summary["no-lookahead"] >= 1.0, (name, summary)
    adder_key = next(name for name in summaries if name.startswith("adder"))
    assert summaries[adder_key]["no-lookahead"] > 1.2

    # Collapsing the shuttle/SWAP weight separation removes the
    # co-optimization pressure: the scheduler then trades SWAP gates much
    # more freely, so the inserted SWAP count rises.
    by_key = {(row["circuit"], row["variant"]): row for row in rows}
    for name in bench_names:
        assert by_key[(name, "greedy-weights")]["swaps"] >= by_key[(name, "full")]["swaps"], name

    circuit = build_benchmark(bench_names[0])
    benchmark(lambda: run_ablation(circuit, device))
