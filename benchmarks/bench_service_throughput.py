"""Tracked service-throughput benchmark (``BENCH_service_throughput.json``).

Runs the :mod:`repro.loadgen` profiles (``burst``, ``duplicates``,
``priorities``, ``results``) against a compilation service and records
throughput and latency percentiles per profile into
``benchmarks/results/BENCH_service_throughput.json`` — the service-layer
counterpart of ``bench_compile_time.py``: the committed file makes the
service's performance trajectory visible in the diff of one JSON file.

By default the harness boots its own in-process service (ephemeral port,
temporary cache directory) so a run needs nothing but this checkout;
``--url`` points it at an already-running service instead.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py            # measure + write JSON
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --requests 50
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --check benchmarks/results/BENCH_service_throughput.json            # CI regression gate

``--check`` re-measures and exits non-zero when any profile's p95
latency regressed more than ``--threshold`` (default 2x) over the
committed numbers.  Points whose committed p95 sits under
``MIN_CHECKED_SECONDS`` are skipped — they are timer/noise dominated,
and a 2x gate on microseconds would flap on every loaded CI runner.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
from pathlib import Path
from typing import Any

from repro.loadgen import PROFILES, run_profile

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_service_throughput.json"

FORMAT_VERSION = 1

#: Committed p95 values below this are excluded from the regression
#: gate: at that scale the measurement is scheduling noise, not service
#: performance.
MIN_CHECKED_SECONDS = 0.05


def _boot_service(workers: int, slots: int):
    """An in-process service on an ephemeral port; returns (server, stop)."""
    from repro.service.server import make_server

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-")
    server = make_server(workers=workers, slots=slots, port=0, cache_dir=tmp.name)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        server.service.close()
        tmp.cleanup()

    return server, stop


def measure_profiles(
    url: str, requests: int, concurrency: int, seed: int
) -> list[dict[str, Any]]:
    """One aggregated result document per profile, in PROFILES order."""
    points: list[dict[str, Any]] = []
    for profile in PROFILES:
        result = run_profile(
            url, profile, requests=requests, seed=seed, concurrency=concurrency
        )
        summary = result.as_dict()
        points.append(summary)
        latency = summary["latency_s"]
        print(
            f"{profile:>11}  {summary['throughput_rps']:8.2f} req/s  "
            f"p50 {latency['p50']:.4f}s  p95 {latency['p95']:.4f}s  "
            f"p99 {latency['p99']:.4f}s",
            flush=True,
        )
        if not result.ok:
            failed = [r for r in result.records if r.error or r.status != "done"]
            for record in failed[:5]:
                print(
                    f"  request {record.index}: status={record.status} "
                    f"error={record.error}",
                    file=sys.stderr,
                )
            raise SystemExit(f"loadgen profile {profile!r} had failing requests")
    return points


def check_regressions(
    points: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> list[str]:
    """Regression messages for this run versus the committed numbers."""
    fresh = {p["profile"]: p for p in points}
    failures: list[str] = []
    for committed_point in committed.get("profiles", []):
        now = fresh.get(committed_point["profile"])
        if now is None:
            continue
        old = float(committed_point["latency_s"]["p95"])
        new = float(now["latency_s"]["p95"])
        if old >= MIN_CHECKED_SECONDS and new > threshold * old:
            failures.append(
                f"{committed_point['profile']}: p95 {new:.4f}s > "
                f"{threshold:.1f}x committed {old:.4f}s"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    parser.add_argument(
        "--url",
        default=None,
        help="use a running service instead of booting one in-process",
    )
    parser.add_argument("--requests", type=int, default=24, help="submissions per profile")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2, help="in-process service workers")
    parser.add_argument("--slots", type=int, default=2, help="in-process scheduler slots")
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="re-measure and fail on regression versus a committed run",
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args(argv)

    stop = None
    if args.url is None:
        server, stop = _boot_service(args.workers, args.slots)
        url = server.url
        print(f"booted in-process service at {url}")
    else:
        url = args.url
    try:
        points = measure_profiles(url, args.requests, args.concurrency, args.seed)
    finally:
        if stop is not None:
            stop()

    if args.check is not None:
        committed = json.loads(args.check.read_text())
        failures = check_regressions(points, committed, args.threshold)
        # Write the measurements before deciding the exit code, so a red
        # CI run still uploads the numbers that triggered it.
        if args.output != RESULTS_PATH:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(
                json.dumps({"profiles": points}, indent=2, sort_keys=True) + "\n"
            )
        if failures:
            print("\nservice-throughput regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nno profile regressed more than {args.threshold:.1f}x; all good")
        return 0

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "requests": args.requests,
        "concurrency": args.concurrency,
        "seed": args.seed,
        "workers": args.workers,
        "slots": args.slots,
        "python": platform.python_version(),
        "profiles": points,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
