"""Tracked service-throughput benchmark (``BENCH_service_throughput.json``).

Runs the :mod:`repro.loadgen` profiles (``burst``, ``duplicates``,
``priorities``, ``results``) against a compilation service and records
throughput and latency percentiles per profile into
``benchmarks/results/BENCH_service_throughput.json`` — the service-layer
counterpart of ``bench_compile_time.py``: the committed file makes the
service's performance trajectory visible in the diff of one JSON file.

By default the harness boots its own in-process service (ephemeral port,
temporary cache directory) so a run needs nothing but this checkout;
``--url`` points it at an already-running service instead.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py            # measure + write JSON
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --requests 50
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --check benchmarks/results/BENCH_service_throughput.json            # CI regression gate

``--check`` re-measures and exits non-zero when any profile's p95
latency regressed more than ``--threshold`` (default 2x) over the
committed numbers.  Points whose committed p95 sits under
``MIN_CHECKED_SECONDS`` are skipped — they are timer/noise dominated,
and a 2x gate on microseconds would flap on every loaded CI runner.

The fleet section (``--skip-fleet`` to disable) boots real multi-process
fleets through :func:`repro.service.fleet.make_fleet` and records two
kinds of point:

* scaling — the ``burst`` profile against 1-worker and
  ``FLEET_SCALE_SIZE``-worker fleets.  The "N workers is at least
  ``FLEET_SCALE_FACTOR``x one worker" gate only applies when the machine
  has at least that many cores (recorded as ``cpu_count``); on smaller
  runners the numbers are recorded but the gate is skipped — process
  parallelism cannot beat the physics of one core.
* cross-worker cache — several distinct-label jobs of one circuit
  sharded across a 2-worker fleet must compile **once** fleet-wide
  (``recompilations == 0``), proving the router's shared cache tier
  works.  This gate is machine-independent and always enforced.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
from pathlib import Path
from typing import Any

from repro.loadgen import PROFILES, run_profile

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_service_throughput.json"

FORMAT_VERSION = 2

#: Committed p95 values below this are excluded from the regression
#: gate: at that scale the measurement is scheduling noise, not service
#: performance.
MIN_CHECKED_SECONDS = 0.05

#: Worker count of the large fleet scaling point.
FLEET_SCALE_SIZE = 4

#: Minimum burst-throughput multiple the large fleet must achieve over a
#: single worker — gated only on machines with >= FLEET_SCALE_SIZE cores.
FLEET_SCALE_FACTOR = 2.0

#: Jobs submitted for the cross-worker cache point (distinct labels, one
#: circuit — every job past the first must be a tier hit somewhere).
FLEET_CACHE_JOBS = 6


def _boot_service(workers: int, slots: int):
    """An in-process service on an ephemeral port; returns (server, stop)."""
    from repro.service.server import make_server

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-")
    server = make_server(workers=workers, slots=slots, port=0, cache_dir=tmp.name)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        server.service.close()
        tmp.cleanup()

    return server, stop


def _boot_fleet(size: int, workers: int = 1, slots: int = 2):
    """A multi-process fleet on an ephemeral port; returns (server, stop)."""
    from repro.service.fleet import make_fleet

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-fleet-")
    server = make_fleet(
        port=0,
        size=size,
        cache_dir=tmp.name,
        workers=workers,
        slots=slots,
        warm=False,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        server.close()
        thread.join(timeout=10)
        tmp.cleanup()

    return server, stop


def measure_fleet(requests: int, concurrency: int, seed: int) -> dict[str, Any]:
    """The fleet section: scaling points plus the cross-worker cache point."""
    from repro.obs import parse_exposition
    from repro.service import ServiceClient

    section: dict[str, Any] = {
        "cpu_count": os.cpu_count() or 1,
        "profile": "burst",
        "requests": requests,
        "points": [],
    }
    for size in (1, FLEET_SCALE_SIZE):
        server, stop = _boot_fleet(size)
        try:
            result = run_profile(
                server.url,
                "burst",
                requests=requests,
                seed=seed,
                concurrency=max(concurrency, size),
            )
            summary = result.as_dict()
            if not result.ok:
                raise SystemExit(
                    f"fleet burst profile had failing requests at size {size}"
                )
            point = {
                "size": size,
                "throughput_rps": summary["throughput_rps"],
                "latency_s": summary["latency_s"],
            }
            section["points"].append(point)
            print(
                f"fleet x{size:<3}  {summary['throughput_rps']:8.2f} req/s  "
                f"p50 {summary['latency_s']['p50']:.4f}s  "
                f"p95 {summary['latency_s']['p95']:.4f}s",
                flush=True,
            )
        finally:
            stop()

    # Cross-worker cache sharing: FLEET_CACHE_JOBS distinct-label jobs of
    # one circuit shard across two workers; the fleet-wide compilation
    # counter proves the first worker's schedule reached the second
    # through the router tier without recompiling.
    server, stop = _boot_fleet(2)
    try:
        client = ServiceClient(server.url, timeout=300.0)
        try:
            for index in range(FLEET_CACHE_JOBS):
                receipt = client.submit(
                    {
                        "jobs": [
                            {
                                "circuit": "qft_6",
                                "device": "G-2x2",
                                "label": f"bench-cache-{index}",
                            }
                        ]
                    }
                )
                client.results(receipt["job_id"])
            parsed = parse_exposition(client.metrics())
            compilations = parsed["repro_engine_compilations_total"].value()
        finally:
            client.close()
        section["cross_worker_cache"] = {
            "jobs": FLEET_CACHE_JOBS,
            "distinct_circuits": 1,
            "compilations": compilations,
            "recompilations": compilations - 1,
        }
        print(
            f"fleet cache  {FLEET_CACHE_JOBS} jobs across 2 workers -> "
            f"{compilations:.0f} compilation(s) fleet-wide",
            flush=True,
        )
    finally:
        stop()
    return section


def check_fleet(section: dict[str, Any]) -> list[str]:
    """Gate messages for a freshly measured fleet section."""
    failures: list[str] = []
    cache = section.get("cross_worker_cache")
    if cache is not None and cache["recompilations"] != 0:
        failures.append(
            f"cross-worker cache: {cache['recompilations']:.0f} recompilation(s) "
            f"across {cache['jobs']} same-circuit jobs (expected 0 — the "
            "router tier should serve every worker after the first compile)"
        )
    points = {point["size"]: point for point in section.get("points", [])}
    cpu_count = section.get("cpu_count", os.cpu_count() or 1)
    if 1 in points and FLEET_SCALE_SIZE in points:
        if cpu_count >= FLEET_SCALE_SIZE:
            base = float(points[1]["throughput_rps"])
            big = float(points[FLEET_SCALE_SIZE]["throughput_rps"])
            if big < FLEET_SCALE_FACTOR * base:
                failures.append(
                    f"fleet scaling: {FLEET_SCALE_SIZE} workers at {big:.1f} "
                    f"req/s < {FLEET_SCALE_FACTOR:.1f}x one worker "
                    f"({base:.1f} req/s)"
                )
        else:
            print(
                f"fleet scaling gate skipped: {cpu_count} core(s) < "
                f"{FLEET_SCALE_SIZE} workers (numbers recorded, not gated)"
            )
    return failures


def measure_profiles(
    url: str, requests: int, concurrency: int, seed: int
) -> list[dict[str, Any]]:
    """One aggregated result document per profile, in PROFILES order."""
    points: list[dict[str, Any]] = []
    for profile in PROFILES:
        result = run_profile(
            url, profile, requests=requests, seed=seed, concurrency=concurrency
        )
        summary = result.as_dict()
        points.append(summary)
        latency = summary["latency_s"]
        print(
            f"{profile:>11}  {summary['throughput_rps']:8.2f} req/s  "
            f"p50 {latency['p50']:.4f}s  p95 {latency['p95']:.4f}s  "
            f"p99 {latency['p99']:.4f}s",
            flush=True,
        )
        if not result.ok:
            failed = [r for r in result.records if r.error or r.status != "done"]
            for record in failed[:5]:
                print(
                    f"  request {record.index}: status={record.status} "
                    f"error={record.error}",
                    file=sys.stderr,
                )
            raise SystemExit(f"loadgen profile {profile!r} had failing requests")
    return points


def check_regressions(
    points: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> list[str]:
    """Regression messages for this run versus the committed numbers."""
    fresh = {p["profile"]: p for p in points}
    failures: list[str] = []
    for committed_point in committed.get("profiles", []):
        now = fresh.get(committed_point["profile"])
        if now is None:
            continue
        old = float(committed_point["latency_s"]["p95"])
        new = float(now["latency_s"]["p95"])
        if old >= MIN_CHECKED_SECONDS and new > threshold * old:
            failures.append(
                f"{committed_point['profile']}: p95 {new:.4f}s > "
                f"{threshold:.1f}x committed {old:.4f}s"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    parser.add_argument(
        "--url",
        default=None,
        help="use a running service instead of booting one in-process",
    )
    parser.add_argument("--requests", type=int, default=24, help="submissions per profile")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2, help="in-process service workers")
    parser.add_argument("--slots", type=int, default=2, help="in-process scheduler slots")
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="re-measure and fail on regression versus a committed run",
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument(
        "--skip-fleet",
        action="store_true",
        help="skip the multi-process fleet scaling/cache section",
    )
    args = parser.parse_args(argv)

    stop = None
    if args.url is None:
        server, stop = _boot_service(args.workers, args.slots)
        url = server.url
        print(f"booted in-process service at {url}")
    else:
        url = args.url
    try:
        points = measure_profiles(url, args.requests, args.concurrency, args.seed)
    finally:
        if stop is not None:
            stop()

    # The fleet boots its own processes, so it only runs when this
    # harness controls the service (not against a --url deployment).
    fleet = None
    if not args.skip_fleet and args.url is None:
        fleet = measure_fleet(args.requests, args.concurrency, args.seed)

    if args.check is not None:
        committed = json.loads(args.check.read_text())
        failures = check_regressions(points, committed, args.threshold)
        if fleet is not None:
            failures.extend(check_fleet(fleet))
        # Write the measurements before deciding the exit code, so a red
        # CI run still uploads the numbers that triggered it.
        if args.output != RESULTS_PATH:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(
                json.dumps(
                    {"profiles": points, "fleet": fleet},
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        if failures:
            print("\nservice-throughput regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nno profile regressed more than {args.threshold:.1f}x; all good")
        return 0

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "requests": args.requests,
        "concurrency": args.concurrency,
        "seed": args.seed,
        "workers": args.workers,
        "slots": args.slots,
        "python": platform.python_version(),
        "profiles": points,
    }
    if fleet is not None:
        document["fleet"] = fleet
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
