"""E12 — headline claims: average shuttle reduction and success-rate gain.

The abstract reports that S-SYNC "reduces the shuttling number by 3.69x
on average and improves the success rate of quantum applications by
1.73x on average".  This harness aggregates the Fig. 8/10 comparison data
into those two headline numbers and checks their direction and rough
magnitude.
"""

from __future__ import annotations

from bench_common import comparison_records, full_scale, save_table

from repro.analysis.metrics import improvement_factors
from repro.analysis.reporting import format_table, geometric_mean
from repro.circuit.library import build_benchmark
from repro.core.compiler import SSyncCompiler
from repro.hardware.presets import paper_device


def test_headline_improvement_factors(benchmark) -> None:
    """Aggregate the comparison data into the paper's two headline factors."""
    records = comparison_records(full_scale())
    grouped: dict[tuple[str, str], list] = {}
    for record in records:
        grouped.setdefault((record.circuit, record.device), []).append(record)

    rows = []
    shuttle_factors = []
    success_factors = []
    for (circuit, device), group in sorted(grouped.items()):
        factors = improvement_factors(group)
        rows.append(
            {
                "circuit": circuit,
                "device": device,
                "shuttle_reduction_x": factors["shuttle_reduction"],
                "success_rate_gain_x": factors["success_rate_gain"],
            }
        )
        if factors["shuttle_reduction"] not in (float("inf"),):
            shuttle_factors.append(max(factors["shuttle_reduction"], 1e-3))
        if factors["success_rate_gain"] not in (float("inf"),):
            # The reimplemented Murali baseline collapses to near-zero success
            # on long-range workloads, which would make the raw geometric mean
            # astronomically large; capping each per-workload gain keeps the
            # aggregate comparable to the paper's modest 1.73x headline.
            success_factors.append(min(max(factors["success_rate_gain"], 1e-3), 100.0))

    mean_shuttle = geometric_mean(shuttle_factors)
    mean_success = geometric_mean(success_factors)
    summary = (
        f"geomean shuttle reduction vs baselines: {mean_shuttle:.2f}x "
        f"(paper reports 3.69x vs prior work)\n"
        f"geomean success-rate gain vs baselines (per-workload gains capped at 100x): "
        f"{mean_success:.2f}x (paper reports 1.73x vs prior work)"
    )
    text = format_table(rows, title="Headline improvement factors per workload") + "\n\n" + summary
    save_table("headline_factors", text)
    print("\n" + text)

    assert mean_shuttle > 2.0
    assert mean_success > 1.5

    benchmark(lambda: SSyncCompiler(paper_device("G-2x3")).compile(build_benchmark("qft_24")))
