"""E7 — Fig. 12: effect of the initial mapping strategy.

Regenerates the shuttle / SWAP / execution-time / success-rate curves
versus application size for the gathering, even-divided and STA mappings
on the G-2x3 topology, and asserts the paper's observed trade-off:
gathering needs the fewest shuttles but pays for it in execution time
under FM gates.
"""

from __future__ import annotations

from bench_common import full_scale, save_table

from repro.analysis.reporting import format_grouped_series
from repro.analysis.sweeps import initial_mapping_sweep
from repro.circuit.library import build_family

MAPPINGS = ("gathering", "even-divided", "sta")


def test_fig12_initial_mapping(benchmark) -> None:
    """Regenerate the Fig. 12 curves and benchmark one mapping sweep point."""
    if full_scale():
        sizes = (50, 60, 70, 80, 90)
        families = ("adder", "qft")
    else:
        sizes = (24, 32, 40)
        families = ("adder", "qft")

    sections = []
    gathering_vs_even = []
    for family in families:
        records = initial_mapping_sweep(
            lambda n, fam=family: build_family(fam, n if fam != "adder" else max(n // 2 - 1, 2)),
            circuit_sizes=sizes,
            device_name="G-2x3",
            mappings=MAPPINGS,
        )
        assert records, f"no feasible sweep points for {family}"
        rows = [r.as_dict() for r in records]
        for metric, fmt in (
            ("shuttles", "{:.0f}"),
            ("swaps", "{:.0f}"),
            ("execution_time_us", "{:.4g}"),
            ("success_rate", "{:.3e}"),
        ):
            series = format_grouped_series(rows, "label", "value", metric, float_format=fmt)
            sections.append(f"[{family}] {metric} vs application size\n{series}")
        by_mapping = {}
        for record in records:
            by_mapping.setdefault(record.label, []).append(record)
        gathering_vs_even.append(
            (
                sum(r.shuttles for r in by_mapping["gathering"]),
                sum(r.shuttles for r in by_mapping["even-divided"]),
                sum(r.execution_time_us for r in by_mapping["gathering"]),
                sum(r.execution_time_us for r in by_mapping["even-divided"]),
            )
        )

    text = "Fig. 12 — initial mapping comparison on G-2x3\n\n" + "\n\n".join(sections)
    save_table("fig12_initial_mapping", text)
    print("\n" + text)

    total_shuttles_gathering = sum(row[0] for row in gathering_vs_even)
    total_shuttles_even = sum(row[1] for row in gathering_vs_even)
    total_time_gathering = sum(row[2] for row in gathering_vs_even)
    total_time_even = sum(row[3] for row in gathering_vs_even)
    # The paper's trade-off: gathering shuttles less but runs longer (FM gates).
    assert total_shuttles_gathering <= total_shuttles_even
    assert total_time_gathering >= 0.9 * total_time_even

    benchmark(
        lambda: initial_mapping_sweep(
            lambda n: build_family("qft", n),
            circuit_sizes=(16,),
            device_name="G-2x2",
            mappings=("gathering",),
        )
    )
