#!/usr/bin/env python3
"""Quickstart: compile one circuit for a QCCD device and inspect the result.

This example walks through the whole S-SYNC pipeline on a 24-qubit QFT:

1. build a QCCD device from one of the paper's presets (G-2x3),
2. compile the circuit with the S-SYNC compiler (gathering initial
   mapping + generic-swap scheduling),
3. verify the produced schedule is physically legal,
4. evaluate its execution time and success rate under the FM gate model,
5. compare against the Murali et al. and Dai et al. baseline compilers.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    DaiCompiler,
    MuraliCompiler,
    SSyncCompiler,
    evaluate_schedule,
    paper_device,
    qft_circuit,
    verify_schedule,
)


def main() -> None:
    # 1. Hardware: the paper's G-2x3 preset (6 traps of 17 ions, X-junctions).
    device = paper_device("G-2x3")
    print(f"device: {device.name} with {device.num_traps} traps, "
          f"{device.total_capacity} ion slots")

    # 2. Application: a 24-qubit QFT (long-distance communication pattern).
    circuit = qft_circuit(24)
    print(f"circuit: {circuit.name} with {circuit.num_qubits} qubits and "
          f"{circuit.num_two_qubit_gates} two-qubit gates")

    # 3. Compile with S-SYNC.
    compiler = SSyncCompiler(device)
    result = compiler.compile(circuit, initial_mapping="gathering")
    print(f"\nS-SYNC compiled in {result.compile_time_s * 1e3:.1f} ms:")
    print(f"  shuttles inserted : {result.shuttle_count}")
    print(f"  SWAP gates inserted: {result.swap_count}")

    # 4. Check the schedule is physically legal and evaluate it.
    verify_schedule(result.schedule, result.initial_state, circuit=circuit)
    evaluation = evaluate_schedule(result.schedule, gate_implementation="fm")
    print(f"  estimated execution time: {evaluation.execution_time_us / 1e3:.1f} ms")
    print(f"  estimated success rate  : {evaluation.success_rate:.4f}")

    # 5. Compare against the two baselines the paper evaluates.
    print("\ncomparison against the baseline compilers:")
    print(f"  {'compiler':10s} {'shuttles':>8s} {'swaps':>6s} {'success':>9s}")
    for baseline in (MuraliCompiler(device), DaiCompiler(device), None):
        if baseline is None:
            name, compiled = "s-sync", result
        else:
            name, compiled = baseline.name, baseline.compile(circuit)
        score = evaluate_schedule(compiled.schedule)
        print(
            f"  {name:10s} {compiled.shuttle_count:8d} {compiled.swap_count:6d} "
            f"{score.success_rate:9.4f}"
        )


if __name__ == "__main__":
    main()
