#!/usr/bin/env python3
"""Quickstart: compile one circuit for a QCCD device and inspect the result.

This example walks through the modern entry points on a 24-qubit QFT:

1. build a QCCD device from one of the paper's presets (G-2x3),
2. resolve the S-SYNC compiler through the registry
   (:func:`repro.make_pipeline` — the same resolution the CLI, batch
   manifests and the service use) and compile with verification,
3. evaluate the schedule's execution time and success rate under the FM
   gate model,
4. compare against the Murali et al. and Dai et al. baselines by running
   one batch through the runtime (:func:`repro.run_batch`), which
   deduplicates and caches compilations.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    CompileJob,
    available_compilers,
    evaluate_schedule,
    make_pipeline,
    paper_device,
    qft_circuit,
    run_batch,
)


def main() -> None:
    # 1. Hardware: the paper's G-2x3 preset (6 traps of 17 ions, X-junctions).
    device = paper_device("G-2x3")
    print(f"device: {device.name} with {device.num_traps} traps, "
          f"{device.total_capacity} ion slots")

    # 2. Application: a 24-qubit QFT (long-distance communication pattern).
    circuit = qft_circuit(24)
    print(f"circuit: {circuit.name} with {circuit.num_qubits} qubits and "
          f"{circuit.num_two_qubit_gates} two-qubit gates")

    # 3. Compile with S-SYNC, resolved by name through the registry.
    #    verify=True inserts the schedule legality check into the pipeline.
    pipeline = make_pipeline("s-sync", device, verify=True)
    result = pipeline.compile(circuit, initial_mapping="gathering")
    print(f"\nS-SYNC compiled in {result.compile_time_s * 1e3:.1f} ms:")
    print(f"  shuttles inserted : {result.shuttle_count}")
    print(f"  SWAP gates inserted: {result.swap_count}")
    print("  passes: " + " -> ".join(t.name for t in result.pass_timings))

    # 4. Evaluate the schedule under the FM gate-timing model.
    evaluation = evaluate_schedule(result.schedule, gate_implementation="fm")
    print(f"  estimated execution time: {evaluation.execution_time_us / 1e3:.1f} ms")
    print(f"  estimated success rate  : {evaluation.success_rate:.4f}")

    # 5. Compare every registered compiler on the same workload with one
    #    batch run (identical compilations dedup; schedules are cached).
    jobs = [
        CompileJob(circuit=circuit, device=device, compiler=spec.name)
        for spec in available_compilers()
    ]
    batch = run_batch(jobs, workers=2)
    print("\ncomparison across the registered compilers:")
    print(f"  {'compiler':10s} {'shuttles':>8s} {'swaps':>6s} {'success':>9s}")
    for outcome in batch:
        record = outcome.record
        print(
            f"  {record['compiler']:10s} {record['shuttles']:8d} "
            f"{record['swaps']:6d} {record['success_rate']:9.4f}"
        )
    print(f"\nbatch summary: {batch.summary()}")


if __name__ == "__main__":
    main()
