#!/usr/bin/env python3
"""Initial-mapping and gate-implementation study (paper §5.3 and §5.4).

Two design decisions a QCCD user has to make are (a) how to place the
program qubits onto traps before execution and (b) which laser-modulation
scheme implements the two-qubit gates.  This example reproduces both
studies on the G-2x3 preset:

* **initial mapping** — gathering vs even-divided vs STA on a 32-qubit
  Cuccaro adder and a 32-qubit QFT, showing the paper's trade-off:
  gathering minimises shuttles but lengthens the FM gate time because
  the chains are longer;
* **gate implementation** — the same compiled schedules re-evaluated
  under FM, PM, AM1 and AM2 timing models, showing that
  distance-sensitive AM gates suit nearest-neighbour workloads while
  FM/PM hold up better for long-range ones.

Run with ``python examples/mapping_and_gates_study.py``.
"""

from __future__ import annotations

from repro import SSyncCompiler, evaluate_schedule, paper_device
from repro.analysis.reporting import format_table
from repro.circuit.library import cuccaro_adder_circuit, qft_circuit
from repro.noise.gate_times import GateImplementation

MAPPINGS = ("gathering", "even-divided", "sta")


def mapping_study() -> None:
    """Compare the three first-level mappings on two workloads."""
    device = paper_device("G-2x3")
    workloads = {
        "adder (short-distance)": cuccaro_adder_circuit(15),
        "qft (long-distance)": qft_circuit(32),
    }
    rows = []
    for label, circuit in workloads.items():
        for mapping in MAPPINGS:
            result = SSyncCompiler(device).compile(circuit, initial_mapping=mapping)
            evaluation = evaluate_schedule(result.schedule)
            rows.append(
                {
                    "workload": label,
                    "mapping": mapping,
                    "shuttles": result.shuttle_count,
                    "swaps": result.swap_count,
                    "exec_time_ms": evaluation.execution_time_us / 1e3,
                    "success_rate": evaluation.success_rate,
                }
            )
    print(format_table(rows, title="Initial mapping comparison (G-2x3, FM gates)"))
    print(
        "\nNote the gathering/even-divided trade-off: fewer shuttles, but longer\n"
        "chains make every FM gate slower, which can lower the success rate.\n"
    )


def gate_implementation_study() -> None:
    """Re-evaluate one schedule per workload under all four gate models."""
    device = paper_device("G-2x3")
    workloads = {
        "adder (short-distance)": cuccaro_adder_circuit(15),
        "qft (long-distance)": qft_circuit(24),
    }
    rows = []
    for label, circuit in workloads.items():
        result = SSyncCompiler(device).compile(circuit)
        row: dict[str, object] = {"workload": label}
        for implementation in GateImplementation:
            evaluation = evaluate_schedule(result.schedule, gate_implementation=implementation)
            row[implementation.value] = evaluation.success_rate
        rows.append(row)
    print(format_table(rows, title="Gate implementation comparison (success rate)"))
    print(
        "\nAM gates are fast for adjacent ions but slow down quickly with ion\n"
        "separation, so they favour nearest-neighbour workloads; FM and PM\n"
        "depend only weakly on separation and suit long-range workloads."
    )


def main() -> None:
    mapping_study()
    gate_implementation_study()


if __name__ == "__main__":
    main()
