#!/usr/bin/env python3
"""Topology explorer: which QCCD layout suits which workload?

Section 5.2 of the paper studies how the device topology (linear,
grid, fully-connected) and the per-trap capacity affect success rate and
execution time.  This example reproduces that study at a laptop-friendly
scale for two contrasting workloads:

* a 24-qubit QFT — long-distance, all-to-all communication;
* a 32-qubit QAOA ring — strictly nearest-neighbour communication;

and prints, for each topology/capacity point, the shuttle count, the
estimated execution time and the success rate, plus a per-workload
recommendation.  The whole grid runs as **one batch** through the
runtime (:func:`repro.run_batch`), so distinct points compile in
parallel worker processes.

Run with ``python examples/topology_explorer.py``.
"""

from __future__ import annotations

from repro import CompileJob, paper_device, qaoa_circuit, qft_circuit, run_batch
from repro.analysis.reporting import format_table

TOPOLOGIES = ("L-4", "L-6", "S-4", "G-2x2", "G-2x3", "G-3x3")
CAPACITIES = (10, 14, 18, 22)


def sweep(circuit, label: str) -> list[dict[str, object]]:
    """Compile ``circuit`` on every feasible (topology, capacity) point."""
    jobs = []
    for topology in TOPOLOGIES:
        for capacity in CAPACITIES:
            device = paper_device(topology, capacity)
            if device.total_capacity <= circuit.num_qubits:
                continue
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    label=label,
                    parameter="topology",
                    value=topology,
                )
            )
    rows: list[dict[str, object]] = []
    for outcome in run_batch(jobs, workers=2):
        record = outcome.record
        rows.append(
            {
                "workload": label,
                "topology": record["value"],
                "total_capacity": outcome.job.device.total_capacity,
                "shuttles": record["shuttles"],
                "swaps": record["swaps"],
                "exec_time_ms": record["execution_time_us"] / 1e3,
                "success_rate": record["success_rate"],
            }
        )
    return rows


def recommend(rows: list[dict[str, object]]) -> str:
    """The topology/capacity point with the best success rate."""
    best = max(rows, key=lambda row: row["success_rate"])
    return (
        f"{best['topology']} with total capacity {best['total_capacity']} "
        f"(success rate {best['success_rate']:.3f}, "
        f"{best['shuttles']} shuttles, {best['exec_time_ms']:.1f} ms)"
    )


def main() -> None:
    workloads = {
        "QFT-24 (long-range)": qft_circuit(24),
        "QAOA-32 ring (nearest-neighbour)": qaoa_circuit(32, layers=10),
    }
    for label, circuit in workloads.items():
        rows = sweep(circuit, label)
        print(format_table(rows, title=f"\n=== {label} ==="))
        print(f"--> best configuration: {recommend(rows)}")


if __name__ == "__main__":
    main()
