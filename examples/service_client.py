#!/usr/bin/env python3
"""Talk to the compilation service: submit a manifest, stream results.

This example is fully self-contained: it starts an in-process service on
an ephemeral port (the same stack ``python -m repro serve`` runs), then
uses :class:`repro.service.ServiceClient` to

1. check ``/v1/healthz`` and list the registered compilers,
2. POST the repository's smoke manifest to ``/v1/jobs``,
3. stream each result line as its compilation lands (chunked JSON
   lines — the first record arrives while the rest still compile),
4. re-submit the same manifest and observe the fingerprint-derived job
   id dedup the work,
5. fetch one compiled schedule back out of the cache by its compile
   fingerprint.

Against a standalone server (``python -m repro serve --port 8000``) the
client half of this script works unchanged — point ``ServiceClient`` at
the printed URL.

Run with ``python examples/service_client.py``.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.service import ServiceClient, make_server

MANIFEST = Path(__file__).parent / "manifests" / "smoke.json"


def main() -> None:
    # Start the service in-process on an ephemeral port (port=0).  A
    # warm worker pool compiles; a shared ScheduleCache serves repeats.
    server = make_server(workers=2, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    print(f"service up at {server.url}")

    health = client.health()
    print(f"healthz: status={health['status']} version={health['version']}")
    names = ", ".join(row["name"] for row in client.compilers())
    print(f"registered compilers: {names}")

    # Submit the manifest.  The job id is derived from the compile-job
    # fingerprints, so the same manifest always gets the same id.
    receipt = client.submit_file(MANIFEST)
    print(f"\nsubmitted {MANIFEST.name}: job {receipt['job_id']} "
          f"({receipt['jobs']} jobs, status={receipt['status']})")

    # Stream results as they complete (one JSON line per outcome).
    print("streaming results:")
    fingerprint = None
    for line in client.stream_results(receipt["job_id"]):
        if line["type"] == "outcome":
            record = line["record"]
            fingerprint = line["compile_fingerprint"]
            print(
                f"  [{line['index']}] {record['circuit']:8s} on {record['device']:5s}"
                f" via {record['compiler']:7s} success={record['success_rate']:.4f}"
                f" from_cache={line['from_cache']}"
            )
        else:
            print(f"  [end] status={line['status']} summary={line.get('summary')}")

    # Re-submit: same fingerprints, same job id, no recompilation.
    again = client.submit_file(MANIFEST)
    print(f"\nresubmitted: job {again['job_id']} resubmitted={again['resubmitted']}")

    # Any compiled schedule can be fetched back by compile fingerprint.
    entry = client.schedule(fingerprint)["entry"]
    print(f"cached schedule {fingerprint[:12]}…: compiler={entry['compiler_name']} "
          f"operations={len(entry['schedule']['operations'])}")

    server.shutdown()
    server.server_close()
    server.service.close()


if __name__ == "__main__":
    main()
