#!/usr/bin/env python3
"""Bring your own hardware and your own circuit.

The paper evaluates preset topologies, but the library accepts arbitrary
QCCD layouts and arbitrary circuits.  This example builds:

* a custom asymmetric device — a "comb": a 4-trap spine of large traps
  with two small memory traps hanging off it through junctions;
* a custom circuit loaded from an OpenQASM 2.0 string (a GHZ-style state
  preparation followed by a parity check);

then compiles it with two different scheduler configurations (the
paper-faithful frontier-only heuristic versus the default shallow
lookahead) and reports the difference — a miniature ablation of the one
engineering extension this reproduction adds on top of the paper.

Run with ``python examples/custom_device_and_circuit.py``.
"""

from __future__ import annotations

from repro import (
    QCCDDevice,
    SSyncCompiler,
    SSyncConfig,
    SchedulerConfig,
    Trap,
    evaluate_schedule,
    verify_schedule,
)
from repro.circuit.qasm import qasm_to_circuit
from repro.hardware.trap import Connection

QASM_PROGRAM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[12];
// GHZ ladder across the register
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
cx q[5],q[6];
cx q[6],q[7];
cx q[7],q[8];
cx q[8],q[9];
cx q[9],q[10];
cx q[10],q[11];
// parity checks back onto the first qubit (long-range)
cx q[11],q[0];
cx q[6],q[0];
cx q[3],q[0];
"""


def build_comb_device() -> QCCDDevice:
    """A 4-trap spine (capacity 6) with two capacity-3 memory traps attached."""
    traps = [
        Trap(0, 6, name="spine0"),
        Trap(1, 6, name="spine1"),
        Trap(2, 6, name="spine2"),
        Trap(3, 6, name="spine3"),
        Trap(4, 3, name="memoryA"),
        Trap(5, 3, name="memoryB"),
    ]
    connections = [
        Connection(0, 1, junctions=0, segments=1),
        Connection(1, 2, junctions=0, segments=1),
        Connection(2, 3, junctions=0, segments=1),
        Connection(1, 4, junctions=1, segments=2),
        Connection(2, 5, junctions=1, segments=2),
    ]
    return QCCDDevice(traps, connections, name="comb-4+2")


def main() -> None:
    device = build_comb_device()
    circuit = qasm_to_circuit(QASM_PROGRAM, name="ghz-parity")
    print(f"device: {device.name} ({device.num_traps} traps, {device.total_capacity} slots)")
    print(f"circuit: {circuit.name} with {circuit.num_two_qubit_gates} two-qubit gates\n")

    configurations = {
        "paper-faithful (frontier only)": SSyncConfig(
            scheduler=SchedulerConfig(lookahead_depth=0)
        ),
        "default (lookahead depth 4)": SSyncConfig(),
    }
    for label, config in configurations.items():
        result = SSyncCompiler(device, config).compile(circuit, initial_mapping="sta")
        verify_schedule(result.schedule, result.initial_state, circuit=circuit)
        evaluation = evaluate_schedule(result.schedule)
        print(
            f"{label:32s} shuttles={result.shuttle_count:3d} swaps={result.swap_count:3d} "
            f"success={evaluation.success_rate:.4f} "
            f"exec={evaluation.execution_time_us / 1e3:.1f} ms"
        )
    print("\nBoth schedules are verified legal; the lookahead variant usually")
    print("avoids a few round-trip shuttles on serial, ladder-like circuits.")


if __name__ == "__main__":
    main()
