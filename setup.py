"""Setuptools shim for environments without network access.

The canonical metadata lives in ``pyproject.toml``; this file only exists
so that ``pip install -e .`` works offline (legacy editable installs do
not need the ``wheel`` package or an isolated build environment).
"""

from setuptools import setup

setup()
