"""repro — reproduction of S-SYNC: shuttle and swap co-optimization for QCCD devices.

The package mirrors the paper's structure:

* :mod:`repro.circuit` — circuit IR, dependency DAG and the Table-2
  benchmark generators;
* :mod:`repro.hardware` — the QCCD device model (traps, junctions,
  L/G/S topologies, the static weighted slot graph);
* :mod:`repro.core` — the S-SYNC compiler itself (generic swaps,
  heuristic scheduler, initial mappings) with three bit-identical
  scheduler cores: :mod:`repro.core.flatstate` (the default ``"flat"``
  backend — batched candidate scoring on flat integer arrays, 2-3x the
  incremental core on routing-bound 64-128 qubit devices),
  :mod:`repro.core.incremental` (delta-evaluated scoring: score caches,
  candidate memoisation, O(1) state bookkeeping, ≥3x the naive
  reference on the Fig. 15 points) and the naive reference scorer;
* :mod:`repro.baselines` — reimplementations of the Murali et al. and
  Dai et al. compilers the paper compares against;
* :mod:`repro.noise` — gate-time, heating and fidelity models plus the
  schedule evaluator;
* :mod:`repro.analysis` — comparisons, parameter sweeps, optimality
  bounds and text/JSON/CSV reporting for every figure in the evaluation;
* :mod:`repro.schedule` — the compiled operation log, its legality
  verifier and JSON serialisation;
* :mod:`repro.pipeline` — the pass-pipeline compilation architecture:
  every compiler is a :class:`CompilerPipeline` of ordered
  :class:`Pass` stages (mapping, routing, optional verification,
  metrics) with per-pass wall-time profiling;
* :mod:`repro.registry` — the single compiler registry mapping
  canonical names and aliases to pipeline factories;
  :func:`register_compiler` plugs third-party backends into every
  entry point (jobs, manifests, sweeps, CLI);
* :mod:`repro.runtime` — the parallel batch-compilation engine:
  declarative :class:`CompileJob` specs, content-addressed schedule
  caching (in-memory LRU + on-disk), multiprocessing fan-out — warm
  persistent pools and streamed per-job outcomes included — and the
  :func:`run_batch`/:func:`run_sweep` entry points behind
  ``python -m repro batch``;
* :mod:`repro.service` — the async HTTP compilation service over the
  batch runtime (``python -m repro serve``): manifest submission with
  fingerprint-derived job ids, a multi-slot scheduler running several
  batches concurrently over one warm worker pool (priorities, FIFO
  within priority, cooperative cancellation), a durable JSON-lines job
  journal replayed on restart, chunked JSON-lines result streaming,
  cached-schedule and registry endpoints, the stdlib
  :class:`ServiceClient`, and the ``repro submit``/``results``/``jobs``
  CLI client commands;
* :mod:`repro.obs` — the stdlib-only observability core: thread-safe
  counters/gauges/histograms with labels, Prometheus text-format
  exposition (served at ``GET /v1/metrics``) and its parser, wired
  through the cache, engine, scheduler, journal and HTTP layers;
* :mod:`repro.loadgen` — the seeded service load generator behind
  ``python -m repro loadgen`` and the tracked throughput benchmark
  (``burst``/``duplicates``/``priorities`` profiles, latency
  percentiles, reproducible request plans);
* :mod:`repro.fuzz` — differential scenario fuzzing behind
  ``python -m repro fuzz``: a seeded generator cross-producting random
  circuits with random devices, an oracle asserting three-way scheduler
  parity plus legality, codec and noise invariants, a delta-debugging
  minimizer producing 1-minimal reproducers, and the replayable
  regression corpus under ``tests/fuzz/corpus/``.

Quickstart::

    from repro import SSyncCompiler, paper_device, qft_circuit, evaluate_schedule

    device = paper_device("G-2x3")
    result = SSyncCompiler(device).compile(qft_circuit(16))
    report = evaluate_schedule(result.schedule)
    print(result.shuttle_count, result.swap_count, report.success_rate)

Batch quickstart::

    from repro import CompileJob, run_batch

    jobs = [CompileJob(circuit="qft_24", device="G-2x3"),
            CompileJob(circuit="bv_64", device="L-6", compiler="murali")]
    batch = run_batch(jobs, workers=4, cache_dir=".repro-cache")
    for outcome in batch:
        print(outcome.record["circuit"], outcome.record["success_rate"])

Service quickstart (or ``python -m repro serve`` from a shell)::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8000")
    receipt = client.submit({"jobs": [{"circuit": "qft_24", "device": "G-2x3"}]})
    for line in client.stream_results(receipt["job_id"]):
        print(line)
"""

from repro.baselines import DaiCompiler, MuraliCompiler
from repro.circuit import DependencyDAG, Gate, QuantumCircuit
from repro.circuit.library import (
    alternating_layered_ansatz,
    bernstein_vazirani_circuit,
    build_benchmark,
    cuccaro_adder_circuit,
    ghz_circuit,
    heisenberg_circuit,
    paper_benchmark_suite,
    qaoa_circuit,
    qft_circuit,
    random_circuit,
    random_clifford,
    random_qaoa,
)
from repro.core import (
    CompilationResult,
    DeviceState,
    SSyncCompiler,
    SSyncConfig,
    SchedulerConfig,
    compile_circuit,
)
from repro.exceptions import (
    CircuitError,
    DeviceError,
    ManifestError,
    MappingError,
    NoiseModelError,
    ReproError,
    SchedulingError,
    ServiceError,
    StateError,
)
from repro.hardware import (
    GraphWeights,
    QCCDDevice,
    SlotGraph,
    Trap,
    grid_device,
    hex_device,
    linear_device,
    paper_device,
    ring_device,
    star_device,
)
from repro.noise import (
    EvaluationResult,
    GateImplementation,
    HeatingParameters,
    OperationTimes,
    evaluate_schedule,
)
from repro.pipeline import (
    CompilerPipeline,
    InitialMappingPass,
    MetricsPass,
    Pass,
    PassContext,
    SchedulingPass,
    VerifySchedulePass,
)
from repro.core.result import PassTiming
from repro.registry import (
    CompilerSpec,
    available_compilers,
    compiler_spec,
    make_pipeline,
    normalize_compiler_name,
    register_compiler,
    registered_names,
    unregister_compiler,
)
from repro.runtime import (
    BatchCompiler,
    BatchResult,
    CompileJob,
    ScheduleCache,
    run_batch,
    run_sweep,
)
from repro.obs import MetricsRegistry, parse_exposition
from repro.schedule import Schedule, verify_schedule
from repro.service import CompilationService, ServiceClient

__version__ = "1.9.0"

__all__ = [
    "BatchCompiler",
    "BatchResult",
    "CircuitError",
    "CompilationResult",
    "CompilationService",
    "CompileJob",
    "CompilerPipeline",
    "CompilerSpec",
    "DaiCompiler",
    "DependencyDAG",
    "DeviceError",
    "DeviceState",
    "EvaluationResult",
    "Gate",
    "GateImplementation",
    "GraphWeights",
    "HeatingParameters",
    "InitialMappingPass",
    "ManifestError",
    "MappingError",
    "MetricsPass",
    "MetricsRegistry",
    "MuraliCompiler",
    "NoiseModelError",
    "OperationTimes",
    "Pass",
    "PassContext",
    "PassTiming",
    "QCCDDevice",
    "QuantumCircuit",
    "ReproError",
    "SSyncCompiler",
    "SSyncConfig",
    "Schedule",
    "ScheduleCache",
    "SchedulerConfig",
    "SchedulingError",
    "SchedulingPass",
    "ServiceClient",
    "ServiceError",
    "SlotGraph",
    "StateError",
    "Trap",
    "VerifySchedulePass",
    "__version__",
    "alternating_layered_ansatz",
    "available_compilers",
    "bernstein_vazirani_circuit",
    "build_benchmark",
    "compile_circuit",
    "compiler_spec",
    "cuccaro_adder_circuit",
    "evaluate_schedule",
    "make_pipeline",
    "normalize_compiler_name",
    "register_compiler",
    "registered_names",
    "unregister_compiler",
    "ghz_circuit",
    "grid_device",
    "heisenberg_circuit",
    "hex_device",
    "linear_device",
    "paper_benchmark_suite",
    "paper_device",
    "parse_exposition",
    "qaoa_circuit",
    "qft_circuit",
    "random_circuit",
    "random_clifford",
    "random_qaoa",
    "ring_device",
    "run_batch",
    "run_sweep",
    "star_device",
    "verify_schedule",
]
