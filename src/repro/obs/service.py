"""Service-side metrics wiring: one registry across the whole stack.

:class:`ServiceMetrics` is how :class:`~repro.service.app.CompilationService`
turns the generic instruments of :mod:`repro.obs.metrics` into the
service's observability surface.  It owns the shared
:class:`~repro.obs.metrics.MetricsRegistry`, creates the HTTP-layer
instruments the request handler records into, registers scrape-time
collectors for state that already lives elsewhere (job census, journal
size, uptime, service version), and binds the schedule cache and batch
engine to the same registry.  The scheduler binds itself at
construction, since it exists before this object does.

The full metric-name reference lives in ``docs/observability.md``; the
rendered output of :meth:`ServiceMetrics.render` is what
``GET /v1/metrics`` serves.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable

from repro.obs.metrics import (
    SERVICE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    MetricsRegistry,
    _Metric,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports obs)
    from repro.service.app import CompilationService


class ServiceMetrics:
    """The metrics surface of one :class:`CompilationService`.

    Parameters
    ----------
    service:
        The owning service; collectors read its job store, journal and
        start time at scrape time.
    registry:
        An existing registry to expose through (embedding applications
        merge service metrics into their own); a private one is created
        by default.
    """

    def __init__(
        self,
        service: "CompilationService",
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.service = service
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.http_requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route template and status code.",
            ("method", "route", "status"),
        )
        self.http_latency = reg.histogram(
            "repro_http_request_seconds",
            "HTTP request latency in seconds, by method and route template.",
            ("method", "route"),
            buckets=SERVICE_LATENCY_BUCKETS,
        )
        reg.gauge(
            "repro_service_uptime_seconds",
            "Seconds since this service instance was created.",
            callback=self._uptime,
        )
        reg.register_collector(self._collect)
        # Tests inject stub engines satisfying only the scheduler's
        # protocol; instrument the real engine stack when present.
        engine = service.engine
        cache = getattr(engine, "cache", None)
        if cache is not None and hasattr(cache, "bind_metrics"):
            cache.bind_metrics(reg)
        if hasattr(engine, "bind_metrics"):
            engine.bind_metrics(reg)
        results = getattr(service, "results", None)
        if results is not None:
            results.bind_metrics(reg)

    # ------------------------------------------------------------------
    # scrape-time state
    # ------------------------------------------------------------------
    def _uptime(self) -> float:
        return time.monotonic() - self.service.started_monotonic

    def _collect(self) -> Iterable[_Metric]:
        # Imported lazily: repro/__init__ re-exports the service package,
        # so a top-level import here would be circular.
        from repro import __version__

        info = Gauge(
            "repro_service_info",
            "Constant 1, carrying the service version as a label.",
            ("version",),
        )
        info.labels(version=__version__).set(1)
        census = Gauge(
            "repro_service_jobs",
            "Jobs currently known to the service, by state.",
            ("status",),
        )
        for status, count in self.service.store.counts().items():
            census.labels(status=status).set(count)
        families: list[_Metric] = [info, census]
        journal = self.service.journal
        if journal is not None:
            events = Counter(
                "repro_journal_events_total",
                "Journal events appended by this service instance.",
            )
            events.inc(journal.events_appended)
            written = Counter(
                "repro_journal_bytes_written_total",
                "Journal bytes written by this service instance.",
            )
            written.inc(journal.bytes_written)
            size = Gauge(
                "repro_journal_file_bytes",
                "Current size of the job journal file on disk.",
            )
            size.set(journal.size_bytes())
            rotations = Counter(
                "repro_journal_rotations_total",
                "In-place journal rotations (size-triggered compactions).",
            )
            rotations.inc(journal.rotations)
            families.extend((events, written, size, rotations))
        return families

    def render(self) -> str:
        """The Prometheus text exposition served at ``GET /v1/metrics``."""
        return self.registry.render()
