"""A thread-safe metrics core with Prometheus text-format exposition.

The service tier needs numbers an operator can scrape — slot
utilisation, queue latency, cache effectiveness — without pulling in a
metrics client library.  This module is the stdlib-only core behind
``GET /v1/metrics``: three instrument kinds (:class:`Counter`,
:class:`Gauge`, :class:`Histogram`), each optionally **labelled**,
registered in a :class:`MetricsRegistry` that renders the whole set in
the Prometheus text format (version 0.0.4).

Design points, in the spirit of the official client libraries:

* **Instruments are cheap and thread-safe.**  Every mutation takes one
  lock per metric family; scheduler slots, HTTP handler threads and
  batch runs hammer the same counters concurrently (the race test in
  ``tests/obs`` asserts exact totals under contention).
* **Labels are curried.**  ``counter.labels(route="/v1/jobs")`` returns
  a child bound to those label values; children are created on first
  use and enumerate deterministically (sorted by label values) in the
  exposition output.
* **Timers are monotonic.**  ``histogram.time()`` is a context manager
  measuring :func:`time.perf_counter` intervals, immune to wall-clock
  steps.
* **Scrape-time values are callbacks.**  A :class:`Gauge` may be
  registered with ``callback=``, so state that already lives elsewhere
  (queue depth, journal file size, uptime) is read at exposition time
  instead of being pushed on every change.

:func:`parse_exposition` is the inverse of :meth:`MetricsRegistry.render`
— a small parser the CLI pretty-printer and the reconciliation tests use
to consume the text format without regex soup.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.exceptions import ReproError

#: Content type of the exposition output (the value Prometheus scrapers
#: send in ``Accept`` and expect back in ``Content-Type``).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets, in seconds — tuned for request/queue
#: latencies between a cache hit (~ms) and a long compilation (minutes).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Service HTTP-latency buckets, in seconds.  Retuned against the
#: measured loadgen distributions in
#: ``benchmarks/results/BENCH_service_throughput.json``: every profile
#: lands between ~3 ms (results-stream p50) and ~66 ms (burst max), a
#: band the default buckets cross with only three edges (10/25/50 ms).
#: The sub-100 ms region gets edges bracketing the observed p50s
#: (3–19 ms) and p95s (4–62 ms); the tail keeps sparse coverage out to
#: the longest plausible synchronous request.
SERVICE_LATENCY_BUCKETS = (
    0.001, 0.002, 0.003, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03,
    0.045, 0.065, 0.1, 0.25, 1.0, 5.0, 30.0, 120.0,
)

#: Scheduler queue-wait buckets, in seconds.  Queue latency is bimodal:
#: near-zero when a slot is free (the common case in the benchmark
#: profiles, where waits track the sub-100 ms request band) and
#: compilation-scale when every slot is busy — so the low end mirrors
#: :data:`SERVICE_LATENCY_BUCKETS` while the tail stretches to the
#: multi-minute drain ceiling.
QUEUE_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.02, 0.045, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0,
)

_METRIC_TYPES = ("counter", "gauge", "histogram")


def format_value(value: float) -> str:
    """Render one sample value the way Prometheus expects.

    Integral values print without a fractional part (``3``, not
    ``3.0``); everything else uses ``repr`` (shortest round-trip form);
    infinities print as ``+Inf``/``-Inf``.
    """
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - nothing here produces NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str, what: str) -> None:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ReproError(f"invalid {what} name {name!r}")


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: "tuple[tuple[str, str], ...]"
    value: float

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


class _Child:
    """One (label values → state) cell of a metric family."""

    __slots__ = ("_family",)

    def __init__(self, family: "_Metric") -> None:
        self._family = family


class _CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, family: "_Metric") -> None:
        super().__init__(family)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ReproError("counters can only increase")
        with self._family._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value


class _GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, family: "_Metric") -> None:
        super().__init__(family)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._family._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value


class _HistogramChild(_Child):
    __slots__ = ("_bucket_counts", "_sum", "_count")

    def __init__(self, family: "Histogram") -> None:
        super().__init__(family)
        self._bucket_counts = [0] * len(family.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        family: "Histogram" = self._family  # type: ignore[assignment]
        with family._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(family.buckets):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break

    def time(self) -> "_Timer":
        """A context manager observing the block's monotonic duration."""
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._family._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._family._lock:
            return self._sum


class _Timer:
    """Context manager feeding ``perf_counter`` intervals to a histogram."""

    __slots__ = ("_child", "_start")

    def __init__(self, child: _HistogramChild) -> None:
        self._child = child
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._child.observe(time.perf_counter() - self._start)


class _Metric:
    """A metric family: shared name/help/type plus per-label children."""

    kind = "untyped"
    _child_class: type = _Child

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        _check_name(name, "metric")
        for label in labelnames:
            _check_name(label, "label")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: "dict[tuple[str, ...], Any]" = {}
        if not self.labelnames:
            # An unlabelled metric is its own single child, so callers
            # use ``counter.inc()`` directly without ``.labels()``.
            self._children[()] = self._child_class(self)

    def labels(self, **labelvalues: str) -> Any:
        """The child bound to these label values (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ReproError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labelvalues))!r}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._child_class(self)
            return child

    def _sole_child(self) -> Any:
        if self.labelnames:
            raise ReproError(
                f"metric {self.name!r} is labelled ({self.labelnames!r}); "
                "bind values with .labels() first"
            )
        return self._children[()]

    def _items(self) -> "list[tuple[tuple[str, ...], Any]]":
        with self._lock:
            return sorted(self._children.items())

    def samples(self) -> Iterator[Sample]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (requests served, jobs run)."""

    kind = "counter"
    _child_class = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    @property
    def value(self) -> float:
        return self._sole_child().value

    def samples(self) -> Iterator[Sample]:
        for key, child in self._items():
            yield Sample(self.name, tuple(zip(self.labelnames, key)), child.value)


class Gauge(_Metric):
    """A value that goes both ways (queue depth, bytes on disk).

    With ``callback=`` the gauge is read-only and its value is the
    callback's return at exposition time — the natural fit for state
    that already lives in another data structure.
    """

    kind = "gauge"
    _child_class = _GaugeChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: "Callable[[], float] | None" = None,
    ) -> None:
        if callback is not None and labelnames:
            raise ReproError("callback gauges cannot be labelled")
        super().__init__(name, help, labelnames)
        self.callback = callback

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    @property
    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        return self._sole_child().value

    def samples(self) -> Iterator[Sample]:
        if self.callback is not None:
            yield Sample(self.name, (), float(self.callback()))
            return
        for key, child in self._items():
            yield Sample(self.name, tuple(zip(self.labelnames, key)), child.value)


class Histogram(_Metric):
    """A distribution of observations in cumulative buckets.

    Exposes ``<name>_bucket{le="..."}`` (cumulative counts including the
    implicit ``+Inf`` bucket), ``<name>_sum`` and ``<name>_count`` — the
    shape every Prometheus quantile query expects.
    """

    kind = "histogram"
    _child_class = _HistogramChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = [float(b) for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ReproError("histogram buckets must be sorted and distinct")
        if not bounds or not math.isinf(bounds[-1]):
            bounds.append(math.inf)
        if "le" in labelnames:
            raise ReproError("'le' is reserved for the bucket label")
        self.buckets = tuple(bounds)
        super().__init__(name, help, labelnames)

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    def time(self) -> _Timer:
        return self._sole_child().time()

    @property
    def count(self) -> int:
        return self._sole_child().count

    @property
    def sum(self) -> float:
        return self._sole_child().sum

    def samples(self) -> Iterator[Sample]:
        for key, child in self._items():
            base = tuple(zip(self.labelnames, key))
            with self._lock:
                counts = list(child._bucket_counts)
                total = child._count
                acc_sum = child._sum
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                yield Sample(
                    f"{self.name}_bucket",
                    base + (("le", format_value(bound)),),
                    cumulative,
                )
            yield Sample(f"{self.name}_sum", base, acc_sum)
            yield Sample(f"{self.name}_count", base, total)


class MetricsRegistry:
    """A named set of instruments rendered together as one exposition.

    Re-requesting a name with the same kind and labels returns the
    existing instrument (so independent components can share a family);
    a mismatched re-registration raises — silent double registration is
    how metrics get corrupted.  ``register_collector`` adds a callable
    producing extra metric families at scrape time, for values mirrored
    from existing data structures (cache statistics, job censuses)
    without event-time hooks.
    """

    def __init__(self, namespace: str = "") -> None:
        if namespace:
            _check_name(namespace, "namespace")
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: "dict[str, _Metric]" = {}
        self._collectors: "list[Callable[[], Iterator[_Metric] | list[_Metric]]]" = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if (
                    type(existing) is not type(metric)
                    or existing.labelnames != metric.labelnames
                ):
                    raise ReproError(
                        f"metric {metric.name!r} is already registered with a "
                        "different kind or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter` under this registry."""
        return self._register(Counter(self._full_name(name), help, labelnames))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: "Callable[[], float] | None" = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge` (optionally callback-backed)."""
        return self._register(  # type: ignore[return-value]
            Gauge(self._full_name(name), help, labelnames, callback=callback)
        )

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` with the given buckets."""
        return self._register(  # type: ignore[return-value]
            Histogram(self._full_name(name), help, labelnames, buckets=buckets)
        )

    def register_collector(
        self, collector: "Callable[[], Iterator[_Metric] | list[_Metric]]"
    ) -> None:
        """Add a callable yielding extra metric families at scrape time.

        Collectors run on every :meth:`render`/:meth:`collect`; they
        build short-lived :class:`Counter`/:class:`Gauge` instances
        (never registered, so names must not clash with registered
        instruments) from state they snapshot at call time.
        """
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def collect(self) -> "list[_Metric]":
        """Every metric family, registered first, then collector output."""
        with self._lock:
            families = list(self._metrics.values())
            collectors = list(self._collectors)
        for collector in collectors:
            families.extend(collector())
        return families

    def render(self) -> str:
        """The full Prometheus text-format exposition (version 0.0.4)."""
        lines: list[str] = []
        for family in self.collect():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample in family.samples():
                if sample.labels:
                    rendered = ",".join(
                        f'{label}="{_escape_label_value(value)}"'
                        for label, value in sample.labels
                    )
                    lines.append(
                        f"{sample.name}{{{rendered}}} {format_value(sample.value)}"
                    )
                else:
                    lines.append(f"{sample.name} {format_value(sample.value)}")
        return "\n".join(lines) + "\n"


@dataclass
class ParsedMetric:
    """One metric family recovered from exposition text."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def value(self, **labels: str) -> float:
        """The single sample value matching ``labels`` exactly."""
        wanted = {key: str(value) for key, value in labels.items()}
        matches = [s for s in self.samples if s.labels_dict() == wanted]
        if len(matches) != 1:
            raise KeyError(f"{self.name}: {len(matches)} samples match {wanted!r}")
        return matches[0].value


def parse_exposition(text: str) -> "dict[str, ParsedMetric]":
    """Parse Prometheus text format back into metric families.

    The inverse of :meth:`MetricsRegistry.render`, covering the subset
    this module emits (which is the subset the service produces).
    Histogram ``_bucket``/``_sum``/``_count`` series fold into their
    base family.  Raises :class:`~repro.exceptions.ReproError` on
    malformed lines, which is what makes it usable as a format validator
    in tests.
    """
    families: "dict[str, ParsedMetric]" = {}

    def family(name: str) -> ParsedMetric:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                candidate = families[name[: -len(suffix)]]
                if candidate.kind == "histogram":
                    base = name[: -len(suffix)]
                break
        if base not in families:
            families[base] = ParsedMetric(base)
        return families[base]

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            _check_name(name, "metric")
            family(name).help = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            _check_name(name, "metric")
            if kind not in _METRIC_TYPES:
                raise ReproError(f"unknown metric type {kind!r} for {name!r}")
            family(name).kind = kind
            continue
        if line.startswith("#"):
            continue
        sample = _parse_sample_line(line)
        family(sample.name).samples.append(sample)
    return families


def _parse_sample_line(line: str) -> Sample:
    if "{" in line:
        name, _, rest = line.partition("{")
        labels_text, closed, value_text = rest.rpartition("} ")
        if not closed:
            raise ReproError(f"malformed sample line {line!r}")
        labels = _parse_labels(labels_text, line)
    else:
        name, _, value_text = line.rpartition(" ")
        labels = ()
    _check_name(name, "metric")
    value_text = value_text.strip()
    try:
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
    except ValueError as exc:
        raise ReproError(f"malformed sample value in {line!r}") from exc
    return Sample(name, labels, value)


def _parse_labels(text: str, line: str) -> "tuple[tuple[str, str], ...]":
    labels: list[tuple[str, str]] = []
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        label = text[index:eq]
        _check_name(label, "label")
        if text[eq + 1] != '"':
            raise ReproError(f"malformed label value in {line!r}")
        value_chars: list[str] = []
        cursor = eq + 2
        while cursor < len(text):
            char = text[cursor]
            if char == "\\":
                escaped = text[cursor + 1]
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(escaped, escaped))
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        else:
            raise ReproError(f"unterminated label value in {line!r}")
        labels.append((label, "".join(value_chars)))
        index = cursor + 1
        if index < len(text) and text[index] == ",":
            index += 1
    return tuple(labels)
