"""``repro.obs`` — the stdlib observability layer.

Two halves:

* :mod:`repro.obs.metrics` — the metrics core: thread-safe
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  with labels, monotonic timers, scrape-time collector callbacks, and
  Prometheus text-format exposition (plus :func:`parse_exposition`, the
  parser the CLI pretty-printer and the reconciliation tests use);
* :mod:`repro.obs.service` — :class:`ServiceMetrics`, the binding that
  wires one :class:`MetricsRegistry` through the whole service stack
  (schedule cache, batch engine, scheduler slots, job journal, HTTP
  front-end) and backs ``GET /v1/metrics``.

Every metric name the service emits is listed in
``docs/observability.md``.
"""

from repro.obs.metrics import (
    CONTENT_TYPE,
    DEFAULT_BUCKETS,
    QUEUE_LATENCY_BUCKETS,
    SERVICE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ParsedMetric,
    Sample,
    format_value,
    parse_exposition,
)
from repro.obs.service import ServiceMetrics

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ParsedMetric",
    "QUEUE_LATENCY_BUCKETS",
    "SERVICE_LATENCY_BUCKETS",
    "Sample",
    "ServiceMetrics",
    "format_value",
    "parse_exposition",
]
