"""Scheduled operation records — the compiler's output vocabulary.

A compiled program is a time-ordered list of these records.  Each record
captures the *context* the noise model needs (trap occupancy, ion
separation, path length) at the moment the operation fires, so the
schedule can be re-evaluated under different gate implementations or
heating parameters without recompiling.

The records are plain ``__slots__`` classes with hand-written
constructors rather than frozen dataclasses: the scheduler creates one
per emitted operation (thousands per compile), and the dataclass
machinery dominated the emission path.  They keep value semantics —
field-wise ``__eq__``/``__hash__`` and a dataclass-style ``repr`` — and
are immutable by convention (never mutate a record after creation).
"""

from __future__ import annotations

from array import array
from collections import Counter
from enum import Enum

from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError


class OperationKind(str, Enum):
    """Discriminator for the scheduled operation records."""

    GATE_1Q = "gate_1q"
    GATE_2Q = "gate_2q"
    SWAP = "swap"
    SHUTTLE = "shuttle"
    SPACE_SHIFT = "space_shift"


#: Stable one-byte codes for the operation kinds.  They order the
#: columnar slab sections and appear verbatim in the binary schedule
#: encoding (:mod:`repro.schedule.serialize`), so they must never be
#: renumbered — append new kinds at the end instead.
KIND_CODE_GATE_1Q = 0
KIND_CODE_GATE_2Q = 1
KIND_CODE_SWAP = 2
KIND_CODE_SHUTTLE = 3
KIND_CODE_SPACE_SHIFT = 4

KIND_BY_CODE: "tuple[OperationKind, ...]" = (
    OperationKind.GATE_1Q,
    OperationKind.GATE_2Q,
    OperationKind.SWAP,
    OperationKind.SHUTTLE,
    OperationKind.SPACE_SHIFT,
)

CODE_BY_KIND: "dict[OperationKind, int]" = {
    kind: code for code, kind in enumerate(KIND_BY_CODE)
}


class ScheduledOperation:
    """Base record; concrete kinds are the subclasses below."""

    __slots__ = ("kind",)

    kind: OperationKind

    def _fields(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._fields()))

    def __repr__(self) -> str:
        names = [slot for cls in reversed(type(self).__mro__) for slot in getattr(cls, "__slots__", ()) if slot != "kind"]
        inner = ", ".join(f"{name}={getattr(self, name)!r}" for name in names)
        return f"{type(self).__name__}({inner})"


class GateOperation(ScheduledOperation):
    """A program gate executed inside one trap.

    Attributes
    ----------
    gate:
        The original program gate.
    trap:
        Trap the gate executes in.
    chain_length:
        Number of ions in that trap at execution time (FM-gate input).
    ion_separation:
        Number of ions between the two operands (0 for adjacent ions,
        irrelevant for single-qubit gates).
    """

    __slots__ = ("gate", "trap", "chain_length", "ion_separation")

    def __init__(self, gate: Gate, trap: int, chain_length: int, ion_separation: int = 0) -> None:
        if chain_length < 1:
            raise SchedulingError("a gate needs at least one ion in the trap")
        if ion_separation < 0:
            raise SchedulingError("ion separation cannot be negative")
        self.kind = OperationKind.GATE_2Q if gate.is_two_qubit else OperationKind.GATE_1Q
        self.gate = gate
        self.trap = trap
        self.chain_length = chain_length
        self.ion_separation = ion_separation

    @classmethod
    def unchecked(
        cls, kind: OperationKind, gate: Gate, trap: int, chain_length: int, ion_separation: int
    ) -> "GateOperation":
        """Construct without field validation (scheduler hot-path emitter).

        The caller asserts the invariants ``__init__`` would check and
        passes the operation kind directly — the scheduler knows
        statically whether it is emitting a 1q or a 2q gate.
        """
        self = object.__new__(cls)
        self.kind = kind
        self.gate = gate
        self.trap = trap
        self.chain_length = chain_length
        self.ion_separation = ion_separation
        return self

    def _fields(self) -> tuple:
        return (self.gate, self.trap, self.chain_length, self.ion_separation)


class SwapOperation(ScheduledOperation):
    """An inserted SWAP gate between two ions in the same trap."""

    __slots__ = ("trap", "qubit_a", "qubit_b", "chain_length", "ion_separation")

    def __init__(
        self, trap: int, qubit_a: int, qubit_b: int, chain_length: int, ion_separation: int = 0
    ) -> None:
        if qubit_a == qubit_b:
            raise SchedulingError("a SWAP needs two distinct qubits")
        if chain_length < 2:
            raise SchedulingError("a SWAP needs at least two ions in the trap")
        if ion_separation < 0:
            raise SchedulingError("ion separation cannot be negative")
        self.kind = OperationKind.SWAP
        self.trap = trap
        self.qubit_a = qubit_a
        self.qubit_b = qubit_b
        self.chain_length = chain_length
        self.ion_separation = ion_separation

    @classmethod
    def unchecked(
        cls, trap: int, qubit_a: int, qubit_b: int, chain_length: int, ion_separation: int
    ) -> "SwapOperation":
        """Construct without field validation (trusted bulk producers)."""
        self = object.__new__(cls)
        self.kind = OperationKind.SWAP
        self.trap = trap
        self.qubit_a = qubit_a
        self.qubit_b = qubit_b
        self.chain_length = chain_length
        self.ion_separation = ion_separation
        return self

    def _fields(self) -> tuple:
        return (self.trap, self.qubit_a, self.qubit_b, self.chain_length, self.ion_separation)


class ShuttleOperation(ScheduledOperation):
    """A split / move / merge transfer of one ion between two traps.

    Attributes
    ----------
    qubit:
        The program qubit being moved.
    source_trap, target_trap:
        Endpoints of the transfer.
    segments:
        Straight electrode segments traversed (Table-1 "move" count).
    junctions:
        Junctions crossed along the way.
    source_chain_length:
        Ions in the source trap *before* the split.
    target_chain_length:
        Ions in the target trap *after* the merge.
    """

    __slots__ = (
        "qubit",
        "source_trap",
        "target_trap",
        "segments",
        "junctions",
        "source_chain_length",
        "target_chain_length",
    )

    def __init__(
        self,
        qubit: int,
        source_trap: int,
        target_trap: int,
        segments: int,
        junctions: int,
        source_chain_length: int,
        target_chain_length: int,
    ) -> None:
        if source_trap == target_trap:
            raise SchedulingError("a shuttle must change traps")
        if segments < 1:
            raise SchedulingError("a shuttle traverses at least one segment")
        if junctions < 0:
            raise SchedulingError("junction count cannot be negative")
        if source_chain_length < 1 or target_chain_length < 1:
            raise SchedulingError("chain lengths must be at least 1")
        self.kind = OperationKind.SHUTTLE
        self.qubit = qubit
        self.source_trap = source_trap
        self.target_trap = target_trap
        self.segments = segments
        self.junctions = junctions
        self.source_chain_length = source_chain_length
        self.target_chain_length = target_chain_length

    @classmethod
    def unchecked(
        cls,
        qubit: int,
        source_trap: int,
        target_trap: int,
        segments: int,
        junctions: int,
        source_chain_length: int,
        target_chain_length: int,
    ) -> "ShuttleOperation":
        """Construct without field validation (trusted bulk producers)."""
        self = object.__new__(cls)
        self.kind = OperationKind.SHUTTLE
        self.qubit = qubit
        self.source_trap = source_trap
        self.target_trap = target_trap
        self.segments = segments
        self.junctions = junctions
        self.source_chain_length = source_chain_length
        self.target_chain_length = target_chain_length
        return self

    def _fields(self) -> tuple:
        return (
            self.qubit,
            self.source_trap,
            self.target_trap,
            self.segments,
            self.junctions,
            self.source_chain_length,
            self.target_chain_length,
        )


class SpaceShiftOperation(ScheduledOperation):
    """Intra-trap reordering of one ion into an adjacent empty slot.

    This is a physical move of the ion within its own trap (no SWAP gate
    and no split/merge), used to bring an ion to the trap edge or to
    clear the receiving slot for an incoming ion.
    """

    __slots__ = ("trap", "qubit", "from_position", "to_position")

    def __init__(self, trap: int, qubit: int, from_position: int, to_position: int) -> None:
        if from_position == to_position:
            raise SchedulingError("a space shift must change the ion's position")
        if from_position < 0 or to_position < 0:
            raise SchedulingError("positions cannot be negative")
        self.kind = OperationKind.SPACE_SHIFT
        self.trap = trap
        self.qubit = qubit
        self.from_position = from_position
        self.to_position = to_position

    @classmethod
    def unchecked(
        cls, trap: int, qubit: int, from_position: int, to_position: int
    ) -> "SpaceShiftOperation":
        """Construct without field validation (trusted bulk producers)."""
        self = object.__new__(cls)
        self.kind = OperationKind.SPACE_SHIFT
        self.trap = trap
        self.qubit = qubit
        self.from_position = from_position
        self.to_position = to_position
        return self

    def _fields(self) -> tuple:
        return (self.trap, self.qubit, self.from_position, self.to_position)

    @property
    def distance(self) -> int:
        """Number of slots the ion moves by."""
        return abs(self.to_position - self.from_position)


class OperationSlab:
    """Columnar storage for an operation log: one array per field.

    The slab is the single-pass materialisation target of the flat
    scheduler backend and the direct input/output of the binary schedule
    codec: the winning-candidate path appends plain integers into these
    arrays, and the encoder serialises the arrays wholesale — no
    per-operation record objects exist on that path at all.  ``kinds``
    holds one :data:`KIND_CODE_* <KIND_CODE_GATE_1Q>` byte per operation
    in schedule order; each kind's fields live in dedicated typed arrays
    appended in the same order, so walking ``kinds`` with per-kind
    cursors reconstructs the interleaved log exactly.

    :meth:`materialize` builds the classic :class:`ScheduledOperation`
    objects on demand (through the validation-free constructors — slab
    producers assert the invariants), which is what keeps slab-backed
    and object-backed schedules field-for-field identical.
    """

    __slots__ = (
        "kinds",
        "gates",
        "gate_traps",
        "gate_chain_lengths",
        "gate_ion_separations",
        "swap_traps",
        "swap_qubits_a",
        "swap_qubits_b",
        "swap_chain_lengths",
        "swap_ion_separations",
        "shuttle_qubits",
        "shuttle_source_traps",
        "shuttle_target_traps",
        "shuttle_segments",
        "shuttle_junctions",
        "shuttle_source_chain_lengths",
        "shuttle_target_chain_lengths",
        "shift_traps",
        "shift_qubits",
        "shift_from_positions",
        "shift_to_positions",
    )

    def __init__(self) -> None:
        self.kinds = bytearray()
        self.gates: list[Gate] = []
        self.gate_traps = array("i")
        self.gate_chain_lengths = array("i")
        self.gate_ion_separations = array("i")
        self.swap_traps = array("i")
        self.swap_qubits_a = array("i")
        self.swap_qubits_b = array("i")
        self.swap_chain_lengths = array("i")
        self.swap_ion_separations = array("i")
        self.shuttle_qubits = array("i")
        self.shuttle_source_traps = array("i")
        self.shuttle_target_traps = array("i")
        self.shuttle_segments = array("i")
        self.shuttle_junctions = array("i")
        self.shuttle_source_chain_lengths = array("i")
        self.shuttle_target_chain_lengths = array("i")
        self.shift_traps = array("i")
        self.shift_qubits = array("i")
        self.shift_from_positions = array("i")
        self.shift_to_positions = array("i")

    def __len__(self) -> int:
        return len(self.kinds)

    # ------------------------------------------------------------------
    # typed appends (the scheduler hot path)
    # ------------------------------------------------------------------
    def append_gate(
        self, code: int, gate: Gate, trap: int, chain_length: int, ion_separation: int
    ) -> None:
        """Append a program gate (``code`` is GATE_1Q or GATE_2Q)."""
        self.kinds.append(code)
        self.gates.append(gate)
        self.gate_traps.append(trap)
        self.gate_chain_lengths.append(chain_length)
        self.gate_ion_separations.append(ion_separation)

    def append_swap(
        self, trap: int, qubit_a: int, qubit_b: int, chain_length: int, ion_separation: int
    ) -> None:
        self.kinds.append(KIND_CODE_SWAP)
        self.swap_traps.append(trap)
        self.swap_qubits_a.append(qubit_a)
        self.swap_qubits_b.append(qubit_b)
        self.swap_chain_lengths.append(chain_length)
        self.swap_ion_separations.append(ion_separation)

    def append_shuttle(
        self,
        qubit: int,
        source_trap: int,
        target_trap: int,
        segments: int,
        junctions: int,
        source_chain_length: int,
        target_chain_length: int,
    ) -> None:
        self.kinds.append(KIND_CODE_SHUTTLE)
        self.shuttle_qubits.append(qubit)
        self.shuttle_source_traps.append(source_trap)
        self.shuttle_target_traps.append(target_trap)
        self.shuttle_segments.append(segments)
        self.shuttle_junctions.append(junctions)
        self.shuttle_source_chain_lengths.append(source_chain_length)
        self.shuttle_target_chain_lengths.append(target_chain_length)

    def append_space_shift(
        self, trap: int, qubit: int, from_position: int, to_position: int
    ) -> None:
        self.kinds.append(KIND_CODE_SPACE_SHIFT)
        self.shift_traps.append(trap)
        self.shift_qubits.append(qubit)
        self.shift_from_positions.append(from_position)
        self.shift_to_positions.append(to_position)

    # ------------------------------------------------------------------
    # record-object interoperability
    # ------------------------------------------------------------------
    def append_operation(self, operation: ScheduledOperation) -> None:
        """Decompose one record object into the columns (cold path)."""
        if isinstance(operation, GateOperation):
            code = (
                KIND_CODE_GATE_2Q
                if operation.kind is OperationKind.GATE_2Q
                else KIND_CODE_GATE_1Q
            )
            self.append_gate(
                code,
                operation.gate,
                operation.trap,
                operation.chain_length,
                operation.ion_separation,
            )
        elif isinstance(operation, SwapOperation):
            self.append_swap(
                operation.trap,
                operation.qubit_a,
                operation.qubit_b,
                operation.chain_length,
                operation.ion_separation,
            )
        elif isinstance(operation, ShuttleOperation):
            self.append_shuttle(
                operation.qubit,
                operation.source_trap,
                operation.target_trap,
                operation.segments,
                operation.junctions,
                operation.source_chain_length,
                operation.target_chain_length,
            )
        elif isinstance(operation, SpaceShiftOperation):
            self.append_space_shift(
                operation.trap,
                operation.qubit,
                operation.from_position,
                operation.to_position,
            )
        else:
            raise SchedulingError(
                f"cannot store operation type {type(operation).__name__} in a slab"
            )

    @classmethod
    def from_operations(cls, operations: "list[ScheduledOperation] | tuple") -> "OperationSlab":
        """Columnarise an existing operation log."""
        slab = cls()
        for operation in operations:
            slab.append_operation(operation)
        return slab

    def materialize(self) -> "list[ScheduledOperation]":
        """Rebuild the interleaved record-object log from the columns."""
        ops: "list[ScheduledOperation]" = []
        append = ops.append
        gi = si = hi = pi = 0
        kind_1q = OperationKind.GATE_1Q
        kind_2q = OperationKind.GATE_2Q
        gate_op = GateOperation.unchecked
        swap_op = SwapOperation.unchecked
        shuttle_op = ShuttleOperation.unchecked
        shift_op = SpaceShiftOperation.unchecked
        for code in self.kinds:
            if code <= KIND_CODE_GATE_2Q:
                append(
                    gate_op(
                        kind_2q if code == KIND_CODE_GATE_2Q else kind_1q,
                        self.gates[gi],
                        self.gate_traps[gi],
                        self.gate_chain_lengths[gi],
                        self.gate_ion_separations[gi],
                    )
                )
                gi += 1
            elif code == KIND_CODE_SWAP:
                append(
                    swap_op(
                        self.swap_traps[si],
                        self.swap_qubits_a[si],
                        self.swap_qubits_b[si],
                        self.swap_chain_lengths[si],
                        self.swap_ion_separations[si],
                    )
                )
                si += 1
            elif code == KIND_CODE_SHUTTLE:
                append(
                    shuttle_op(
                        self.shuttle_qubits[hi],
                        self.shuttle_source_traps[hi],
                        self.shuttle_target_traps[hi],
                        self.shuttle_segments[hi],
                        self.shuttle_junctions[hi],
                        self.shuttle_source_chain_lengths[hi],
                        self.shuttle_target_chain_lengths[hi],
                    )
                )
                hi += 1
            else:
                append(
                    shift_op(
                        self.shift_traps[pi],
                        self.shift_qubits[pi],
                        self.shift_from_positions[pi],
                        self.shift_to_positions[pi],
                    )
                )
                pi += 1
        return ops

    # ------------------------------------------------------------------
    # summary counters without materialisation
    # ------------------------------------------------------------------
    def counts(self) -> "Counter[OperationKind]":
        """Per-kind operation counts straight off the kinds column."""
        counts: "Counter[OperationKind]" = Counter()
        kinds = self.kinds
        for code, kind in enumerate(KIND_BY_CODE):
            n = kinds.count(code)
            if n:
                counts[kind] = n
        return counts

    def junction_total(self) -> int:
        """Total junctions crossed by all shuttles."""
        return sum(self.shuttle_junctions)

    def segment_total(self) -> int:
        """Total straight segments traversed by all shuttles."""
        return sum(self.shuttle_segments)
