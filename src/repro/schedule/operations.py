"""Scheduled operation records — the compiler's output vocabulary.

A compiled program is a time-ordered list of these records.  Each record
captures the *context* the noise model needs (trap occupancy, ion
separation, path length) at the moment the operation fires, so the
schedule can be re-evaluated under different gate implementations or
heating parameters without recompiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError


class OperationKind(str, Enum):
    """Discriminator for the scheduled operation records."""

    GATE_1Q = "gate_1q"
    GATE_2Q = "gate_2q"
    SWAP = "swap"
    SHUTTLE = "shuttle"
    SPACE_SHIFT = "space_shift"


@dataclass(frozen=True)
class ScheduledOperation:
    """Base record; concrete kinds are the subclasses below."""

    kind: OperationKind = field(init=False)


@dataclass(frozen=True)
class GateOperation(ScheduledOperation):
    """A program gate executed inside one trap.

    Attributes
    ----------
    gate:
        The original program gate.
    trap:
        Trap the gate executes in.
    chain_length:
        Number of ions in that trap at execution time (FM-gate input).
    ion_separation:
        Number of ions between the two operands (0 for adjacent ions,
        irrelevant for single-qubit gates).
    """

    gate: Gate
    trap: int
    chain_length: int
    ion_separation: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kind", OperationKind.GATE_2Q if self.gate.is_two_qubit else OperationKind.GATE_1Q
        )
        if self.chain_length < 1:
            raise SchedulingError("a gate needs at least one ion in the trap")
        if self.ion_separation < 0:
            raise SchedulingError("ion separation cannot be negative")


@dataclass(frozen=True)
class SwapOperation(ScheduledOperation):
    """An inserted SWAP gate between two ions in the same trap."""

    trap: int
    qubit_a: int
    qubit_b: int
    chain_length: int
    ion_separation: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", OperationKind.SWAP)
        if self.qubit_a == self.qubit_b:
            raise SchedulingError("a SWAP needs two distinct qubits")
        if self.chain_length < 2:
            raise SchedulingError("a SWAP needs at least two ions in the trap")
        if self.ion_separation < 0:
            raise SchedulingError("ion separation cannot be negative")


@dataclass(frozen=True)
class ShuttleOperation(ScheduledOperation):
    """A split / move / merge transfer of one ion between two traps.

    Attributes
    ----------
    qubit:
        The program qubit being moved.
    source_trap, target_trap:
        Endpoints of the transfer.
    segments:
        Straight electrode segments traversed (Table-1 "move" count).
    junctions:
        Junctions crossed along the way.
    source_chain_length:
        Ions in the source trap *before* the split.
    target_chain_length:
        Ions in the target trap *after* the merge.
    """

    qubit: int
    source_trap: int
    target_trap: int
    segments: int
    junctions: int
    source_chain_length: int
    target_chain_length: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", OperationKind.SHUTTLE)
        if self.source_trap == self.target_trap:
            raise SchedulingError("a shuttle must change traps")
        if self.segments < 1:
            raise SchedulingError("a shuttle traverses at least one segment")
        if self.junctions < 0:
            raise SchedulingError("junction count cannot be negative")
        if self.source_chain_length < 1 or self.target_chain_length < 1:
            raise SchedulingError("chain lengths must be at least 1")


@dataclass(frozen=True)
class SpaceShiftOperation(ScheduledOperation):
    """Intra-trap reordering of one ion into an adjacent empty slot.

    This is a physical move of the ion within its own trap (no SWAP gate
    and no split/merge), used to bring an ion to the trap edge or to
    clear the receiving slot for an incoming ion.
    """

    trap: int
    qubit: int
    from_position: int
    to_position: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", OperationKind.SPACE_SHIFT)
        if self.from_position == self.to_position:
            raise SchedulingError("a space shift must change the ion's position")
        if self.from_position < 0 or self.to_position < 0:
            raise SchedulingError("positions cannot be negative")

    @property
    def distance(self) -> int:
        """Number of slots the ion moves by."""
        return abs(self.to_position - self.from_position)
