"""Scheduled operation records — the compiler's output vocabulary.

A compiled program is a time-ordered list of these records.  Each record
captures the *context* the noise model needs (trap occupancy, ion
separation, path length) at the moment the operation fires, so the
schedule can be re-evaluated under different gate implementations or
heating parameters without recompiling.

The records are plain ``__slots__`` classes with hand-written
constructors rather than frozen dataclasses: the scheduler creates one
per emitted operation (thousands per compile), and the dataclass
machinery dominated the emission path.  They keep value semantics —
field-wise ``__eq__``/``__hash__`` and a dataclass-style ``repr`` — and
are immutable by convention (never mutate a record after creation).
"""

from __future__ import annotations

from enum import Enum

from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError


class OperationKind(str, Enum):
    """Discriminator for the scheduled operation records."""

    GATE_1Q = "gate_1q"
    GATE_2Q = "gate_2q"
    SWAP = "swap"
    SHUTTLE = "shuttle"
    SPACE_SHIFT = "space_shift"


class ScheduledOperation:
    """Base record; concrete kinds are the subclasses below."""

    __slots__ = ("kind",)

    kind: OperationKind

    def _fields(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._fields()))

    def __repr__(self) -> str:
        names = [slot for cls in reversed(type(self).__mro__) for slot in getattr(cls, "__slots__", ()) if slot != "kind"]
        inner = ", ".join(f"{name}={getattr(self, name)!r}" for name in names)
        return f"{type(self).__name__}({inner})"


class GateOperation(ScheduledOperation):
    """A program gate executed inside one trap.

    Attributes
    ----------
    gate:
        The original program gate.
    trap:
        Trap the gate executes in.
    chain_length:
        Number of ions in that trap at execution time (FM-gate input).
    ion_separation:
        Number of ions between the two operands (0 for adjacent ions,
        irrelevant for single-qubit gates).
    """

    __slots__ = ("gate", "trap", "chain_length", "ion_separation")

    def __init__(self, gate: Gate, trap: int, chain_length: int, ion_separation: int = 0) -> None:
        if chain_length < 1:
            raise SchedulingError("a gate needs at least one ion in the trap")
        if ion_separation < 0:
            raise SchedulingError("ion separation cannot be negative")
        self.kind = OperationKind.GATE_2Q if gate.is_two_qubit else OperationKind.GATE_1Q
        self.gate = gate
        self.trap = trap
        self.chain_length = chain_length
        self.ion_separation = ion_separation

    @classmethod
    def unchecked(
        cls, kind: OperationKind, gate: Gate, trap: int, chain_length: int, ion_separation: int
    ) -> "GateOperation":
        """Construct without field validation (scheduler hot-path emitter).

        The caller asserts the invariants ``__init__`` would check and
        passes the operation kind directly — the scheduler knows
        statically whether it is emitting a 1q or a 2q gate.
        """
        self = object.__new__(cls)
        self.kind = kind
        self.gate = gate
        self.trap = trap
        self.chain_length = chain_length
        self.ion_separation = ion_separation
        return self

    def _fields(self) -> tuple:
        return (self.gate, self.trap, self.chain_length, self.ion_separation)


class SwapOperation(ScheduledOperation):
    """An inserted SWAP gate between two ions in the same trap."""

    __slots__ = ("trap", "qubit_a", "qubit_b", "chain_length", "ion_separation")

    def __init__(
        self, trap: int, qubit_a: int, qubit_b: int, chain_length: int, ion_separation: int = 0
    ) -> None:
        if qubit_a == qubit_b:
            raise SchedulingError("a SWAP needs two distinct qubits")
        if chain_length < 2:
            raise SchedulingError("a SWAP needs at least two ions in the trap")
        if ion_separation < 0:
            raise SchedulingError("ion separation cannot be negative")
        self.kind = OperationKind.SWAP
        self.trap = trap
        self.qubit_a = qubit_a
        self.qubit_b = qubit_b
        self.chain_length = chain_length
        self.ion_separation = ion_separation

    def _fields(self) -> tuple:
        return (self.trap, self.qubit_a, self.qubit_b, self.chain_length, self.ion_separation)


class ShuttleOperation(ScheduledOperation):
    """A split / move / merge transfer of one ion between two traps.

    Attributes
    ----------
    qubit:
        The program qubit being moved.
    source_trap, target_trap:
        Endpoints of the transfer.
    segments:
        Straight electrode segments traversed (Table-1 "move" count).
    junctions:
        Junctions crossed along the way.
    source_chain_length:
        Ions in the source trap *before* the split.
    target_chain_length:
        Ions in the target trap *after* the merge.
    """

    __slots__ = (
        "qubit",
        "source_trap",
        "target_trap",
        "segments",
        "junctions",
        "source_chain_length",
        "target_chain_length",
    )

    def __init__(
        self,
        qubit: int,
        source_trap: int,
        target_trap: int,
        segments: int,
        junctions: int,
        source_chain_length: int,
        target_chain_length: int,
    ) -> None:
        if source_trap == target_trap:
            raise SchedulingError("a shuttle must change traps")
        if segments < 1:
            raise SchedulingError("a shuttle traverses at least one segment")
        if junctions < 0:
            raise SchedulingError("junction count cannot be negative")
        if source_chain_length < 1 or target_chain_length < 1:
            raise SchedulingError("chain lengths must be at least 1")
        self.kind = OperationKind.SHUTTLE
        self.qubit = qubit
        self.source_trap = source_trap
        self.target_trap = target_trap
        self.segments = segments
        self.junctions = junctions
        self.source_chain_length = source_chain_length
        self.target_chain_length = target_chain_length

    def _fields(self) -> tuple:
        return (
            self.qubit,
            self.source_trap,
            self.target_trap,
            self.segments,
            self.junctions,
            self.source_chain_length,
            self.target_chain_length,
        )


class SpaceShiftOperation(ScheduledOperation):
    """Intra-trap reordering of one ion into an adjacent empty slot.

    This is a physical move of the ion within its own trap (no SWAP gate
    and no split/merge), used to bring an ion to the trap edge or to
    clear the receiving slot for an incoming ion.
    """

    __slots__ = ("trap", "qubit", "from_position", "to_position")

    def __init__(self, trap: int, qubit: int, from_position: int, to_position: int) -> None:
        if from_position == to_position:
            raise SchedulingError("a space shift must change the ion's position")
        if from_position < 0 or to_position < 0:
            raise SchedulingError("positions cannot be negative")
        self.kind = OperationKind.SPACE_SHIFT
        self.trap = trap
        self.qubit = qubit
        self.from_position = from_position
        self.to_position = to_position

    def _fields(self) -> tuple:
        return (self.trap, self.qubit, self.from_position, self.to_position)

    @property
    def distance(self) -> int:
        """Number of slots the ion moves by."""
        return abs(self.to_position - self.from_position)
