"""The compiled schedule: an ordered operation log plus summary counters.

A :class:`Schedule` is what every compiler in this library (S-SYNC and the
baselines) produces and what the noise evaluator, the metrics extraction
and the optimality analysis consume.  It is append-only during
compilation and immutable in spirit afterwards.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    OperationSlab,
    ScheduledOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)


class Schedule:
    """Ordered log of scheduled operations for one compiled circuit.

    The log has two storage modes.  The classic mode keeps a list of
    :class:`ScheduledOperation` records.  **Slab mode** (entered through
    :meth:`use_slab` or :meth:`from_slab`) keeps an
    :class:`~repro.schedule.operations.OperationSlab` of columnar arrays
    instead — the flat scheduler backend appends plain integers into the
    slab and the binary codec serialises it wholesale, so no per-op
    record objects exist until somebody iterates the schedule.  Record
    objects are then materialised lazily and cached; the two modes are
    observationally identical.
    """

    __slots__ = ("device", "circuit_name", "_operations", "_cached_counts", "_slab")

    def __init__(self, device: QCCDDevice, circuit_name: str = "circuit") -> None:
        self.device = device
        self.circuit_name = circuit_name
        self._operations: list[ScheduledOperation] = []
        self._cached_counts: "Counter[OperationKind] | None" = None
        self._slab: OperationSlab | None = None

    # ------------------------------------------------------------------
    # slab mode
    # ------------------------------------------------------------------
    def use_slab(self) -> OperationSlab:
        """Switch an empty schedule to columnar storage; returns the slab.

        The flat scheduler backend calls this once per compile and then
        appends scalars straight into the returned slab.
        """
        if self._slab is None:
            if self._operations:
                raise SchedulingError("cannot attach a slab to a non-empty schedule")
            self._slab = OperationSlab()
        return self._slab

    @classmethod
    def from_slab(
        cls, device: QCCDDevice, circuit_name: str, slab: OperationSlab
    ) -> "Schedule":
        """Wrap an existing slab (the binary decoder's constructor)."""
        schedule = cls(device, circuit_name)
        schedule._slab = slab
        return schedule

    @property
    def slab(self) -> OperationSlab | None:
        """The columnar backing store, or ``None`` in classic mode."""
        return self._slab

    def to_slab(self) -> OperationSlab:
        """This schedule's columns — built on the fly in classic mode."""
        if self._slab is not None:
            return self._slab
        return OperationSlab.from_operations(self._operations)

    def _materialized(self) -> list[ScheduledOperation]:
        """The record-object log (lazily rebuilt from the slab)."""
        slab = self._slab
        if slab is None:
            return self._operations
        ops = self._operations
        if len(ops) != len(slab):
            ops = slab.materialize()
            self._operations = ops
        return ops

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, operation: ScheduledOperation) -> None:
        """Append one operation to the log."""
        if not isinstance(operation, ScheduledOperation):
            raise SchedulingError(f"expected a ScheduledOperation, got {type(operation).__name__}")
        if self._slab is not None:
            self._slab.append_operation(operation)
        else:
            self._operations.append(operation)
        self._cached_counts = None

    @property
    def _counts(self) -> "Counter[OperationKind]":
        """Per-kind operation counts, recounted lazily after appends.

        The compiler reads the counters once per compile but appends
        thousands of operations, so the count is not maintained per
        append.  Slab mode recounts from the kinds column on every read
        (a C-speed byte count, and immune to appends that bypass this
        object by writing into the slab directly).
        """
        if self._slab is not None:
            return self._slab.counts()
        counts = self._cached_counts
        if counts is None:
            counts = Counter(op.kind for op in self._operations)
            self._cached_counts = counts
        return counts

    def extend(self, operations: Iterator[ScheduledOperation] | list[ScheduledOperation]) -> None:
        """Append several operations in order."""
        for operation in operations:
            self.append(operation)

    def appender(self):
        """A bound fast-append for trusted bulk producers (the scheduler).

        Skips the per-call type check and count invalidation — the
        caller promises to append only :class:`ScheduledOperation`
        instances.  Counts are invalidated once here, which stays
        correct for every later append through the returned bound
        method.  In slab mode the returned callable decomposes each
        record into the columns instead.
        """
        self._cached_counts = None
        if self._slab is not None:
            return self._slab.append_operation
        return self._operations.append

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def operations(self) -> tuple[ScheduledOperation, ...]:
        """The full operation log in execution order."""
        return tuple(self._materialized())

    def __len__(self) -> int:
        if self._slab is not None:
            return len(self._slab)
        return len(self._operations)

    def __iter__(self) -> Iterator[ScheduledOperation]:
        return iter(self._materialized())

    def __getitem__(self, index: int) -> ScheduledOperation:
        return self._materialized()[index]

    def operations_of_kind(self, kind: OperationKind) -> list[ScheduledOperation]:
        """All operations of one kind, in order."""
        return [op for op in self._materialized() if op.kind == kind]

    # ------------------------------------------------------------------
    # summary counters (the paper's primary metrics)
    # ------------------------------------------------------------------
    @property
    def shuttle_count(self) -> int:
        """Number of inter-trap shuttles (the Fig. 8 metric)."""
        return self._counts[OperationKind.SHUTTLE]

    @property
    def swap_count(self) -> int:
        """Number of inserted SWAP gates (the Fig. 9 metric)."""
        return self._counts[OperationKind.SWAP]

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of program two-qubit gates executed."""
        return self._counts[OperationKind.GATE_2Q]

    @property
    def single_qubit_gate_count(self) -> int:
        """Number of program single-qubit gates executed."""
        return self._counts[OperationKind.GATE_1Q]

    @property
    def space_shift_count(self) -> int:
        """Number of intra-trap ion/space reorderings."""
        return self._counts[OperationKind.SPACE_SHIFT]

    @property
    def junction_crossings(self) -> int:
        """Total junctions crossed by all shuttles."""
        if self._slab is not None:
            return self._slab.junction_total()
        return sum(
            op.junctions for op in self._operations if isinstance(op, ShuttleOperation)
        )

    @property
    def shuttle_segments(self) -> int:
        """Total straight segments traversed by all shuttles."""
        if self._slab is not None:
            return self._slab.segment_total()
        return sum(
            op.segments for op in self._operations if isinstance(op, ShuttleOperation)
        )

    def count_summary(self) -> dict[str, int]:
        """All counters as a plain dictionary (for reporting)."""
        return {
            "two_qubit_gates": self.two_qubit_gate_count,
            "single_qubit_gates": self.single_qubit_gate_count,
            "swaps": self.swap_count,
            "shuttles": self.shuttle_count,
            "space_shifts": self.space_shift_count,
            "junction_crossings": self.junction_crossings,
            "shuttle_segments": self.shuttle_segments,
        }

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def executed_two_qubit_gates(self) -> list[GateOperation]:
        """The program two-qubit gates in execution order."""
        return [
            op
            for op in self._materialized()
            if isinstance(op, GateOperation) and op.kind == OperationKind.GATE_2Q
        ]

    def validate_against(self, expected_two_qubit_gates: int) -> None:
        """Check that every program two-qubit gate was scheduled exactly once."""
        actual = self.two_qubit_gate_count
        if actual != expected_two_qubit_gates:
            raise SchedulingError(
                f"schedule executes {actual} two-qubit gates but the circuit has "
                f"{expected_two_qubit_gates}"
            )

    def __repr__(self) -> str:
        return (
            f"Schedule(circuit={self.circuit_name!r}, device={self.device.name!r}, "
            f"gates2q={self.two_qubit_gate_count}, swaps={self.swap_count}, "
            f"shuttles={self.shuttle_count})"
        )


__all__ = [
    "GateOperation",
    "OperationKind",
    "OperationSlab",
    "Schedule",
    "ScheduledOperation",
    "ShuttleOperation",
    "SpaceShiftOperation",
    "SwapOperation",
]
