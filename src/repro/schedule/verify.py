"""Schedule verification: replay an operation log and check physical legality.

A compiled schedule is only trustworthy if every operation it contains
could actually be performed on the device: SWAPs act on two ions in the
same trap, shuttles depart from a chain end towards a connected trap with
room, and every program two-qubit gate fires with its operands
co-located.  :func:`verify_schedule` replays the log against a fresh copy
of the initial occupancy and raises :class:`ScheduleVerificationError`
on the first violation; it also cross-checks the chain-length and
ion-separation context recorded in each operation (which the noise model
trusts) against the replayed state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.core.state import DeviceState
from repro.exceptions import ReproError, StateError
from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule


class ScheduleVerificationError(ReproError):
    """Raised when a schedule contains a physically impossible operation."""


@dataclass(frozen=True)
class VerificationReport:
    """Summary of a successful verification."""

    operations_checked: int
    two_qubit_gates: int
    swaps: int
    shuttles: int
    final_state: DeviceState


def verify_schedule(
    schedule: Schedule,
    initial_state: DeviceState,
    circuit: QuantumCircuit | None = None,
    check_context: bool = True,
) -> VerificationReport:
    """Replay ``schedule`` from ``initial_state`` and check every operation.

    Parameters
    ----------
    schedule:
        The compiled operation log.
    initial_state:
        The occupancy the schedule starts from (not mutated).
    circuit:
        When given, additionally checks that the schedule executes exactly
        the circuit's two-qubit gates, in a dependency-respecting order
        per qubit pair.
    check_context:
        Also verify the chain-length / ion-separation metadata stored in
        each operation against the replayed state.
    """
    state = initial_state.copy()
    executed_2q = 0
    swaps = 0
    shuttles = 0

    for index, operation in enumerate(schedule):
        try:
            if isinstance(operation, GateOperation):
                _verify_gate(state, operation, check_context)
                if operation.kind == OperationKind.GATE_2Q:
                    executed_2q += 1
            elif isinstance(operation, SwapOperation):
                _verify_swap(state, operation, check_context)
                swaps += 1
            elif isinstance(operation, ShuttleOperation):
                _verify_shuttle(state, operation, check_context)
                shuttles += 1
            elif isinstance(operation, SpaceShiftOperation):
                # Space shifts are always legal intra-trap moves in the
                # chain model; nothing to replay.
                pass
            else:  # pragma: no cover - defensive
                raise ScheduleVerificationError(f"unknown operation type {type(operation).__name__}")
        except StateError as exc:
            raise ScheduleVerificationError(f"operation {index} ({operation.kind}): {exc}") from exc

    if circuit is not None:
        _verify_against_circuit(schedule, circuit)

    return VerificationReport(
        operations_checked=len(schedule),
        two_qubit_gates=executed_2q,
        swaps=swaps,
        shuttles=shuttles,
        final_state=state,
    )


def _verify_gate(state: DeviceState, operation: GateOperation, check_context: bool) -> None:
    gate = operation.gate
    traps = {state.trap_of(q) for q in gate.qubits}
    if len(traps) != 1:
        raise ScheduleVerificationError(
            f"gate {gate} executed with operands spread over traps {sorted(traps)}"
        )
    trap = traps.pop()
    if trap != operation.trap:
        raise ScheduleVerificationError(
            f"gate {gate} recorded in trap {operation.trap} but its operands are in trap {trap}"
        )
    if check_context:
        actual_chain = state.chain_length(trap)
        if actual_chain != operation.chain_length:
            raise ScheduleVerificationError(
                f"gate {gate}: recorded chain length {operation.chain_length} "
                f"but trap {trap} holds {actual_chain} ions"
            )
        if gate.is_two_qubit:
            separation = state.ion_separation(*gate.qubits)
            if separation != operation.ion_separation:
                raise ScheduleVerificationError(
                    f"gate {gate}: recorded ion separation {operation.ion_separation} "
                    f"but the ions are {separation} apart"
                )


def _verify_swap(state: DeviceState, operation: SwapOperation, check_context: bool) -> None:
    trap_a = state.trap_of(operation.qubit_a)
    trap_b = state.trap_of(operation.qubit_b)
    if trap_a != trap_b:
        raise ScheduleVerificationError(
            f"SWAP({operation.qubit_a}, {operation.qubit_b}) spans traps {trap_a} and {trap_b}"
        )
    if trap_a != operation.trap:
        raise ScheduleVerificationError(
            f"SWAP recorded in trap {operation.trap} but the ions are in trap {trap_a}"
        )
    if check_context:
        actual_chain = state.chain_length(trap_a)
        if actual_chain != operation.chain_length:
            raise ScheduleVerificationError(
                f"SWAP({operation.qubit_a}, {operation.qubit_b}): recorded chain length "
                f"{operation.chain_length} but trap {trap_a} holds {actual_chain} ions"
            )
        separation = state.ion_separation(operation.qubit_a, operation.qubit_b)
        if separation != operation.ion_separation:
            raise ScheduleVerificationError(
                f"SWAP({operation.qubit_a}, {operation.qubit_b}): recorded separation "
                f"{operation.ion_separation} but the ions are {separation} apart"
            )
    state.swap_qubits(operation.qubit_a, operation.qubit_b)


def _verify_shuttle(state: DeviceState, operation: ShuttleOperation, check_context: bool) -> None:
    source = state.trap_of(operation.qubit)
    if source != operation.source_trap:
        raise ScheduleVerificationError(
            f"shuttle of qubit {operation.qubit} recorded from trap {operation.source_trap} "
            f"but the ion is in trap {source}"
        )
    if check_context:
        before = state.chain_length(source)
        if before != operation.source_chain_length:
            raise ScheduleVerificationError(
                f"shuttle of qubit {operation.qubit}: recorded source chain length "
                f"{operation.source_chain_length} but trap {source} holds {before} ions"
            )
    state.shuttle(operation.qubit, operation.target_trap)
    if check_context:
        after = state.chain_length(operation.target_trap)
        if after != operation.target_chain_length:
            raise ScheduleVerificationError(
                f"shuttle of qubit {operation.qubit}: recorded target chain length "
                f"{operation.target_chain_length} but trap {operation.target_trap} now holds {after} ions"
            )
    connection = state.device.connection_between(operation.source_trap, operation.target_trap)
    if connection.junctions != operation.junctions or connection.segments != operation.segments:
        raise ScheduleVerificationError(
            f"shuttle of qubit {operation.qubit}: recorded path (segments={operation.segments}, "
            f"junctions={operation.junctions}) does not match the device connection "
            f"(segments={connection.segments}, junctions={connection.junctions})"
        )


def _verify_against_circuit(schedule: Schedule, circuit: QuantumCircuit) -> None:
    """Check the executed two-qubit gates are exactly the circuit's, per-pair in order."""
    expected = [g for g in circuit.gates if g.is_two_qubit]
    executed = [op.gate for op in schedule.executed_two_qubit_gates()]
    if len(expected) != len(executed):
        raise ScheduleVerificationError(
            f"schedule executes {len(executed)} two-qubit gates, circuit has {len(expected)}"
        )
    # Per-qubit subsequences must match: a valid reordering only commutes
    # gates acting on disjoint qubits.
    for qubit in circuit.used_qubits():
        expected_on_q = [g for g in expected if qubit in g.qubits]
        executed_on_q = [g for g in executed if qubit in g.qubits]
        if expected_on_q != executed_on_q:
            raise ScheduleVerificationError(
                f"the gate order on qubit {qubit} differs between the circuit and the schedule"
            )
