"""Schedule representation shared by all compilers and the noise evaluator."""

from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    OperationSlab,
    ScheduledOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule
from repro.schedule.serialize import (
    device_from_dict,
    device_to_dict,
    schedule_from_bytes,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_bytes,
    schedule_to_dict,
    schedule_to_json,
)
from repro.schedule.verify import (
    ScheduleVerificationError,
    VerificationReport,
    verify_schedule,
)

__all__ = [
    "GateOperation",
    "OperationKind",
    "OperationSlab",
    "Schedule",
    "ScheduleVerificationError",
    "ScheduledOperation",
    "ShuttleOperation",
    "SpaceShiftOperation",
    "SwapOperation",
    "VerificationReport",
    "device_from_dict",
    "device_to_dict",
    "schedule_from_bytes",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_bytes",
    "schedule_to_dict",
    "schedule_to_json",
    "verify_schedule",
]
