"""JSON serialisation for compiled schedules.

Compilation can be the expensive step of a workflow, so downstream users
often want to persist a schedule and re-evaluate it later (e.g. under a
different gate implementation, or on another machine).  These helpers
round-trip a :class:`~repro.schedule.Schedule` — together with enough
device metadata to rebuild an identical :class:`QCCDDevice` — through a
plain JSON document.
"""

from __future__ import annotations

import json
from typing import Any

from repro.circuit.gate import Gate
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.trap import Connection, Trap
from repro.schedule.operations import (
    GateOperation,
    OperationKind,
    ScheduledOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule

#: Format marker stored in every document (bump on incompatible changes).
SCHEDULE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# device
# ----------------------------------------------------------------------
def device_to_dict(device: QCCDDevice) -> dict[str, Any]:
    """Serialise a device description to plain data."""
    return {
        "name": device.name,
        "junction_weight": device.junction_weight,
        "traps": [
            {"trap_id": trap.trap_id, "capacity": trap.capacity, "name": trap.name}
            for trap in device.traps
        ],
        "connections": [
            {
                "trap_a": connection.trap_a,
                "trap_b": connection.trap_b,
                "junctions": connection.junctions,
                "segments": connection.segments,
            }
            for connection in device.connections
        ],
    }


def device_from_dict(data: dict[str, Any]) -> QCCDDevice:
    """Rebuild a device from :func:`device_to_dict` output."""
    try:
        traps = [Trap(t["trap_id"], t["capacity"], t.get("name", "")) for t in data["traps"]]
        connections = [
            Connection(c["trap_a"], c["trap_b"], c.get("junctions", 0), c.get("segments", 1))
            for c in data["connections"]
        ]
        return QCCDDevice(
            traps,
            connections,
            name=data.get("name", "qccd"),
            junction_weight=data.get("junction_weight", 1.0),
        )
    except KeyError as exc:
        raise ReproError(f"device document is missing the {exc.args[0]!r} field") from exc


# ----------------------------------------------------------------------
# operations
# ----------------------------------------------------------------------
def _operation_to_dict(operation: ScheduledOperation) -> dict[str, Any]:
    if isinstance(operation, GateOperation):
        return {
            "kind": operation.kind.value,
            "gate": {
                "name": operation.gate.name,
                "qubits": list(operation.gate.qubits),
                "params": list(operation.gate.params),
            },
            "trap": operation.trap,
            "chain_length": operation.chain_length,
            "ion_separation": operation.ion_separation,
        }
    if isinstance(operation, SwapOperation):
        return {
            "kind": operation.kind.value,
            "trap": operation.trap,
            "qubit_a": operation.qubit_a,
            "qubit_b": operation.qubit_b,
            "chain_length": operation.chain_length,
            "ion_separation": operation.ion_separation,
        }
    if isinstance(operation, ShuttleOperation):
        return {
            "kind": operation.kind.value,
            "qubit": operation.qubit,
            "source_trap": operation.source_trap,
            "target_trap": operation.target_trap,
            "segments": operation.segments,
            "junctions": operation.junctions,
            "source_chain_length": operation.source_chain_length,
            "target_chain_length": operation.target_chain_length,
        }
    if isinstance(operation, SpaceShiftOperation):
        return {
            "kind": operation.kind.value,
            "trap": operation.trap,
            "qubit": operation.qubit,
            "from_position": operation.from_position,
            "to_position": operation.to_position,
        }
    raise ReproError(f"cannot serialise operation type {type(operation).__name__}")


def _operation_from_dict(data: dict[str, Any]) -> ScheduledOperation:
    try:
        kind = OperationKind(data["kind"])
    except (KeyError, ValueError) as exc:
        raise ReproError(f"operation document has an invalid kind: {data.get('kind')!r}") from exc
    if kind in (OperationKind.GATE_1Q, OperationKind.GATE_2Q):
        gate_data = data["gate"]
        gate = Gate(gate_data["name"], tuple(gate_data["qubits"]), tuple(gate_data.get("params", ())))
        return GateOperation(
            gate=gate,
            trap=data["trap"],
            chain_length=data["chain_length"],
            ion_separation=data.get("ion_separation", 0),
        )
    if kind is OperationKind.SWAP:
        return SwapOperation(
            trap=data["trap"],
            qubit_a=data["qubit_a"],
            qubit_b=data["qubit_b"],
            chain_length=data["chain_length"],
            ion_separation=data.get("ion_separation", 0),
        )
    if kind is OperationKind.SHUTTLE:
        return ShuttleOperation(
            qubit=data["qubit"],
            source_trap=data["source_trap"],
            target_trap=data["target_trap"],
            segments=data["segments"],
            junctions=data["junctions"],
            source_chain_length=data["source_chain_length"],
            target_chain_length=data["target_chain_length"],
        )
    return SpaceShiftOperation(
        trap=data["trap"],
        qubit=data["qubit"],
        from_position=data["from_position"],
        to_position=data["to_position"],
    )


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialise a schedule (device + operation log) to plain data."""
    return {
        "format_version": SCHEDULE_FORMAT_VERSION,
        "circuit_name": schedule.circuit_name,
        "device": device_to_dict(schedule.device),
        "operations": [_operation_to_dict(op) for op in schedule],
        "summary": schedule.count_summary(),
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    version = data.get("format_version")
    if version != SCHEDULE_FORMAT_VERSION:
        raise ReproError(
            f"unsupported schedule format version {version!r} "
            f"(this library writes version {SCHEDULE_FORMAT_VERSION})"
        )
    device = device_from_dict(data["device"])
    schedule = Schedule(device, data.get("circuit_name", "circuit"))
    for op_data in data.get("operations", []):
        schedule.append(_operation_from_dict(op_data))
    return schedule


def schedule_to_json(schedule: Schedule, indent: int | None = None) -> str:
    """Serialise a schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_json(text: str) -> Schedule:
    """Parse a schedule from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid schedule JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ReproError("a schedule document must be a JSON object")
    return schedule_from_dict(data)
