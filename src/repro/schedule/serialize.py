"""Schedule serialisation: a JSON document format and a binary codec.

Compilation can be the expensive step of a workflow, so downstream users
often want to persist a schedule and re-evaluate it later (e.g. under a
different gate implementation, or on another machine).  These helpers
round-trip a :class:`~repro.schedule.Schedule` — together with enough
device metadata to rebuild an identical :class:`QCCDDevice` — through
either a plain JSON document (:func:`schedule_to_json`, human-readable,
stable since format version 1) or a **columnar binary encoding**
(:func:`schedule_to_bytes`, the schedule cache's on-disk format):

* a 4-byte magic + 1-byte version header;
* the circuit name and the device description (varint-framed strings,
  a float64 junction weight, varint trap/connection fields);
* an interned gate-name string table in first-appearance order;
* one *kind code* byte per operation in schedule order
  (:data:`~repro.schedule.operations.KIND_CODE_GATE_1Q` ...), followed
  by one little-endian ``int32`` column per operation field, grouped by
  kind — the wire image of an
  :class:`~repro.schedule.operations.OperationSlab`;
* varint-framed qubit lists and float64 parameters for the gates.

Decoding reads the columns wholesale into arrays and hands them to
:meth:`Schedule.from_slab`, so no per-operation record objects are built
until somebody iterates the schedule — which is what makes binary disk
hits several times cheaper than re-parsing the JSON document.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Any

from repro.circuit.gate import Gate
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.trap import Connection, Trap
from repro.schedule.operations import (
    KIND_BY_CODE,
    GateOperation,
    OperationKind,
    OperationSlab,
    ScheduledOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule

#: Format marker stored in every document (bump on incompatible changes).
SCHEDULE_FORMAT_VERSION = 1

#: Magic prefix of the binary schedule encoding ("Repro SChedule Binary").
SCHEDULE_MAGIC = b"RSCB"

#: Version byte following the magic (bump on incompatible changes).
SCHEDULE_BINARY_VERSION = 1


# ----------------------------------------------------------------------
# device
# ----------------------------------------------------------------------
def device_to_dict(device: QCCDDevice) -> dict[str, Any]:
    """Serialise a device description to plain data."""
    return {
        "name": device.name,
        "junction_weight": device.junction_weight,
        "traps": [
            {"trap_id": trap.trap_id, "capacity": trap.capacity, "name": trap.name}
            for trap in device.traps
        ],
        "connections": [
            {
                "trap_a": connection.trap_a,
                "trap_b": connection.trap_b,
                "junctions": connection.junctions,
                "segments": connection.segments,
            }
            for connection in device.connections
        ],
    }


def device_from_dict(data: dict[str, Any]) -> QCCDDevice:
    """Rebuild a device from :func:`device_to_dict` output."""
    try:
        traps = [Trap(t["trap_id"], t["capacity"], t.get("name", "")) for t in data["traps"]]
        connections = [
            Connection(c["trap_a"], c["trap_b"], c.get("junctions", 0), c.get("segments", 1))
            for c in data["connections"]
        ]
        return QCCDDevice(
            traps,
            connections,
            name=data.get("name", "qccd"),
            junction_weight=data.get("junction_weight", 1.0),
        )
    except KeyError as exc:
        raise ReproError(f"device document is missing the {exc.args[0]!r} field") from exc


# ----------------------------------------------------------------------
# operations
# ----------------------------------------------------------------------
def _operation_to_dict(operation: ScheduledOperation) -> dict[str, Any]:
    if isinstance(operation, GateOperation):
        return {
            "kind": operation.kind.value,
            "gate": {
                "name": operation.gate.name,
                "qubits": list(operation.gate.qubits),
                "params": list(operation.gate.params),
            },
            "trap": operation.trap,
            "chain_length": operation.chain_length,
            "ion_separation": operation.ion_separation,
        }
    if isinstance(operation, SwapOperation):
        return {
            "kind": operation.kind.value,
            "trap": operation.trap,
            "qubit_a": operation.qubit_a,
            "qubit_b": operation.qubit_b,
            "chain_length": operation.chain_length,
            "ion_separation": operation.ion_separation,
        }
    if isinstance(operation, ShuttleOperation):
        return {
            "kind": operation.kind.value,
            "qubit": operation.qubit,
            "source_trap": operation.source_trap,
            "target_trap": operation.target_trap,
            "segments": operation.segments,
            "junctions": operation.junctions,
            "source_chain_length": operation.source_chain_length,
            "target_chain_length": operation.target_chain_length,
        }
    if isinstance(operation, SpaceShiftOperation):
        return {
            "kind": operation.kind.value,
            "trap": operation.trap,
            "qubit": operation.qubit,
            "from_position": operation.from_position,
            "to_position": operation.to_position,
        }
    raise ReproError(f"cannot serialise operation type {type(operation).__name__}")


def _operation_from_dict(data: dict[str, Any]) -> ScheduledOperation:
    try:
        kind = OperationKind(data["kind"])
    except (KeyError, ValueError) as exc:
        raise ReproError(f"operation document has an invalid kind: {data.get('kind')!r}") from exc
    if kind in (OperationKind.GATE_1Q, OperationKind.GATE_2Q):
        gate_data = data["gate"]
        gate = Gate(gate_data["name"], tuple(gate_data["qubits"]), tuple(gate_data.get("params", ())))
        return GateOperation(
            gate=gate,
            trap=data["trap"],
            chain_length=data["chain_length"],
            ion_separation=data.get("ion_separation", 0),
        )
    if kind is OperationKind.SWAP:
        return SwapOperation(
            trap=data["trap"],
            qubit_a=data["qubit_a"],
            qubit_b=data["qubit_b"],
            chain_length=data["chain_length"],
            ion_separation=data.get("ion_separation", 0),
        )
    if kind is OperationKind.SHUTTLE:
        return ShuttleOperation(
            qubit=data["qubit"],
            source_trap=data["source_trap"],
            target_trap=data["target_trap"],
            segments=data["segments"],
            junctions=data["junctions"],
            source_chain_length=data["source_chain_length"],
            target_chain_length=data["target_chain_length"],
        )
    return SpaceShiftOperation(
        trap=data["trap"],
        qubit=data["qubit"],
        from_position=data["from_position"],
        to_position=data["to_position"],
    )


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialise a schedule (device + operation log) to plain data."""
    return {
        "format_version": SCHEDULE_FORMAT_VERSION,
        "circuit_name": schedule.circuit_name,
        "device": device_to_dict(schedule.device),
        "operations": [_operation_to_dict(op) for op in schedule],
        "summary": schedule.count_summary(),
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    version = data.get("format_version")
    if version != SCHEDULE_FORMAT_VERSION:
        raise ReproError(
            f"unsupported schedule format version {version!r} "
            f"(this library writes version {SCHEDULE_FORMAT_VERSION})"
        )
    device = device_from_dict(data["device"])
    schedule = Schedule(device, data.get("circuit_name", "circuit"))
    for op_data in data.get("operations", []):
        schedule.append(_operation_from_dict(op_data))
    return schedule


def schedule_to_json(schedule: Schedule, indent: int | None = None) -> str:
    """Serialise a schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_json(text: str) -> Schedule:
    """Parse a schedule from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid schedule JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ReproError("a schedule document must be a JSON object")
    return schedule_from_dict(data)


# ----------------------------------------------------------------------
# binary codec primitives
# ----------------------------------------------------------------------
def write_varint(out: bytearray, value: int) -> None:
    """Append one unsigned LEB128 varint."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(buf: bytes, pos: int) -> "tuple[int, int]":
    """Read one unsigned LEB128 varint; returns ``(value, new_pos)``."""
    value = 0
    shift = 0
    try:
        while True:
            byte = buf[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if byte < 0x80:
                return value, pos
            shift += 7
    except IndexError:
        raise ReproError("truncated binary schedule document") from None


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    write_varint(out, len(data))
    out += data


def _read_str(buf: bytes, pos: int) -> "tuple[str, int]":
    length, pos = read_varint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise ReproError("truncated binary schedule document")
    return buf[pos:end].decode("utf-8"), end


def _write_ints(out: bytearray, column: "array[int]") -> None:
    """Append one int32 column, always little-endian on the wire."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        column = array("i", column)
        column.byteswap()
    out += column.tobytes()


def _read_ints(buf: bytes, pos: int, count: int) -> "tuple[array, int]":
    end = pos + 4 * count
    if end > len(buf):
        raise ReproError("truncated binary schedule document")
    column = array("i")
    column.frombytes(buf[pos:end])
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        column.byteswap()
    return column, end


def _gate_unchecked(
    name: str, qubits: "tuple[int, ...]", params: "tuple[float, ...]"
) -> Gate:
    """Rebuild a gate without re-running validation (trusted decode path)."""
    gate = object.__new__(Gate)
    set_attr = object.__setattr__
    set_attr(gate, "name", name)
    set_attr(gate, "qubits", qubits)
    set_attr(gate, "params", params)
    n = len(qubits)
    set_attr(gate, "is_single_qubit", n == 1)
    set_attr(gate, "is_two_qubit", n == 2)
    return gate


# ----------------------------------------------------------------------
# binary codec
# ----------------------------------------------------------------------
def schedule_to_bytes(schedule: Schedule) -> bytes:
    """Encode a schedule (device + operation log) to the binary format.

    Slab-backed schedules (the flat backend's output, or anything
    decoded by :func:`schedule_from_bytes`) are encoded straight off
    their columns; classic schedules are columnarised on the fly.  The
    encoding is deterministic: the same schedule always produces the
    same bytes (the gate-name table is interned in first-appearance
    order).
    """
    slab = schedule.to_slab()
    out = bytearray(SCHEDULE_MAGIC)
    out.append(SCHEDULE_BINARY_VERSION)
    _write_str(out, schedule.circuit_name)

    device = schedule.device
    _write_str(out, device.name)
    out += struct.pack("<d", device.junction_weight)
    write_varint(out, len(device.traps))
    for trap in device.traps:
        write_varint(out, trap.trap_id)
        write_varint(out, trap.capacity)
        _write_str(out, trap.name)
    write_varint(out, len(device.connections))
    for connection in device.connections:
        write_varint(out, connection.trap_a)
        write_varint(out, connection.trap_b)
        write_varint(out, connection.junctions)
        write_varint(out, connection.segments)

    # Gate-name table, interned in first-appearance order.
    name_table: "dict[str, int]" = {}
    name_column = array("i")
    for gate in slab.gates:
        index = name_table.setdefault(gate.name, len(name_table))
        name_column.append(index)
    write_varint(out, len(name_table))
    for name in name_table:  # insertion order == index order
        _write_str(out, name)

    write_varint(out, len(slab.kinds))
    out += slab.kinds

    # Gate columns + varint qubit lists + float64 params.
    _write_ints(out, name_column)
    _write_ints(out, slab.gate_traps)
    _write_ints(out, slab.gate_chain_lengths)
    _write_ints(out, slab.gate_ion_separations)
    params_flat: "list[float]" = []
    for gate in slab.gates:
        qubits = gate.qubits
        write_varint(out, len(qubits))
        for qubit in qubits:
            write_varint(out, qubit)
    for gate in slab.gates:
        params = gate.params
        write_varint(out, len(params))
        params_flat.extend(params)
    if params_flat:
        out += struct.pack(f"<{len(params_flat)}d", *params_flat)

    for column in (
        slab.swap_traps,
        slab.swap_qubits_a,
        slab.swap_qubits_b,
        slab.swap_chain_lengths,
        slab.swap_ion_separations,
        slab.shuttle_qubits,
        slab.shuttle_source_traps,
        slab.shuttle_target_traps,
        slab.shuttle_segments,
        slab.shuttle_junctions,
        slab.shuttle_source_chain_lengths,
        slab.shuttle_target_chain_lengths,
        slab.shift_traps,
        slab.shift_qubits,
        slab.shift_from_positions,
        slab.shift_to_positions,
    ):
        _write_ints(out, column)
    return bytes(out)


def schedule_from_bytes(data: bytes) -> Schedule:
    """Decode a schedule from :func:`schedule_to_bytes` output.

    The returned schedule is slab-backed: the integer columns are read
    wholesale and per-operation record objects are only materialised if
    the caller iterates the schedule.  Raises
    :class:`~repro.exceptions.ReproError` on a bad magic, an unsupported
    version or a truncated document.
    """
    if data[: len(SCHEDULE_MAGIC)] != SCHEDULE_MAGIC:
        raise ReproError("not a binary schedule document (bad magic)")
    if len(data) < len(SCHEDULE_MAGIC) + 1:
        raise ReproError("truncated binary schedule document")
    version = data[len(SCHEDULE_MAGIC)]
    if version != SCHEDULE_BINARY_VERSION:
        raise ReproError(
            f"unsupported binary schedule version {version} "
            f"(this library writes version {SCHEDULE_BINARY_VERSION})"
        )
    pos = len(SCHEDULE_MAGIC) + 1
    circuit_name, pos = _read_str(data, pos)

    device_name, pos = _read_str(data, pos)
    if pos + 8 > len(data):
        raise ReproError("truncated binary schedule document")
    (junction_weight,) = struct.unpack_from("<d", data, pos)
    pos += 8
    n_traps, pos = read_varint(data, pos)
    traps = []
    for _ in range(n_traps):
        trap_id, pos = read_varint(data, pos)
        capacity, pos = read_varint(data, pos)
        trap_name, pos = _read_str(data, pos)
        traps.append(Trap(trap_id, capacity, trap_name))
    n_connections, pos = read_varint(data, pos)
    connections = []
    for _ in range(n_connections):
        trap_a, pos = read_varint(data, pos)
        trap_b, pos = read_varint(data, pos)
        junctions, pos = read_varint(data, pos)
        segments, pos = read_varint(data, pos)
        connections.append(Connection(trap_a, trap_b, junctions, segments))
    device = QCCDDevice(
        traps, connections, name=device_name, junction_weight=junction_weight
    )

    n_names, pos = read_varint(data, pos)
    names = []
    for _ in range(n_names):
        name, pos = _read_str(data, pos)
        names.append(name)

    n_ops, pos = read_varint(data, pos)
    end = pos + n_ops
    if end > len(data):
        raise ReproError("truncated binary schedule document")
    kinds = bytearray(data[pos:end])
    pos = end
    if any(code >= len(KIND_BY_CODE) for code in kinds):
        raise ReproError("binary schedule document has an unknown operation kind code")

    slab = OperationSlab()
    slab.kinds = kinds
    n_gates = kinds.count(0) + kinds.count(1)
    name_column, pos = _read_ints(data, pos, n_gates)
    slab.gate_traps, pos = _read_ints(data, pos, n_gates)
    slab.gate_chain_lengths, pos = _read_ints(data, pos, n_gates)
    slab.gate_ion_separations, pos = _read_ints(data, pos, n_gates)
    qubit_lists: "list[tuple[int, ...]]" = []
    for _ in range(n_gates):
        n_qubits, pos = read_varint(data, pos)
        qubits = []
        for _ in range(n_qubits):
            qubit, pos = read_varint(data, pos)
            qubits.append(qubit)
        qubit_lists.append(tuple(qubits))
    param_counts = []
    total_params = 0
    for _ in range(n_gates):
        n_params, pos = read_varint(data, pos)
        param_counts.append(n_params)
        total_params += n_params
    if total_params:
        if pos + 8 * total_params > len(data):
            raise ReproError("truncated binary schedule document")
        params_flat = struct.unpack_from(f"<{total_params}d", data, pos)
        pos += 8 * total_params
    else:
        params_flat = ()

    gates = slab.gates
    cursor = 0
    for index in range(n_gates):
        n_params = param_counts[index]
        params = tuple(params_flat[cursor : cursor + n_params])
        cursor += n_params
        try:
            name = names[name_column[index]]
        except IndexError:
            raise ReproError(
                "binary schedule document references an unknown gate name"
            ) from None
        gates.append(_gate_unchecked(name, qubit_lists[index], params))

    slab.swap_traps, pos = _read_ints(data, pos, kinds.count(2))
    slab.swap_qubits_a, pos = _read_ints(data, pos, len(slab.swap_traps))
    slab.swap_qubits_b, pos = _read_ints(data, pos, len(slab.swap_traps))
    slab.swap_chain_lengths, pos = _read_ints(data, pos, len(slab.swap_traps))
    slab.swap_ion_separations, pos = _read_ints(data, pos, len(slab.swap_traps))
    n_shuttles = kinds.count(3)
    slab.shuttle_qubits, pos = _read_ints(data, pos, n_shuttles)
    slab.shuttle_source_traps, pos = _read_ints(data, pos, n_shuttles)
    slab.shuttle_target_traps, pos = _read_ints(data, pos, n_shuttles)
    slab.shuttle_segments, pos = _read_ints(data, pos, n_shuttles)
    slab.shuttle_junctions, pos = _read_ints(data, pos, n_shuttles)
    slab.shuttle_source_chain_lengths, pos = _read_ints(data, pos, n_shuttles)
    slab.shuttle_target_chain_lengths, pos = _read_ints(data, pos, n_shuttles)
    n_shifts = kinds.count(4)
    slab.shift_traps, pos = _read_ints(data, pos, n_shifts)
    slab.shift_qubits, pos = _read_ints(data, pos, n_shifts)
    slab.shift_from_positions, pos = _read_ints(data, pos, n_shifts)
    slab.shift_to_positions, pos = _read_ints(data, pos, n_shifts)
    return Schedule.from_slab(device, circuit_name, slab)
