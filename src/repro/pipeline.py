"""The pass-pipeline compilation architecture.

Every compiler in this library — S-SYNC, the Murali/Dai baselines, and
any third-party backend registered through
:func:`repro.registry.register_compiler` — is assembled from the same
shape: a :class:`CompilerPipeline` running an ordered list of
:class:`Pass` stages over a shared :class:`PassContext`:

1. a **mapping pass** places the program qubits
   (:class:`InitialMappingPass` for S-SYNC's pluggable first-level
   mappers, a baseline's own mapping pass otherwise);
2. a **routing pass** produces the operation log (the generic-swap
   scheduler via :class:`SchedulingPass`, or a greedy baseline router);
3. an optional :class:`VerifySchedulePass` replays the log and checks
   physical legality;
4. a :class:`MetricsPass` cross-checks the executed gate count and
   records the headline counters.

The pipeline times every pass (:class:`~repro.core.result.PassTiming`)
and assembles the :class:`~repro.core.result.CompilationResult`, so all
compilers get per-pass profiling and identical result semantics for
free.  Pipelines are one-shot per ``compile`` call context-wise but hold
no per-circuit state themselves, so one pipeline instance can compile
any number of circuits.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence, runtime_checkable

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping import InitialMapper
from repro.core.result import CompilationResult, PassTiming
from repro.core.scheduler import SCHEDULER_BACKENDS, SchedulerStatistics
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.schedule.schedule import Schedule
from repro.schedule.verify import verify_schedule


@dataclass
class PassContext:
    """Mutable state threaded through the passes of one compilation.

    A pass reads the fields earlier passes populated and writes the ones
    it owns: mapping passes set ``initial_state``/``state`` and
    ``mapping_name``, routing passes consume ``state`` and set
    ``schedule``/``final_state``/``statistics``, verification and metrics
    passes only read.  ``metadata`` is a free-form scratch area for
    custom passes.
    """

    circuit: QuantumCircuit
    device: QCCDDevice
    compiler_name: str
    requested_mapping: "str | InitialMapper | None" = None
    mapping_name: str = ""
    initial_state: DeviceState | None = None
    state: DeviceState | None = None
    schedule: Schedule | None = None
    final_state: DeviceState | None = None
    statistics: SchedulerStatistics = field(default_factory=SchedulerStatistics)
    metadata: dict[str, Any] = field(default_factory=dict)

    def require_state(self) -> DeviceState:
        """The working placement (raises if no mapping pass ran yet)."""
        if self.state is None:
            raise SchedulingError(
                "no qubit placement available: a mapping pass must run before "
                "the routing pass"
            )
        return self.state

    def require_schedule(self) -> Schedule:
        """The compiled schedule (raises if no routing pass ran yet)."""
        if self.schedule is None:
            raise SchedulingError(
                "no schedule available: a routing pass must run before "
                "verification/metrics passes"
            )
        return self.schedule


class Pass:
    """One pipeline stage.

    Subclasses implement :meth:`run` (mutating the context) and may
    override :meth:`statistics` to report counters into the pass's
    :class:`~repro.core.result.PassTiming` record.
    """

    #: Stable pass name used in timings and pipeline surgery.
    name: str = "pass"

    def run(self, context: PassContext) -> None:
        """Execute this stage on ``context``."""
        raise NotImplementedError

    def statistics(self, context: PassContext) -> dict[str, Any]:
        """Counters to record alongside this pass's wall time."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# built-in passes
# ----------------------------------------------------------------------
class InitialMappingPass(Pass):
    """Resolve and run a first-level initial mapper.

    The resolver callable turns the caller's ``initial_mapping`` request
    (a strategy name, an :class:`InitialMapper` instance, or ``None`` for
    the compiler's default) into a mapper — for S-SYNC that is
    :meth:`SSyncCompiler._resolve_mapper`, which carries the config's
    reserve/lookahead knobs.  When the caller supplied a pre-built
    ``initial_state`` the pipeline has already populated the context and
    this pass is a no-op.
    """

    name = "initial-mapping"

    def __init__(self, resolver) -> None:
        self._resolver = resolver

    def run(self, context: PassContext) -> None:
        if context.state is not None:  # caller-supplied starting occupancy
            return
        mapper = self._resolver(context.requested_mapping)
        mapped = mapper.map(context.circuit, context.device)
        context.initial_state = mapped
        context.state = mapped.copy()
        context.mapping_name = mapper.name

    def statistics(self, context: PassContext) -> dict[str, Any]:
        return {"mapping": context.mapping_name}


@runtime_checkable
class SchedulerLike(Protocol):
    """Anything that can route a circuit from a starting occupancy."""

    def run(
        self, circuit: QuantumCircuit, initial_state: DeviceState
    ) -> "tuple[Schedule, DeviceState, SchedulerStatistics]":
        ...


class SchedulingPass(Pass):
    """Run a scheduler (the generic-swap loop) as the routing stage."""

    name = "routing"

    def __init__(self, scheduler: SchedulerLike) -> None:
        self.scheduler = scheduler

    def run(self, context: PassContext) -> None:
        schedule, final_state, statistics = self.scheduler.run(
            context.circuit, context.require_state()
        )
        context.schedule = schedule
        context.final_state = final_state
        context.statistics = statistics

    def statistics(self, context: PassContext) -> dict[str, Any]:
        stats = context.statistics
        data = {
            "generic_swap_iterations": stats.generic_swap_iterations,
            "forced_routes": stats.forced_routes,
            "candidate_evaluations": stats.candidate_evaluations,
            "executed_two_qubit_gates": stats.executed_two_qubit_gates,
        }
        config = getattr(self.scheduler, "config", None)
        backend = getattr(config, "backend", None)
        if backend is not None:
            # Surface which scheduler core routed this circuit, so the
            # compile-time benchmarks and batch records can attribute
            # timings end-to-end.  SchedulerConfig.__post_init__ resolved
            # the backend exactly once; anything else here means a config
            # bypassed that resolution.
            assert backend in SCHEDULER_BACKENDS, f"unresolved scheduler backend {backend!r}"
            data["scheduler_core"] = backend
        else:
            # Foreign scheduler configs predating the backend field may
            # still carry the legacy boolean toggle.
            incremental = getattr(config, "incremental", None)
            if incremental is not None:
                data["scheduler_core"] = "incremental" if incremental else "naive"
        return data


class VerifySchedulePass(Pass):
    """Replay the schedule and check physical legality (optional stage)."""

    name = "verify"

    def __init__(self, check_context: bool = True) -> None:
        self.check_context = check_context

    def run(self, context: PassContext) -> None:
        if context.initial_state is None:
            raise SchedulingError("cannot verify a schedule without its initial state")
        report = verify_schedule(
            context.require_schedule(),
            context.initial_state,
            circuit=context.circuit,
            check_context=self.check_context,
        )
        context.metadata["verification"] = {
            "operations_checked": report.operations_checked,
            "two_qubit_gates": report.two_qubit_gates,
            "swaps": report.swaps,
            "shuttles": report.shuttles,
        }

    def statistics(self, context: PassContext) -> dict[str, Any]:
        return dict(context.metadata.get("verification", {}))


class MetricsPass(Pass):
    """Cross-check gate counts and record the headline schedule metrics."""

    name = "metrics"

    def run(self, context: PassContext) -> None:
        schedule = context.require_schedule()
        schedule.validate_against(context.circuit.num_two_qubit_gates)
        context.metadata["metrics"] = {
            "operations": len(schedule),
            "shuttles": schedule.shuttle_count,
            "swaps": schedule.swap_count,
            "two_qubit_gates": schedule.two_qubit_gate_count,
        }

    def statistics(self, context: PassContext) -> dict[str, Any]:
        return dict(context.metadata.get("metrics", {}))


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
class CompilerPipeline:
    """An ordered list of passes that compiles circuits on one device.

    This is the single compilation engine behind every compiler:
    :class:`~repro.core.compiler.SSyncCompiler` and the baselines are
    thin assemblies that pick the passes, and the registry
    (:mod:`repro.registry`) hands pipelines to the batch runtime, the
    sweeps and the CLI.
    """

    def __init__(self, name: str, device: QCCDDevice, passes: Sequence[Pass]) -> None:
        if not passes:
            raise SchedulingError("a compiler pipeline needs at least one pass")
        self.name = name
        self.device = device
        self.passes: tuple[Pass, ...] = tuple(passes)

    # ------------------------------------------------------------------
    # assembly helpers
    # ------------------------------------------------------------------
    def pass_names(self) -> tuple[str, ...]:
        """The ordered pass names (for introspection and CLI listings)."""
        return tuple(p.name for p in self.passes)

    def with_pass(self, new_pass: Pass, before: str | None = None) -> "CompilerPipeline":
        """A new pipeline with ``new_pass`` inserted.

        ``before`` names the pass to insert in front of; ``None`` appends.
        Raises :class:`SchedulingError` when ``before`` names no pass.
        """
        if before is None:
            return CompilerPipeline(self.name, self.device, (*self.passes, new_pass))
        for index, existing in enumerate(self.passes):
            if existing.name == before:
                passes = (*self.passes[:index], new_pass, *self.passes[index:])
                return CompilerPipeline(self.name, self.device, passes)
        raise SchedulingError(
            f"pipeline {self.name!r} has no pass named {before!r} "
            f"(passes: {', '.join(self.pass_names())})"
        )

    def with_verification(self, check_context: bool = True) -> "CompilerPipeline":
        """A new pipeline with a :class:`VerifySchedulePass` before metrics.

        When the pipeline has no metrics pass the verification stage is
        appended; an existing verify pass is kept as-is.
        """
        if "verify" in self.pass_names():
            return self
        verify = VerifySchedulePass(check_context=check_context)
        if "metrics" in self.pass_names():
            return self.with_pass(verify, before="metrics")
        return self.with_pass(verify)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        circuit: QuantumCircuit,
        initial_mapping: "str | InitialMapper | None" = None,
        initial_state: DeviceState | None = None,
    ) -> CompilationResult:
        """Run every pass in order and assemble the result.

        ``initial_mapping`` and ``initial_state`` follow the established
        compiler semantics: a pre-built state wins over a named mapping
        (with a :class:`UserWarning`, recording the requested mapping
        name), and the state is never mutated.
        """
        start = time.perf_counter()
        context = PassContext(
            circuit=circuit,
            device=self.device,
            compiler_name=self.name,
            requested_mapping=initial_mapping,
        )
        if initial_state is not None:
            context.initial_state = initial_state.copy()
            context.state = context.initial_state.copy()
            context.mapping_name = self._conflicting_mapping_name(initial_mapping)

        timings: list[PassTiming] = []
        for stage in self.passes:
            stage_start = time.perf_counter()
            stage.run(context)
            elapsed = time.perf_counter() - stage_start
            timings.append(PassTiming(stage.name, elapsed, stage.statistics(context)))

        if context.schedule is None or context.initial_state is None:
            raise SchedulingError(
                f"pipeline {self.name!r} produced no schedule; it needs a mapping "
                "pass and a routing pass"
            )
        final_state = context.final_state if context.final_state is not None else context.state
        assert final_state is not None
        return CompilationResult(
            schedule=context.schedule,
            initial_state=context.initial_state,
            final_state=final_state,
            compiler_name=self.name,
            mapping_name=context.mapping_name,
            compile_time_s=time.perf_counter() - start,
            statistics=context.statistics,
            pass_timings=tuple(timings),
        )

    @staticmethod
    def _conflicting_mapping_name(initial_mapping: "str | InitialMapper | None") -> str:
        """Mapping name to record when a pre-built state was supplied."""
        if initial_mapping is None:
            return "custom"
        mapping_name = (
            initial_mapping.name
            if isinstance(initial_mapping, InitialMapper)
            else str(initial_mapping)
        )
        warnings.warn(
            f"both initial_mapping={mapping_name!r} and initial_state were "
            "supplied; the explicit initial_state takes precedence and the "
            "mapper is not run",
            stacklevel=4,
        )
        return mapping_name

    def __repr__(self) -> str:
        return (
            f"CompilerPipeline(name={self.name!r}, device={self.device.name!r}, "
            f"passes=[{', '.join(self.pass_names())}])"
        )
