"""Quantum circuit container used throughout the S-SYNC reproduction.

:class:`QuantumCircuit` is a deliberately small, append-only gate list.  It
offers the constructors the benchmark generators need (``h``, ``cx``,
``rzz``...), a few structural queries used by the compiler (two-qubit gate
extraction, interaction graph, depth) and nothing else.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Iterator

import networkx as nx

from repro.circuit.gate import Gate
from repro.exceptions import CircuitError


class QuantumCircuit:
    """An ordered list of gates over ``num_qubits`` program qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        self.name = name
        # Memoised dependency structure (owned by repro.circuit.dag);
        # invalidated whenever a gate is appended.
        self._dag_template = None

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of program qubits addressable by this circuit."""
        return self._num_qubits

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self._num_qubits == other._num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self._num_qubits}, "
            f"gates={len(self._gates)}, two_qubit={self.num_two_qubit_gates})"
        )

    # ------------------------------------------------------------------
    # gate appending
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append ``gate``, validating its qubit indices against this circuit."""
        if any(q >= self._num_qubits for q in gate.qubits):
            raise CircuitError(
                f"gate {gate} addresses a qubit outside range 0..{self._num_qubits - 1}"
            )
        self._gates.append(gate)
        self._dag_template = None
        return self

    def add_gate(self, name: str, *qubits: int, params: Iterable[float] = ()) -> "QuantumCircuit":
        """Append a gate by name; convenience wrapper around :meth:`append`."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append every gate from ``gates`` in order."""
        for gate in gates:
            self.append(gate)
        return self

    # Named constructors for the gate set the benchmark circuits use.
    def h(self, q: int) -> "QuantumCircuit":
        return self.add_gate("h", q)

    def x(self, q: int) -> "QuantumCircuit":
        return self.add_gate("x", q)

    def y(self, q: int) -> "QuantumCircuit":
        return self.add_gate("y", q)

    def z(self, q: int) -> "QuantumCircuit":
        return self.add_gate("z", q)

    def t(self, q: int) -> "QuantumCircuit":
        return self.add_gate("t", q)

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add_gate("tdg", q)

    def s(self, q: int) -> "QuantumCircuit":
        return self.add_gate("s", q)

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add_gate("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add_gate("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add_gate("rz", q, params=(theta,))

    def measure(self, q: int) -> "QuantumCircuit":
        return self.add_gate("measure", q)

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate("cx", control, target)

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate("cz", control, target)

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate("cp", control, target, params=(theta,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("swap", a, b)

    def ms(self, a: int, b: int, theta: float = 0.0) -> "QuantumCircuit":
        return self.add_gate("ms", a, b, params=(theta,))

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("rxx", a, b, params=(theta,))

    def ryy(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("ryy", a, b, params=(theta,))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("rzz", a, b, params=(theta,))

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates in the circuit."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        """Number of single-qubit gates in the circuit."""
        return sum(1 for g in self._gates if g.is_single_qubit)

    def two_qubit_gates(self) -> list[Gate]:
        """Return the two-qubit gates in program order."""
        return [g for g in self._gates if g.is_two_qubit]

    def count_ops(self) -> dict[str, int]:
        """Return a histogram of gate names."""
        return dict(Counter(g.name for g in self._gates))

    def used_qubits(self) -> set[int]:
        """Return the set of qubit indices touched by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def depth(self, two_qubit_only: bool = False) -> int:
        """Circuit depth: length of the longest qubit-dependency chain."""
        level: dict[int, int] = defaultdict(int)
        depth = 0
        for gate in self._gates:
            if two_qubit_only and not gate.is_two_qubit:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def interaction_graph(self) -> nx.Graph:
        """Weighted graph of qubit pairs; edge weight = #two-qubit gates."""
        graph: nx.Graph = nx.Graph()
        graph.add_nodes_from(range(self._num_qubits))
        for gate in self._gates:
            if not gate.is_two_qubit:
                continue
            a, b = gate.qubits
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
        return graph

    def two_qubit_layers(self) -> list[list[Gate]]:
        """Greedy partition of the two-qubit gates into dependency layers."""
        layers: list[list[Gate]] = []
        level: dict[int, int] = defaultdict(int)
        for gate in self._gates:
            if not gate.is_two_qubit:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            while len(layers) <= start:
                layers.append([])
            layers[start].append(gate)
        return layers

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Return a shallow copy (gates are immutable, so this is safe)."""
        clone = QuantumCircuit(self._num_qubits, name or self.name)
        clone._gates = list(self._gates)
        return clone

    def remap_qubits(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a copy with every qubit index translated through ``mapping``."""
        target = num_qubits if num_qubits is not None else self._num_qubits
        clone = QuantumCircuit(target, self.name)
        for gate in self._gates:
            clone.append(gate.remap(mapping))
        return clone

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit equal to ``self`` followed by ``other``."""
        if other.num_qubits > self._num_qubits:
            raise CircuitError(
                "cannot compose a wider circuit onto a narrower one "
                f"({other.num_qubits} > {self._num_qubits})"
            )
        combined = self.copy()
        combined.extend(other.gates)
        return combined
