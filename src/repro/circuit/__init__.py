"""Circuit intermediate representation: gates, circuits, DAGs, QASM I/O."""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DAGNode, DependencyDAG
from repro.circuit.gate import (
    SINGLE_QUBIT_GATES,
    SYMMETRIC_TWO_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
)
from repro.circuit.qasm import circuit_to_qasm, qasm_to_circuit

__all__ = [
    "DAGNode",
    "DependencyDAG",
    "Gate",
    "QuantumCircuit",
    "SINGLE_QUBIT_GATES",
    "SYMMETRIC_TWO_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "circuit_to_qasm",
    "qasm_to_circuit",
]
