"""Gate primitives for the lightweight circuit intermediate representation.

The S-SYNC compiler only needs to know which qubits each operation touches
and whether the operation is a one- or two-qubit gate; it never simulates
state vectors.  The :class:`Gate` type therefore stores a name, the qubit
indices it acts on and optional real parameters, and exposes the handful
of predicates the scheduler and the noise model rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import CircuitError

#: Gate names treated as single-qubit operations.
SINGLE_QUBIT_GATES = frozenset(
    {
        "id",
        "x",
        "y",
        "z",
        "h",
        "s",
        "sdg",
        "t",
        "tdg",
        "rx",
        "ry",
        "rz",
        "u",
        "p",
        "sx",
        "measure",
        "reset",
        "barrier1",
    }
)

#: Gate names treated as two-qubit operations.
TWO_QUBIT_GATES = frozenset(
    {
        "cx",
        "cz",
        "cp",
        "swap",
        "iswap",
        "ms",
        "rxx",
        "ryy",
        "rzz",
        "xx",
        "yy",
        "zz",
        "cy",
        "ch",
        "crz",
        "crx",
        "cry",
    }
)

#: Two-qubit gate names that are symmetric in their operands.
SYMMETRIC_TWO_QUBIT_GATES = frozenset(
    {"cz", "cp", "swap", "iswap", "ms", "rxx", "ryy", "rzz", "xx", "yy", "zz"}
)


@dataclass(frozen=True)
class Gate:
    """A single quantum instruction.

    Parameters
    ----------
    name:
        Lower-case gate name (``"cx"``, ``"rz"``...).
    qubits:
        Program qubit indices the gate acts on, in operand order.
    params:
        Optional real parameters (rotation angles, phases).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        # Precomputed predicates: the scheduler's per-gate passes read
        # these millions of times, so they are plain attributes rather
        # than properties.
        object.__setattr__(self, "is_single_qubit", len(self.qubits) == 1)
        object.__setattr__(self, "is_two_qubit", len(self.qubits) == 2)
        if not self.qubits:
            raise CircuitError(f"gate {self.name!r} must act on at least one qubit")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"gate {self.name!r} has a negative qubit index: {self.qubits}")
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name!r} has duplicate qubit operands: {self.qubits}")
        expected = self.expected_arity(self.name)
        if expected is not None and expected != len(self.qubits):
            raise CircuitError(
                f"gate {self.name!r} expects {expected} qubit(s), got {len(self.qubits)}"
            )

    @staticmethod
    def expected_arity(name: str) -> int | None:
        """Return the operand count implied by ``name`` (``None`` if unknown)."""
        name = name.lower()
        if name in SINGLE_QUBIT_GATES:
            return 1
        if name in TWO_QUBIT_GATES:
            return 2
        return None

    @property
    def num_qubits(self) -> int:
        """Number of qubit operands."""
        return len(self.qubits)

    # ``is_single_qubit`` / ``is_two_qubit`` are plain instance
    # attributes precomputed in __post_init__ (not dataclass fields, so
    # equality, repr and asdict are unchanged).

    @property
    def is_symmetric(self) -> bool:
        """True when swapping the operands yields the same operation."""
        return self.name in SYMMETRIC_TWO_QUBIT_GATES

    @property
    def is_swap(self) -> bool:
        """True for explicit SWAP gates."""
        return self.name == "swap"

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate acting on different qubits."""
        return Gate(self.name, tuple(qubits), self.params)

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy with qubit indices translated through ``mapping``."""
        try:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        except KeyError as exc:  # pragma: no cover - defensive
            raise CircuitError(f"qubit {exc.args[0]} missing from remap table") from exc
        return Gate(self.name, new_qubits, self.params)

    def __iter__(self) -> Iterator[int]:
        return iter(self.qubits)

    def __str__(self) -> str:
        params = ""
        if self.params:
            params = "(" + ", ".join(f"{p:g}" for p in self.params) + ")"
        return f"{self.name}{params} {', '.join(str(q) for q in self.qubits)}"
