"""Quantum Fourier Transform benchmark circuit.

The paper's Table 2 reports 552 two-qubit gates for ``QFT_24`` and 4032
for ``QFT_64``, i.e. ``2 * n*(n-1)/2`` two-qubit gates: every controlled
phase rotation is decomposed into two CX gates plus single-qubit
rotations, and the optional final qubit-reversal SWAP network is omitted
(as in the paper's counts).  :func:`qft_circuit` reproduces exactly that
structure.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def qft_circuit(num_qubits: int, include_swaps: bool = False, decompose: bool = True) -> QuantumCircuit:
    """Build an ``num_qubits``-qubit QFT circuit.

    Parameters
    ----------
    num_qubits:
        Width of the transform.
    include_swaps:
        Append the final qubit-reversal SWAP network.  The paper's gate
        counts exclude it, so the default is ``False``.
    decompose:
        When ``True`` (default) each controlled-phase gate is expanded
        into ``rz - cx - rz - cx - rz``, matching the two-qubit gate
        counts in Table 2.  When ``False`` the circuit keeps native
        ``cp`` gates (one two-qubit gate per rotation).
    """
    if num_qubits < 1:
        raise CircuitError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            angle = 2.0 * math.pi / (2**offset)
            if decompose:
                _controlled_phase_as_cx(circuit, angle, control, target)
            else:
                circuit.cp(angle, control, target)
    if include_swaps:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    return circuit


def _controlled_phase_as_cx(circuit: QuantumCircuit, angle: float, control: int, target: int) -> None:
    """Standard CP decomposition into two CX gates and three RZ rotations."""
    circuit.rz(angle / 2.0, control)
    circuit.cx(control, target)
    circuit.rz(-angle / 2.0, target)
    circuit.cx(control, target)
    circuit.rz(angle / 2.0, target)


def qft_two_qubit_gate_count(num_qubits: int, decompose: bool = True) -> int:
    """Closed-form two-qubit gate count of :func:`qft_circuit`."""
    pairs = num_qubits * (num_qubits - 1) // 2
    return 2 * pairs if decompose else pairs
