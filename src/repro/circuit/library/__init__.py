"""Benchmark circuit generators (the paper's Table 2 plus test helpers)."""

from repro.circuit.library.adder import adder_two_qubit_gate_count, cuccaro_adder_circuit
from repro.circuit.library.alt import alt_two_qubit_gate_count, alternating_layered_ansatz
from repro.circuit.library.bv import bernstein_vazirani_circuit
from repro.circuit.library.clifford import (
    CLIFFORD_1Q_GATES,
    CLIFFORD_2Q_GATES,
    random_clifford,
)
from repro.circuit.library.heisenberg import heisenberg_circuit, heisenberg_two_qubit_gate_count
from repro.circuit.library.misc import ghz_circuit, random_circuit
from repro.circuit.library.qaoa import (
    erdos_renyi_edges,
    line_edges,
    maxcut_angles,
    qaoa_circuit,
    qaoa_two_qubit_gate_count,
    random_qaoa,
    ring_edges,
)
from repro.circuit.library.qft import qft_circuit, qft_two_qubit_gate_count
from repro.circuit.library.suite import (
    PAPER_BENCHMARKS,
    BenchmarkSpec,
    benchmark_families,
    benchmark_spec,
    build_benchmark,
    build_family,
    paper_benchmark_suite,
)

__all__ = [
    "CLIFFORD_1Q_GATES",
    "CLIFFORD_2Q_GATES",
    "PAPER_BENCHMARKS",
    "BenchmarkSpec",
    "adder_two_qubit_gate_count",
    "alt_two_qubit_gate_count",
    "alternating_layered_ansatz",
    "benchmark_families",
    "benchmark_spec",
    "bernstein_vazirani_circuit",
    "build_benchmark",
    "build_family",
    "cuccaro_adder_circuit",
    "erdos_renyi_edges",
    "ghz_circuit",
    "heisenberg_circuit",
    "heisenberg_two_qubit_gate_count",
    "line_edges",
    "maxcut_angles",
    "paper_benchmark_suite",
    "qaoa_circuit",
    "qaoa_two_qubit_gate_count",
    "qft_circuit",
    "qft_two_qubit_gate_count",
    "random_circuit",
    "random_clifford",
    "random_qaoa",
    "ring_edges",
]
