"""Additional circuit generators: GHZ states and seeded random circuits.

These are not part of the paper's Table 2 but are useful for unit tests,
property-based tests and the examples: GHZ gives a minimal long-range
entangling workload, and the random generator produces reproducible
circuits with a controlled two-qubit gate density.
"""

from __future__ import annotations

import random

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def ghz_circuit(num_qubits: int, ladder: bool = True) -> QuantumCircuit:
    """Build a GHZ-state preparation circuit.

    With ``ladder=True`` (default) the entanglement spreads through a CX
    chain ``0->1->2->...`` (nearest-neighbour communication); otherwise
    every CX is controlled by qubit 0 (star / long-distance
    communication), which stresses shuttling much harder.
    """
    if num_qubits < 2:
        raise CircuitError("GHZ needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(1, num_qubits):
        control = q - 1 if ladder else 0
        circuit.cx(control, q)
    return circuit


def random_circuit(
    num_qubits: int,
    num_two_qubit_gates: int,
    seed: int = 7,
    single_qubit_fraction: float = 0.5,
    locality: int | None = None,
) -> QuantumCircuit:
    """Build a seeded random circuit with a fixed two-qubit gate budget.

    Parameters
    ----------
    num_qubits:
        Circuit width.
    num_two_qubit_gates:
        Exact number of two-qubit gates to emit.
    seed:
        Seed of the private RNG, making the circuit reproducible.
    single_qubit_fraction:
        Expected ratio of interleaved single-qubit gates to two-qubit
        gates.
    locality:
        When given, the two endpoints of every two-qubit gate differ by
        at most ``locality`` (nearest-neighbour-ish workloads); when
        ``None`` pairs are drawn uniformly (long-distance workloads).
    """
    if num_qubits < 2:
        raise CircuitError("a random circuit needs at least two qubits")
    if num_two_qubit_gates < 0:
        raise CircuitError("the two-qubit gate budget cannot be negative")
    if locality is not None and locality < 1:
        raise CircuitError("locality must be at least 1")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}_{num_two_qubit_gates}")
    single_gates = ("h", "x", "t", "s")
    for _ in range(num_two_qubit_gates):
        if rng.random() < single_qubit_fraction:
            circuit.add_gate(rng.choice(single_gates), rng.randrange(num_qubits))
        a = rng.randrange(num_qubits)
        if locality is None:
            b = rng.randrange(num_qubits)
            while b == a:
                b = rng.randrange(num_qubits)
        else:
            low = max(0, a - locality)
            high = min(num_qubits - 1, a + locality)
            b = rng.randint(low, high)
            while b == a:
                b = rng.randint(low, high)
        circuit.cx(a, b)
    return circuit
