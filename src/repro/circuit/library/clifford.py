"""Seeded random Clifford circuit generator.

Random Clifford circuits are the standard "structureless" stress
workload: layered, with a dense mix of one- and two-qubit gates drawn
from the Clifford group, so neither the initial mapper nor the scheduler
can exploit any program structure.  The generator is deterministic for a
given seed — a private :class:`random.Random` drives every draw — so
:class:`~repro.runtime.CompileJob` fingerprints, schedule-cache hits and
batch dedup keep working across processes.

The compiler never simulates states, so "Clifford" here only fixes the
gate alphabet; no tableau bookkeeping is performed.
"""

from __future__ import annotations

import random

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError

#: One-qubit Clifford generators used between entangling layers.
CLIFFORD_1Q_GATES = ("h", "s", "sdg", "x", "z")

#: Two-qubit Clifford gates drawn for entangling pairs.
CLIFFORD_2Q_GATES = ("cx", "cz", "swap")


def random_clifford(
    num_qubits: int,
    depth: int = 8,
    seed: int = 7,
    two_qubit_probability: float = 0.7,
) -> QuantumCircuit:
    """Build a seeded layered random Clifford circuit.

    Parameters
    ----------
    num_qubits:
        Circuit width (at least 2).
    depth:
        Number of layers.  Each layer shuffles the qubits into disjoint
        adjacent pairs; every pair entangles with probability
        ``two_qubit_probability`` and otherwise receives independent
        one-qubit Clifford gates.
    seed:
        Seed of the private RNG, making the circuit reproducible (and
        its :func:`~repro.runtime.jobs.circuit_fingerprint` stable).
    two_qubit_probability:
        Chance that a paired qubit couple entangles in a given layer.
    """
    if num_qubits < 2:
        raise CircuitError("a random Clifford circuit needs at least two qubits")
    if depth < 1:
        raise CircuitError("depth must be at least 1")
    if not 0.0 <= two_qubit_probability <= 1.0:
        raise CircuitError("two_qubit_probability must lie in [0, 1]")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_clifford_{num_qubits}_{seed}")
    for _ in range(depth):
        order = list(range(num_qubits))
        rng.shuffle(order)
        index = 0
        while index + 1 < len(order):
            a, b = order[index], order[index + 1]
            if rng.random() < two_qubit_probability:
                circuit.add_gate(rng.choice(CLIFFORD_2Q_GATES), a, b)
            else:
                circuit.add_gate(rng.choice(CLIFFORD_1Q_GATES), a)
                circuit.add_gate(rng.choice(CLIFFORD_1Q_GATES), b)
            index += 2
        if index < len(order):
            circuit.add_gate(rng.choice(CLIFFORD_1Q_GATES), order[index])
    return circuit
