"""Bernstein–Vazirani benchmark circuit.

``BV_64`` in the paper uses 65 qubits (64 data qubits plus one oracle
ancilla) and 64 two-qubit gates: one CX from every data qubit to the
ancilla, i.e. the all-ones hidden string.  Communication is
long-distance because every qubit interacts with the single ancilla.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def bernstein_vazirani_circuit(
    num_data_qubits: int, secret: Sequence[int] | None = None
) -> QuantumCircuit:
    """Build a Bernstein–Vazirani circuit over ``num_data_qubits`` data qubits.

    Parameters
    ----------
    num_data_qubits:
        Width of the hidden bit string.
    secret:
        Optional hidden string as a sequence of 0/1.  Defaults to the
        all-ones string, which matches the paper's two-qubit gate count
        (one CX per data qubit).
    """
    if num_data_qubits < 1:
        raise CircuitError("Bernstein-Vazirani needs at least one data qubit")
    if secret is None:
        secret = [1] * num_data_qubits
    secret = list(secret)
    if len(secret) != num_data_qubits:
        raise CircuitError(
            f"secret length {len(secret)} does not match {num_data_qubits} data qubits"
        )
    if any(bit not in (0, 1) for bit in secret):
        raise CircuitError("secret must be a 0/1 string")

    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_data_qubits + 1, name=f"bv_{num_data_qubits}")
    # Prepare |-> on the ancilla and |+> on the data register.
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q in range(num_data_qubits):
        circuit.h(q)
    # Oracle: CX from every secret-1 data qubit onto the ancilla.
    for q, bit in enumerate(secret):
        if bit:
            circuit.cx(q, ancilla)
    # Un-compute the Hadamards and measure.
    for q in range(num_data_qubits):
        circuit.h(q)
        circuit.measure(q)
    return circuit
