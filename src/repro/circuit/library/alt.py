"""Alternating layered ansatz (ALT) benchmark circuit.

``ALT_64`` in the paper is the hardware-efficient alternating layered
ansatz commonly used in variational quantum machine learning: blocks of
single-qubit rotations followed by entangling gates on adjacent pairs,
with the pairing offset alternating between even and odd layers so the
light cone of every qubit grows linearly.  Communication is
nearest-neighbour, matching Table 2, and the two-qubit gate count matches
QAOA's 1260 at the default depth used by the benchmark harness.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def alternating_layered_ansatz(
    num_qubits: int,
    layers: int = 20,
    rotations_per_layer: int = 1,
    entangler: str = "cx",
) -> QuantumCircuit:
    """Build an alternating layered ansatz.

    Parameters
    ----------
    num_qubits:
        Number of qubits.
    layers:
        Number of entangling layers.  Even layers pair ``(0,1), (2,3)...``
        and odd layers pair ``(1,2), (3,4)...``.
    rotations_per_layer:
        Number of single-qubit rotation sub-layers preceding each
        entangling layer.
    entangler:
        Two-qubit gate used for entanglement (``"cx"`` or ``"cz"``).
    """
    if num_qubits < 2:
        raise CircuitError("the alternating layered ansatz needs at least two qubits")
    if layers < 1:
        raise CircuitError("the ansatz needs at least one layer")
    if entangler not in {"cx", "cz"}:
        raise CircuitError(f"unsupported entangler {entangler!r}")

    circuit = QuantumCircuit(num_qubits, name=f"alt_{num_qubits}")
    angle = 0.37  # fixed placeholder angle; the compiler ignores parameters
    for layer in range(layers):
        for _ in range(rotations_per_layer):
            for q in range(num_qubits):
                circuit.ry(angle, q)
                circuit.rz(angle / 2.0, q)
        offset = layer % 2
        for a in range(offset, num_qubits - 1, 2):
            circuit.add_gate(entangler, a, a + 1)
    return circuit


def alt_two_qubit_gate_count(num_qubits: int, layers: int = 20) -> int:
    """Closed-form two-qubit gate count of :func:`alternating_layered_ansatz`."""
    even_layer_pairs = num_qubits // 2
    odd_layer_pairs = (num_qubits - 1) // 2
    num_even = (layers + 1) // 2
    num_odd = layers // 2
    return num_even * even_layer_pairs + num_odd * odd_layer_pairs
