"""QAOA benchmark circuit (MaxCut cost layers over a problem graph).

The paper describes ``QAOA_64`` as a nearest-neighbor-communication
benchmark with 1260 two-qubit gates on 64 qubits.  That corresponds to a
ring-coupled cost Hamiltonian (63 nearest-neighbour edges on the open
chain plus the wrap-around edge gives 64 edges; the paper's count is
consistent with ~10 alternating layers with each ZZ interaction expanded
into two CX gates).  The generator below is parameterised over the
problem graph and layer count so all those variants can be produced.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError

Edge = tuple[int, int]


def ring_edges(num_qubits: int) -> list[Edge]:
    """Edges of the cycle graph C_n, the paper's nearest-neighbour pattern."""
    if num_qubits < 3:
        raise CircuitError("a ring needs at least 3 qubits")
    return [(i, (i + 1) % num_qubits) for i in range(num_qubits)]


def line_edges(num_qubits: int) -> list[Edge]:
    """Edges of the path graph P_n."""
    if num_qubits < 2:
        raise CircuitError("a line needs at least 2 qubits")
    return [(i, i + 1) for i in range(num_qubits - 1)]


def erdos_renyi_edges(num_qubits: int, edge_probability: float, seed: int) -> list[Edge]:
    """Seeded Erdős–Rényi ``G(n, p)`` edge list over ``num_qubits`` vertices.

    The draw uses a private :class:`random.Random`, so the same
    ``(num_qubits, edge_probability, seed)`` triple always yields the
    same edge list — a requirement for fingerprint-stable circuits.  A
    draw that comes up empty falls back to one deterministic random
    edge, so the resulting QAOA circuit always contains at least one
    two-qubit interaction.
    """
    if num_qubits < 2:
        raise CircuitError("a random graph needs at least two vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise CircuitError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    edges = [
        (a, b)
        for a in range(num_qubits)
        for b in range(a + 1, num_qubits)
        if rng.random() < edge_probability
    ]
    if not edges:
        a, b = rng.sample(range(num_qubits), 2)
        edges.append((min(a, b), max(a, b)))
    return edges


def random_qaoa(
    num_qubits: int,
    layers: int = 2,
    edge_probability: float = 0.4,
    seed: int = 7,
    decompose_zz: bool = True,
) -> QuantumCircuit:
    """Build a seeded QAOA circuit for MaxCut on a random Erdős–Rényi graph.

    Deterministic for a given ``(num_qubits, layers, edge_probability,
    seed)``, so :class:`~repro.runtime.CompileJob` fingerprints — and
    with them schedule-cache hits and batch dedup — keep working across
    processes.  The problem graph comes from :func:`erdos_renyi_edges`;
    everything else matches :func:`qaoa_circuit`.
    """
    edges = erdos_renyi_edges(num_qubits, edge_probability, seed)
    circuit = qaoa_circuit(num_qubits, layers=layers, edges=edges, decompose_zz=decompose_zz)
    circuit.name = f"random_qaoa_{num_qubits}_{seed}"
    return circuit


def qaoa_circuit(
    num_qubits: int,
    layers: int = 10,
    edges: Iterable[Edge] | None = None,
    gammas: Sequence[float] | None = None,
    betas: Sequence[float] | None = None,
    decompose_zz: bool = True,
) -> QuantumCircuit:
    """Build a QAOA circuit for MaxCut on ``edges``.

    Parameters
    ----------
    num_qubits:
        Number of problem qubits.
    layers:
        Number of alternating cost/mixer layers (``p``).
    edges:
        Problem graph edges; defaults to the ring graph, the paper's
        nearest-neighbour communication pattern.
    gammas, betas:
        Optional per-layer angles.  Fixed defaults are used when omitted
        (the compiler never inspects angles).
    decompose_zz:
        Expand every ZZ interaction into ``cx - rz - cx`` (two two-qubit
        gates, default) instead of a single native ``rzz`` gate.
    """
    if num_qubits < 2:
        raise CircuitError("QAOA needs at least two qubits")
    if layers < 1:
        raise CircuitError("QAOA needs at least one layer")
    edge_list = list(edges) if edges is not None else ring_edges(num_qubits)
    for a, b in edge_list:
        if a == b:
            raise CircuitError(f"self-loop edge ({a}, {b}) is not allowed")
        if not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise CircuitError(f"edge ({a}, {b}) is outside the qubit range")
    if gammas is None:
        gammas = [0.3 + 0.05 * layer for layer in range(layers)]
    if betas is None:
        betas = [0.7 - 0.05 * layer for layer in range(layers)]
    if len(gammas) != layers or len(betas) != layers:
        raise CircuitError("gammas and betas must each have one entry per layer")

    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for layer in range(layers):
        gamma = gammas[layer]
        beta = betas[layer]
        for a, b in edge_list:
            if decompose_zz:
                circuit.cx(a, b)
                circuit.rz(2.0 * gamma, b)
                circuit.cx(a, b)
            else:
                circuit.rzz(2.0 * gamma, a, b)
        for q in range(num_qubits):
            circuit.rx(2.0 * beta, q)
    return circuit


def qaoa_two_qubit_gate_count(
    num_qubits: int, layers: int = 10, num_edges: int | None = None, decompose_zz: bool = True
) -> int:
    """Closed-form two-qubit gate count of :func:`qaoa_circuit`."""
    edges = num_edges if num_edges is not None else num_qubits
    per_edge = 2 if decompose_zz else 1
    return layers * edges * per_edge


def maxcut_angles(layers: int) -> tuple[list[float], list[float]]:
    """A deterministic linear-ramp angle schedule (gamma up, beta down)."""
    gammas = [math.pi * (layer + 1) / (2 * (layers + 1)) for layer in range(layers)]
    betas = [math.pi * (layers - layer) / (2 * (layers + 1)) for layer in range(layers)]
    return gammas, betas
