"""Cuccaro ripple-carry adder benchmark circuit.

The paper's ``Adder_32`` benchmark is the Cuccaro et al. (2004)
ripple-carry adder on two 32-bit registers, one carry-in ancilla and one
carry-out qubit — 66 qubits total.  The paper reports 545 two-qubit gates
(Table 2), which corresponds to decomposing every Toffoli into the
standard 6-CX network and keeping the MAJ/UMA CX pairs.

Qubit layout (matching the original paper's interleaved convention):

``[c0, b0, a0, b1, a1, ..., b_{n-1}, a_{n-1}, z]``

where ``a`` and ``b`` are the addend registers, ``c0`` is the input
carry, and ``z`` receives the output carry.  Communication is
short-distance: each MAJ/UMA block touches three adjacent logical qubits.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def _toffoli(circuit: QuantumCircuit, control_a: int, control_b: int, target: int) -> None:
    """Standard 6-CX Toffoli decomposition (plus T/T† single-qubit gates)."""
    circuit.h(target)
    circuit.cx(control_b, target)
    circuit.tdg(target)
    circuit.cx(control_a, target)
    circuit.t(target)
    circuit.cx(control_b, target)
    circuit.tdg(target)
    circuit.cx(control_a, target)
    circuit.t(control_b)
    circuit.t(target)
    circuit.h(target)
    circuit.cx(control_a, control_b)
    circuit.t(control_a)
    circuit.tdg(control_b)
    circuit.cx(control_a, control_b)


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int, decompose_toffoli: bool) -> None:
    """Cuccaro MAJ block on (carry, b, a)."""
    circuit.cx(a, b)
    circuit.cx(a, c)
    if decompose_toffoli:
        _toffoli(circuit, c, b, a)
    else:
        circuit.add_gate("ccx", c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int, decompose_toffoli: bool) -> None:
    """Cuccaro UMA (2-CNOT version) block on (carry, b, a)."""
    if decompose_toffoli:
        _toffoli(circuit, c, b, a)
    else:
        circuit.add_gate("ccx", c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def cuccaro_adder_circuit(num_bits: int, decompose_toffoli: bool = True) -> QuantumCircuit:
    """Build the Cuccaro ripple-carry adder for two ``num_bits``-bit registers.

    The returned circuit has ``2 * num_bits + 2`` qubits.  With
    ``decompose_toffoli=True`` (default) each Toffoli contributes 8
    two-qubit gates (6 CX inside the decomposition plus the 2 CX of its
    MAJ/UMA wrapper), giving ``16 * num_bits + 1`` two-qubit gates — 513
    for ``num_bits=32``; the paper's 545 includes a slightly different
    Toffoli expansion but the communication structure is identical.
    """
    if num_bits < 1:
        raise CircuitError("adder needs at least one bit per register")
    num_qubits = 2 * num_bits + 2
    circuit = QuantumCircuit(num_qubits, name=f"adder_{num_bits}")

    def a_index(i: int) -> int:
        return 2 * i + 2

    def b_index(i: int) -> int:
        return 2 * i + 1

    carry_in = 0
    carry_out = num_qubits - 1

    # Forward MAJ ripple.
    _maj(circuit, carry_in, b_index(0), a_index(0), decompose_toffoli)
    for i in range(1, num_bits):
        _maj(circuit, a_index(i - 1), b_index(i), a_index(i), decompose_toffoli)
    # Copy the final carry.
    circuit.cx(a_index(num_bits - 1), carry_out)
    # Backward UMA ripple.
    for i in range(num_bits - 1, 0, -1):
        _uma(circuit, a_index(i - 1), b_index(i), a_index(i), decompose_toffoli)
    _uma(circuit, carry_in, b_index(0), a_index(0), decompose_toffoli)
    return circuit


def adder_two_qubit_gate_count(num_bits: int, decompose_toffoli: bool = True) -> int:
    """Closed-form two-qubit gate count of :func:`cuccaro_adder_circuit`.

    Each MAJ/UMA block contributes 2 CX plus one Toffoli; the Toffoli is
    6 CX when decomposed and a three-qubit ``ccx`` (which does not count
    as a two-qubit gate) otherwise.  One extra CX copies the carry out.
    """
    per_block = 2 + (6 if decompose_toffoli else 0)
    return 2 * num_bits * per_block + 1
