"""Heisenberg-model Trotter simulation benchmark circuit.

``Heisenberg_48`` in the paper has 48 qubits and 13 536 two-qubit gates.
A first-order Trotter step of the isotropic Heisenberg chain applies an
XX, YY and ZZ interaction on every coupled pair; with each two-qubit
rotation expanded into two CX gates, a ring of 48 spins costs
``48 pairs x 3 terms x 2 CX = 288`` two-qubit gates per step, so 47 steps
give exactly 13 536 — the generator defaults reproduce that count.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError

Edge = tuple[int, int]


def heisenberg_circuit(
    num_qubits: int,
    trotter_steps: int | None = None,
    edges: Iterable[Edge] | None = None,
    time_step: float = 0.1,
    decompose: bool = True,
) -> QuantumCircuit:
    """Build a Trotterised Heisenberg-chain evolution circuit.

    Parameters
    ----------
    num_qubits:
        Number of spins.
    trotter_steps:
        Number of first-order Trotter steps; defaults to
        ``num_qubits - 1`` which reproduces the paper's gate count for
        48 spins.
    edges:
        Coupling graph; defaults to the ring.
    time_step:
        Trotter step size (angles only; the compiler ignores them).
    decompose:
        Expand each two-qubit rotation into ``cx - rz - cx`` when True.
    """
    if num_qubits < 2:
        raise CircuitError("the Heisenberg model needs at least two spins")
    steps = trotter_steps if trotter_steps is not None else num_qubits - 1
    if steps < 1:
        raise CircuitError("at least one Trotter step is required")
    if edges is None:
        edge_list: list[Edge] = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    else:
        edge_list = list(edges)
    for a, b in edge_list:
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise CircuitError(f"invalid coupling edge ({a}, {b})")

    circuit = QuantumCircuit(num_qubits, name=f"heisenberg_{num_qubits}")
    theta = 2.0 * time_step
    for _ in range(steps):
        for a, b in edge_list:
            _pauli_rotation(circuit, "rxx", theta, a, b, decompose)
            _pauli_rotation(circuit, "ryy", theta, a, b, decompose)
            _pauli_rotation(circuit, "rzz", theta, a, b, decompose)
    return circuit


def _pauli_rotation(
    circuit: QuantumCircuit, name: str, theta: float, a: int, b: int, decompose: bool
) -> None:
    """Append an XX/YY/ZZ rotation, optionally expanded to CX + RZ + CX."""
    if not decompose:
        circuit.add_gate(name, a, b, params=(theta,))
        return
    # Basis change so that the interaction becomes ZZ, then cx-rz-cx.
    if name == "rxx":
        circuit.h(a)
        circuit.h(b)
    elif name == "ryy":
        circuit.rx(1.5707963267948966, a)
        circuit.rx(1.5707963267948966, b)
    circuit.cx(a, b)
    circuit.rz(theta, b)
    circuit.cx(a, b)
    if name == "rxx":
        circuit.h(a)
        circuit.h(b)
    elif name == "ryy":
        circuit.rx(-1.5707963267948966, a)
        circuit.rx(-1.5707963267948966, b)


def heisenberg_two_qubit_gate_count(
    num_qubits: int, trotter_steps: int | None = None, decompose: bool = True
) -> int:
    """Closed-form two-qubit gate count of :func:`heisenberg_circuit` (ring)."""
    steps = trotter_steps if trotter_steps is not None else num_qubits - 1
    per_pair = 6 if decompose else 3
    return steps * num_qubits * per_pair
