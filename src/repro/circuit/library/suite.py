"""The paper's benchmark suite (Table 2) as named circuit factories.

:func:`build_benchmark` resolves the names used throughout the
evaluation section (``"qft_24"``, ``"adder_32"``, ``"bv_64"``,
``"qaoa_64"``, ``"alt_64"``, ``"heisenberg_48"``) to concrete circuits,
and :func:`paper_benchmark_suite` returns the full Table-2 set.  Every
factory accepts a size override so the benchmark harnesses can run
scaled-down instances with identical structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library.adder import cuccaro_adder_circuit
from repro.circuit.library.alt import alternating_layered_ansatz
from repro.circuit.library.bv import bernstein_vazirani_circuit
from repro.circuit.library.heisenberg import heisenberg_circuit
from repro.circuit.library.qaoa import qaoa_circuit
from repro.circuit.library.qft import qft_circuit
from repro.exceptions import CircuitError


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one Table-2 entry."""

    name: str
    family: str
    num_qubits: int
    communication: str
    paper_two_qubit_gates: int


#: The six applications of Table 2, with the paper's reported metadata.
PAPER_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("adder_32", "adder", 66, "short-distance", 545),
    BenchmarkSpec("qaoa_64", "qaoa", 64, "nearest-neighbor", 1260),
    BenchmarkSpec("alt_64", "alt", 64, "nearest-neighbor", 1260),
    BenchmarkSpec("bv_64", "bv", 65, "long-distance", 64),
    BenchmarkSpec("qft_24", "qft", 24, "long-distance", 552),
    BenchmarkSpec("qft_64", "qft", 64, "long-distance", 4032),
    BenchmarkSpec("heisenberg_48", "heisenberg", 48, "long-distance", 13536),
)


def benchmark_families() -> tuple[str, ...]:
    """The distinct application families of Table 2."""
    return ("adder", "qaoa", "alt", "bv", "qft", "heisenberg")


def build_family(family: str, size: int) -> QuantumCircuit:
    """Build a circuit of a Table-2 family at an arbitrary ``size``.

    ``size`` follows the paper's naming convention: for the adder it is
    the register width in bits (the circuit then has ``2*size + 2``
    qubits); for every other family it is the number of data qubits.
    """
    family = family.lower()
    if family == "qft":
        return qft_circuit(size)
    if family == "adder":
        return cuccaro_adder_circuit(size)
    if family == "bv":
        return bernstein_vazirani_circuit(size)
    if family == "qaoa":
        return qaoa_circuit(size, layers=10)
    if family == "alt":
        # 40 alternating layers reproduces the paper's 1260 two-qubit gates
        # at size 64 (20 even-offset layers of 32 pairs + 20 odd-offset
        # layers of 31 pairs).
        return alternating_layered_ansatz(size, layers=40)
    if family == "heisenberg":
        return heisenberg_circuit(size)
    raise CircuitError(f"unknown benchmark family {family!r}")


def build_benchmark(name: str) -> QuantumCircuit:
    """Build a circuit from a Table-2 style name, e.g. ``"qft_24"``.

    The name is ``<family>_<size>`` where ``size`` uses the paper's
    convention (``adder_32`` means a 32-bit adder on 66 qubits).
    """
    try:
        family, size_text = name.lower().rsplit("_", 1)
        size = int(size_text)
    except ValueError as exc:
        raise CircuitError(f"benchmark name {name!r} is not of the form '<family>_<size>'") from exc
    return build_family(family, size)


def paper_benchmark_suite() -> dict[str, QuantumCircuit]:
    """Build every Table-2 circuit at the paper's sizes, keyed by name."""
    return {spec.name: build_benchmark(spec.name) for spec in PAPER_BENCHMARKS}


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Return the Table-2 metadata for ``name``."""
    for spec in PAPER_BENCHMARKS:
        if spec.name == name.lower():
            return spec
    raise CircuitError(f"{name!r} is not one of the paper's Table-2 benchmarks")
