"""Minimal OpenQASM 2.0 import/export for the circuit IR.

Only the subset of OpenQASM the benchmark circuits use is supported: a
single quantum register, the gate names known to :mod:`repro.circuit.gate`
and numeric parameters (including simple ``pi`` expressions).  This is
enough to round-trip every circuit produced by
:mod:`repro.circuit.library` and to import externally generated
benchmarks of the same flavour.
"""

from __future__ import annotations

import math
import re

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import CircuitError

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_QREG_RE = re.compile(r"qreg\s+(?P<name>[A-Za-z_][\w]*)\s*\[\s*(?P<size>\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+[A-Za-z_][\w]*\s*\[\s*\d+\s*\]")
_GATE_RE = re.compile(
    r"(?P<name>[A-Za-z_][\w]*)\s*(?:\((?P<params>[^)]*)\))?\s*(?P<operands>[^;]+)"
)
_OPERAND_RE = re.compile(r"[A-Za-z_][\w]*\s*\[\s*(?P<index>\d+)\s*\]")


def circuit_to_qasm(circuit: QuantumCircuit, register: str = "q") -> str:
    """Serialise ``circuit`` to an OpenQASM 2.0 string."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg {register}[{circuit.num_qubits}];")
    for gate in circuit.gates:
        if gate.name == "measure":
            # Measurements need a classical register; emit one lazily.
            continue
        params = ""
        if gate.params:
            params = "(" + ",".join(repr(p) for p in gate.params) + ")"
        operands = ",".join(f"{register}[{q}]" for q in gate.qubits)
        lines.append(f"{gate.name}{params} {operands};")
    return "\n".join(lines) + "\n"


def _eval_param(expression: str) -> float:
    """Evaluate a numeric OpenQASM parameter expression.

    Supports literals and the ``pi`` constant with ``* / + -`` operators.
    """
    expr = expression.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[\d.eE+\-*/() ]+", expr):
        raise CircuitError(f"unsupported parameter expression: {expression!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above
    except Exception as exc:
        raise CircuitError(f"could not evaluate parameter {expression!r}") from exc


def qasm_to_circuit(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 string into a :class:`QuantumCircuit`."""
    num_qubits: int | None = None
    statements: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if line:
            statements.extend(part.strip() for part in line.split(";") if part.strip())

    gates: list[Gate] = []
    for statement in statements:
        lowered = statement.lower()
        if lowered.startswith("openqasm") or lowered.startswith("include"):
            continue
        if lowered.startswith("barrier"):
            continue
        qreg = _QREG_RE.match(statement)
        if qreg:
            if num_qubits is not None:
                raise CircuitError("multiple quantum registers are not supported")
            num_qubits = int(qreg.group("size"))
            continue
        if _CREG_RE.match(statement):
            continue
        if lowered.startswith("measure"):
            match = _OPERAND_RE.search(statement)
            if match:
                gates.append(Gate("measure", (int(match.group("index")),)))
            continue
        gate_match = _GATE_RE.match(statement)
        if not gate_match:
            raise CircuitError(f"could not parse QASM statement: {statement!r}")
        gate_name = gate_match.group("name").lower()
        params_text = gate_match.group("params")
        params = ()
        if params_text:
            params = tuple(_eval_param(p) for p in params_text.split(","))
        operands = tuple(
            int(m.group("index")) for m in _OPERAND_RE.finditer(gate_match.group("operands"))
        )
        if not operands:
            raise CircuitError(f"gate statement has no qubit operands: {statement!r}")
        # Normalise a few qelib aliases onto our gate set.
        if gate_name in {"u1"}:
            gate_name = "rz"
        elif gate_name in {"u2", "u3"}:
            gate_name = "u"
        gates.append(Gate(gate_name, operands, params))

    if num_qubits is None:
        max_index = max((max(g.qubits) for g in gates), default=-1)
        num_qubits = max_index + 1
    if num_qubits <= 0:
        raise CircuitError("QASM text declares no qubits")

    circuit = QuantumCircuit(num_qubits, name=name)
    circuit.extend(gates)
    return circuit
