"""Dependency DAG over the two-qubit gates of a circuit.

Section 3.1 of the paper maps the quantum program onto a directed acyclic
graph whose vertices are gates and whose edges encode data dependence.
The S-SYNC scheduler (Algorithm 1) only routes *two-qubit* gates — a
single-qubit gate is always executable wherever its ion sits — so the DAG
here is built over two-qubit gates only, which keeps the frontier small.

The class supports exactly the operations Algorithm 1 needs:

* ``frontier`` — the set of gates whose predecessors have all executed,
* ``execute(node)`` — retire a frontier gate and promote its successors,
* ``lookahead(k)`` — the first ``k`` dependency layers, used by the
  extended heuristic and the intra-trap mapping score (Eq. 3).
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError


class DAGNode:
    """A two-qubit gate plus its position in the original program order.

    A plain ``__slots__`` record (one is created per two-qubit gate on
    every scheduler run, so construction cost matters); equality is by
    (index, gate) value, like the frozen dataclass it replaces.
    """

    __slots__ = ("index", "gate")

    def __init__(self, index: int, gate: Gate) -> None:
        self.index = index
        self.gate = gate

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.gate.qubits

    def __eq__(self, other: object) -> bool:
        if type(other) is not DAGNode:
            return NotImplemented
        return self.index == other.index and self.gate == other.gate

    def __hash__(self) -> int:
        return hash((self.index, self.gate))

    def __repr__(self) -> str:
        return f"DAGNode(index={self.index!r}, gate={self.gate!r})"


class _DagTemplate:
    """Immutable dependency structure of one circuit, memoised on it.

    The edges, in-degrees, initial frontier and single-qubit buckets are
    pure functions of the gate list, and the library compiles the same
    circuit object many times (parameter sweeps, gate-implementation
    studies, repeated benchmark runs, parity checks).  The first
    :class:`DependencyDAG` built for a circuit stores this template on
    ``circuit._dag_template`` (invalidated by ``QuantumCircuit.append``);
    later DAGs adopt it with a few C-speed dict/set copies instead of
    re-walking the whole program.
    """

    __slots__ = ("gates", "succ", "pred_count", "frontier", "pending_single_qubit", "trailing_single_qubit")

    def __init__(
        self,
        gates: dict[int, Gate],
        succ: dict[int, list[int]],
        pred_count: dict[int, int],
        frontier: set[int],
        pending_single_qubit: dict[int, list[Gate]],
        trailing_single_qubit: list[Gate],
    ) -> None:
        self.gates = gates
        self.succ = succ
        self.pred_count = pred_count
        self.frontier = frontier
        self.pending_single_qubit = pending_single_qubit
        self.trailing_single_qubit = trailing_single_qubit


def _build_template(circuit: QuantumCircuit) -> _DagTemplate:
    """One pass over the circuit computing the full dependency structure."""
    last_node_on_qubit: dict[int, int] = {}
    gates: dict[int, Gate] = {}
    succ: dict[int, list[int]] = defaultdict(list)
    pred_count: dict[int, int] = {}
    frontier: set[int] = set()
    pending: dict[int, list[Gate]] = {}
    waiting: dict[int, list[Gate]] = {}
    last_get = last_node_on_qubit.get
    get_waiting = waiting.get
    for index, gate in enumerate(circuit.gates):
        # Single-qubit gates outnumber two-qubit gates in most
        # programs, so test for them first.
        if gate.is_single_qubit:
            q = gate.qubits[0]
            queued = get_waiting(q)
            if queued is None:
                waiting[q] = [gate]
            else:
                queued.append(gate)
            continue
        if not gate.is_two_qubit:
            continue
        gates[index] = gate
        qubit_a, qubit_b = gate.qubits
        pred_a = last_get(qubit_a)
        pred_b = last_get(qubit_b)
        last_node_on_qubit[qubit_a] = index
        last_node_on_qubit[qubit_b] = index
        if pred_a is None:
            if pred_b is None:
                pred_count[index] = 0
                frontier.add(index)
            else:
                pred_count[index] = 1
                succ[pred_b].append(index)
        elif pred_b is None or pred_b == pred_a:
            pred_count[index] = 1
            succ[pred_a].append(index)
        else:
            pred_count[index] = 2
            succ[pred_a].append(index)
            succ[pred_b].append(index)
        for q in (qubit_a, qubit_b):
            queued = get_waiting(q)
            if queued:
                attached = pending.get(index)
                if attached is None:
                    pending[index] = queued
                else:
                    attached.extend(queued)
                waiting[q] = []
    trailing = [gate for q in sorted(waiting) for gate in waiting[q]]
    return _DagTemplate(gates, dict(succ), pred_count, frontier, pending, trailing)


class DependencyDAG:
    """Mutable dependency graph consumed front-to-back by the scheduler.

    With ``attach_single_qubit_gates=True`` the single construction pass
    additionally buckets every single-qubit gate onto the next two-qubit
    gate acting on its qubit (:attr:`pending_single_qubit`), with gates
    after the last two-qubit gate collected in
    :attr:`trailing_single_qubit` — the scheduler needs exactly this
    partition and doing it here avoids a second walk over the circuit.

    Construction is memoised per circuit via :class:`_DagTemplate`: the
    shared, never-mutated parts (gate table, successor lists, trailing
    gates) are adopted by reference and only the per-run mutable state
    (in-degrees, frontier, pending buckets) is copied.
    """

    __slots__ = (
        "_gates",
        "_succ",
        "_pred_count",
        "_frontier",
        "_executed",
        "_remaining",
        "_revision",
        "pending_single_qubit",
        "trailing_single_qubit",
    )

    def __init__(self, circuit: QuantumCircuit, attach_single_qubit_gates: bool = False) -> None:
        template = getattr(circuit, "_dag_template", None)
        if template is None:
            template = _build_template(circuit)
            circuit._dag_template = template
        #: index -> two-qubit gate; DAGNode objects are materialised on
        #: demand by the public accessors, the scheduler's hot loop works
        #: on bare (index, gate) pairs.  Shared with the template (never
        #: mutated), as are the successor lists and trailing gates.
        self._gates: dict[int, Gate] = template.gates
        self._succ: dict[int, list[int]] = template.succ
        self._pred_count: dict[int, int] = dict(template.pred_count)
        self._frontier: set[int] = set(template.frontier)
        self._executed: set[int] = set()
        self._remaining = len(template.gates)
        self._revision = 0
        if attach_single_qubit_gates:
            # The per-gate lists are never mutated after construction, so
            # a shallow copy isolates this run's pops from the template.
            #: index of a two-qubit gate -> single-qubit gates to fire first.
            self.pending_single_qubit: dict[int, list[Gate]] = dict(
                template.pending_single_qubit
            )
            #: single-qubit gates with no later two-qubit gate on their qubit.
            self.trailing_single_qubit: list[Gate] = template.trailing_single_qubit
        else:
            self.pending_single_qubit = {}
            self.trailing_single_qubit = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of two-qubit gates in the DAG."""
        return len(self._gates)

    @property
    def num_remaining(self) -> int:
        """Number of gates not yet executed."""
        return self._remaining

    @property
    def is_done(self) -> bool:
        """True when every two-qubit gate has been executed."""
        return self._remaining == 0

    @property
    def revision(self) -> int:
        """Counter bumped on every :meth:`execute`.

        The frontier and every lookahead slice are functions of the set
        of executed gates, so callers (the scheduler) can cache them
        between revisions instead of re-deriving them per iteration.
        """
        return self._revision

    def frontier(self) -> list[DAGNode]:
        """Gates whose dependencies are all satisfied, in program order."""
        gates = self._gates
        return [DAGNode(i, gates[i]) for i in sorted(self._frontier)]

    def frontier_items(self) -> list[tuple[int, Gate]]:
        """The frontier as bare (index, gate) pairs (scheduler fast path)."""
        gates = self._gates
        return [(i, gates[i]) for i in sorted(self._frontier)]

    def node(self, index: int) -> DAGNode:
        """Return the node with the given program index."""
        return DAGNode(index, self._gates[index])

    def successors(self, index: int) -> list[DAGNode]:
        """Immediate successors of a node."""
        gates = self._gates
        return [DAGNode(i, gates[i]) for i in self._succ.get(index, [])]

    def lookahead(self, depth: int, skip_frontier: bool = False) -> list[DAGNode]:
        """Breadth-first slice of up to ``depth`` dependency layers.

        Returns the not-yet-executed nodes reachable within ``depth``
        layers starting from the frontier, in breadth-first order.  With
        ``skip_frontier`` the frontier layer itself is excluded, which is
        what the extended SABRE-style heuristic wants.
        """
        if depth <= 0:
            return []
        gates = self._gates
        result: list[DAGNode] = []
        seen: set[int] = set(self._frontier)
        layer = list(sorted(self._frontier))
        if not skip_frontier:
            result.extend(DAGNode(i, gates[i]) for i in layer)
        for _ in range(depth - 1 if not skip_frontier else depth):
            next_layer: list[int] = []
            for index in layer:
                for succ in self._succ.get(index, []):
                    if succ in seen or succ in self._executed:
                        continue
                    seen.add(succ)
                    next_layer.append(succ)
            next_layer.sort()
            result.extend(DAGNode(i, gates[i]) for i in next_layer)
            layer = next_layer
            if not layer:
                break
        return result

    def lookahead_pairs(self, depth: int, skip_frontier: bool = False) -> list[tuple[int, int]]:
        """Qubit pairs of :meth:`lookahead`, built without the node list.

        The scheduler consumes lookahead slices as qubit pairs once per
        DAG revision; producing them directly skips the node-object
        round-trip while walking the identical breadth-first order.
        """
        if depth <= 0:
            return []
        gates = self._gates
        succ = self._succ
        executed = self._executed
        result: list[tuple[int, int]] = []
        seen: set[int] = set(self._frontier)
        layer = sorted(self._frontier)
        if not skip_frontier:
            for index in layer:
                qubits = gates[index].qubits
                result.append((qubits[0], qubits[1]))
        for _ in range(depth - 1 if not skip_frontier else depth):
            next_layer: list[int] = []
            for index in layer:
                for successor in succ.get(index, ()):
                    if successor in seen or successor in executed:
                        continue
                    seen.add(successor)
                    next_layer.append(successor)
            if not next_layer:
                break
            next_layer.sort()
            for index in next_layer:
                qubits = gates[index].qubits
                result.append((qubits[0], qubits[1]))
            layer = next_layer
        return result

    def gates_in_first_layers(self, num_layers: int) -> list[Gate]:
        """Gates in the first ``num_layers`` dependency layers (Eq. 3 input)."""
        return [node.gate for node in self.lookahead(num_layers)]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def execute(self, index: int) -> list[DAGNode]:
        """Retire a frontier gate; return the successors that became ready."""
        if index not in self._gates:
            raise SchedulingError(f"gate index {index} is not part of the DAG")
        if index in self._executed:
            raise SchedulingError(f"gate index {index} was already executed")
        if index not in self._frontier:
            raise SchedulingError(f"gate index {index} is not in the frontier")
        return [DAGNode(i, gate) for i, gate in self.retire(index)]

    def retire(self, index: int) -> list[tuple[int, Gate]]:
        """:meth:`execute` without the membership guards (scheduler fast path).

        Returns bare (index, gate) pairs — sortable without a key
        function, since program indices are unique.  The caller must
        pass a current frontier index; a stale index raises ``KeyError``
        from the frontier set rather than the descriptive
        :class:`SchedulingError` of :meth:`execute`.
        """
        self._frontier.remove(index)
        self._executed.add(index)
        self._remaining -= 1
        self._revision += 1
        newly_ready: list[tuple[int, Gate]] = []
        pred_count = self._pred_count
        gates = self._gates
        for succ in self._succ.get(index, ()):
            count = pred_count[succ] - 1
            pred_count[succ] = count
            if count == 0:
                self._frontier.add(succ)
                newly_ready.append((succ, gates[succ]))
        return newly_ready

    def retire_many(self, indices: list[int]) -> list[tuple[int, Gate]]:
        """Batch :meth:`retire` for one execution round of the scheduler.

        Equivalent to concatenating ``retire(i)`` for each index in
        order, with the per-call bookkeeping hoisted out of the loop.
        """
        frontier = self._frontier
        executed = self._executed
        pred_count = self._pred_count
        succ_map = self._succ
        gates = self._gates
        newly_ready: list[tuple[int, Gate]] = []
        append = newly_ready.append
        for index in indices:
            frontier.remove(index)
            executed.add(index)
            for succ in succ_map.get(index, ()):
                count = pred_count[succ] - 1
                pred_count[succ] = count
                if count == 0:
                    frontier.add(succ)
                    append((succ, gates[succ]))
        self._remaining -= len(indices)
        self._revision += len(indices)
        return newly_ready

    def topological_order(self) -> list[DAGNode]:
        """Return all nodes in a valid topological (program) order."""
        pred = dict(self._pred_count)
        # Rebuild pristine in-degrees (independent of execution state).
        counts: dict[int, int] = {i: 0 for i in self._gates}
        for src, succs in self._succ.items():
            for dst in succs:
                counts[dst] += 1
        queue = deque(sorted(i for i, c in counts.items() if c == 0))
        order: list[DAGNode] = []
        gates = self._gates
        while queue:
            index = queue.popleft()
            order.append(DAGNode(index, gates[index]))
            for succ in self._succ.get(index, []):
                counts[succ] -= 1
                if counts[succ] == 0:
                    queue.append(succ)
        del pred
        if len(order) != len(self._gates):  # pragma: no cover - defensive
            raise SchedulingError("dependency graph contains a cycle")
        return order
