"""Dependency DAG over the two-qubit gates of a circuit.

Section 3.1 of the paper maps the quantum program onto a directed acyclic
graph whose vertices are gates and whose edges encode data dependence.
The S-SYNC scheduler (Algorithm 1) only routes *two-qubit* gates — a
single-qubit gate is always executable wherever its ion sits — so the DAG
here is built over two-qubit gates only, which keeps the frontier small.

The class supports exactly the operations Algorithm 1 needs:

* ``frontier`` — the set of gates whose predecessors have all executed,
* ``execute(node)`` — retire a frontier gate and promote its successors,
* ``lookahead(k)`` — the first ``k`` dependency layers, used by the
  extended heuristic and the intra-trap mapping score (Eq. 3).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class DAGNode:
    """A two-qubit gate plus its position in the original program order."""

    index: int
    gate: Gate

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.gate.qubits


class DependencyDAG:
    """Mutable dependency graph consumed front-to-back by the scheduler."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self._nodes: dict[int, DAGNode] = {}
        self._succ: dict[int, list[int]] = defaultdict(list)
        self._pred_count: dict[int, int] = {}
        self._frontier: list[int] = []
        self._executed: set[int] = set()
        self._remaining = 0
        self._build(circuit)

    def _build(self, circuit: QuantumCircuit) -> None:
        last_node_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(circuit.gates):
            if not gate.is_two_qubit:
                continue
            node = DAGNode(index, gate)
            self._nodes[index] = node
            preds: set[int] = set()
            for q in gate.qubits:
                if q in last_node_on_qubit:
                    preds.add(last_node_on_qubit[q])
                last_node_on_qubit[q] = index
            self._pred_count[index] = len(preds)
            for p in preds:
                self._succ[p].append(index)
            if not preds:
                self._frontier.append(index)
        self._remaining = len(self._nodes)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of two-qubit gates in the DAG."""
        return len(self._nodes)

    @property
    def num_remaining(self) -> int:
        """Number of gates not yet executed."""
        return self._remaining

    @property
    def is_done(self) -> bool:
        """True when every two-qubit gate has been executed."""
        return self._remaining == 0

    def frontier(self) -> list[DAGNode]:
        """Gates whose dependencies are all satisfied, in program order."""
        return [self._nodes[i] for i in sorted(self._frontier)]

    def node(self, index: int) -> DAGNode:
        """Return the node with the given program index."""
        return self._nodes[index]

    def successors(self, index: int) -> list[DAGNode]:
        """Immediate successors of a node."""
        return [self._nodes[i] for i in self._succ.get(index, [])]

    def lookahead(self, depth: int, skip_frontier: bool = False) -> list[DAGNode]:
        """Breadth-first slice of up to ``depth`` dependency layers.

        Returns the not-yet-executed nodes reachable within ``depth``
        layers starting from the frontier, in breadth-first order.  With
        ``skip_frontier`` the frontier layer itself is excluded, which is
        what the extended SABRE-style heuristic wants.
        """
        if depth <= 0:
            return []
        result: list[DAGNode] = []
        seen: set[int] = set(self._frontier)
        layer = list(sorted(self._frontier))
        if not skip_frontier:
            result.extend(self._nodes[i] for i in layer)
        for _ in range(depth - 1 if not skip_frontier else depth):
            next_layer: list[int] = []
            for index in layer:
                for succ in self._succ.get(index, []):
                    if succ in seen or succ in self._executed:
                        continue
                    seen.add(succ)
                    next_layer.append(succ)
            next_layer.sort()
            result.extend(self._nodes[i] for i in next_layer)
            layer = next_layer
            if not layer:
                break
        return result

    def gates_in_first_layers(self, num_layers: int) -> list[Gate]:
        """Gates in the first ``num_layers`` dependency layers (Eq. 3 input)."""
        return [node.gate for node in self.lookahead(num_layers)]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def execute(self, index: int) -> list[DAGNode]:
        """Retire a frontier gate; return the successors that became ready."""
        if index not in self._nodes:
            raise SchedulingError(f"gate index {index} is not part of the DAG")
        if index in self._executed:
            raise SchedulingError(f"gate index {index} was already executed")
        if index not in self._frontier:
            raise SchedulingError(f"gate index {index} is not in the frontier")
        self._frontier.remove(index)
        self._executed.add(index)
        self._remaining -= 1
        newly_ready: list[DAGNode] = []
        for succ in self._succ.get(index, []):
            self._pred_count[succ] -= 1
            if self._pred_count[succ] == 0:
                self._frontier.append(succ)
                newly_ready.append(self._nodes[succ])
        return newly_ready

    def topological_order(self) -> list[DAGNode]:
        """Return all nodes in a valid topological (program) order."""
        pred = dict(self._pred_count)
        # Rebuild pristine in-degrees (independent of execution state).
        counts: dict[int, int] = {i: 0 for i in self._nodes}
        for src, succs in self._succ.items():
            for dst in succs:
                counts[dst] += 1
        queue = deque(sorted(i for i, c in counts.items() if c == 0))
        order: list[DAGNode] = []
        while queue:
            index = queue.popleft()
            order.append(self._nodes[index])
            for succ in self._succ.get(index, []):
                counts[succ] -= 1
                if counts[succ] == 0:
                    queue.append(succ)
        del pred
        if len(order) != len(self._nodes):  # pragma: no cover - defensive
            raise SchedulingError("dependency graph contains a cycle")
        return order
