"""Allow ``python -m repro <subcommand>`` to run the CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
