"""Batch-compilation runtime: declarative jobs, schedule caching, fan-out.

The runtime turns the library's one-circuit-at-a-time compilers into a
throughput engine:

* :mod:`repro.runtime.jobs` — the declarative :class:`CompileJob` spec
  plus deterministic fingerprinting of circuits, devices and configs;
* :mod:`repro.runtime.cache` — an in-memory LRU (optionally backed by an
  on-disk JSON store) of compiled schedules keyed by job fingerprint;
* :mod:`repro.runtime.pool` — the :class:`BatchCompiler` engine that
  deduplicates identical jobs, fans misses out over a multiprocessing
  worker pool (with a deterministic serial fallback) and re-evaluates
  every schedule in the parent so serial, parallel and cached paths
  produce identical records; ``warm=True`` keeps the pool alive across
  batches and ``run(..., on_outcome=...)`` streams each outcome as it
  completes (what :mod:`repro.service` is built on);
* :mod:`repro.runtime.api` — :func:`run_batch` / :func:`run_sweep`
  convenience entry points;
* :mod:`repro.runtime.manifest` — JSON/YAML job-manifest parsing for the
  ``python -m repro batch`` CLI.
"""

from repro.runtime.api import run_batch, run_sweep
from repro.runtime.cache import CacheStats, CachedCompilation, ScheduleCache
from repro.runtime.jobs import (
    CompileJob,
    circuit_fingerprint,
    compile_job,
    config_fingerprint,
    device_fingerprint,
)
from repro.runtime.manifest import (
    job_from_dict,
    jobs_from_manifest,
    jobs_from_manifest_text,
    load_manifest,
    ssync_config_from_dict,
)
from repro.runtime.pool import BatchCompiler, BatchResult, JobOutcome

__all__ = [
    "BatchCompiler",
    "BatchResult",
    "CacheStats",
    "CachedCompilation",
    "CompileJob",
    "JobOutcome",
    "ScheduleCache",
    "circuit_fingerprint",
    "compile_job",
    "config_fingerprint",
    "device_fingerprint",
    "job_from_dict",
    "jobs_from_manifest",
    "jobs_from_manifest_text",
    "load_manifest",
    "run_batch",
    "run_sweep",
    "ssync_config_from_dict",
]
