"""Declarative compile jobs and deterministic fingerprinting.

A :class:`CompileJob` names everything that influences one compilation —
circuit, device, compiler, initial mapping, :class:`SSyncConfig` — plus
the evaluation settings (gate implementation, heating model).  Jobs are
plain picklable values, so they can be shipped to worker processes, and
they fingerprint deterministically, so identical work can be recognised
across batches, processes and machines.

Two fingerprints matter:

* the **compile fingerprint** covers exactly the inputs of the compiler
  (circuit + device + compiler + mapping + config) and keys the schedule
  cache — two jobs that differ only in evaluation settings share one
  compilation;
* the full **fingerprint** additionally covers the evaluation settings
  and identifies the job's result record.

All fingerprints are SHA-256 digests of canonical JSON (sorted keys,
no whitespace), so they are stable across processes regardless of hash
randomisation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import build_benchmark
from repro.core.compiler import SSyncConfig
from repro.core.result import CompilationResult
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.presets import paper_device
from repro.noise.gate_times import GateImplementation
from repro.noise.heating import HeatingParameters
from repro.registry import compiler_spec, make_pipeline
from repro.registry import normalize_compiler_name as normalize_compiler_name  # noqa: F401
from repro.schedule.serialize import device_to_dict

# ``normalize_compiler_name`` used to live here; it moved to
# :mod:`repro.registry` so every entry point shares one alias table.  The
# re-export above is a deprecation shim — import it from repro.registry.


def _digest(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Content fingerprint of a circuit: qubit count plus the gate list."""
    return _digest(
        {
            "num_qubits": circuit.num_qubits,
            "gates": [
                [gate.name, list(gate.qubits), list(gate.params)] for gate in circuit
            ],
        }
    )


def device_fingerprint(device: QCCDDevice) -> str:
    """Content fingerprint of a device: traps, capacities and connections."""
    return _digest(device_to_dict(device))


def config_fingerprint(config: SSyncConfig | None) -> str:
    """Fingerprint of an :class:`SSyncConfig` (``None`` means the defaults)."""
    return _digest(asdict(config or SSyncConfig()))


@dataclass(frozen=True)
class CompileJob:
    """One (circuit, device, compiler, config, evaluation) work item.

    ``circuit`` and ``device`` accept either concrete objects or names —
    a Table-2 benchmark name (``"qft_24"``) and a paper topology name
    (``"G-2x3"``) respectively — so manifests stay declarative and jobs
    stay cheap to pickle.

    ``label``/``parameter``/``value`` are presentation metadata carried
    into sweep records; they do not affect the fingerprints.
    """

    circuit: QuantumCircuit | str
    device: QCCDDevice | str
    capacity: int | None = None
    compiler: str = "s-sync"
    initial_mapping: str | None = None
    config: SSyncConfig | None = None
    gate_implementation: GateImplementation | str = GateImplementation.FM
    heating: HeatingParameters | None = None
    label: str = ""
    parameter: str = ""
    value: float | str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_circuit(self) -> QuantumCircuit:
        """Materialise the circuit (building a named benchmark if needed)."""
        if isinstance(self.circuit, QuantumCircuit):
            return self.circuit
        return build_benchmark(self.circuit)

    def resolve_device(self) -> QCCDDevice:
        """Materialise the device (building a named preset if needed)."""
        if isinstance(self.device, QCCDDevice):
            if self.capacity is not None:
                raise ReproError(
                    "CompileJob.capacity only applies when the device is given by name"
                )
            return self.device
        return paper_device(self.device, self.capacity)

    def resolved_compiler(self) -> str:
        """Canonical compiler name (validates the alias via the registry)."""
        return normalize_compiler_name(self.compiler)

    def resolved_mapping(self) -> str:
        """The first-level mapping this job will use, as recorded.

        Compilers that bring their own fixed mapping (per their registry
        spec) record the empty string.
        """
        if not compiler_spec(self.compiler).accepts_mapping:
            return ""
        if self.initial_mapping is not None:
            return self.initial_mapping
        return (self.config or SSyncConfig()).default_mapping

    def resolved_gate_implementation(self) -> GateImplementation:
        """The evaluation gate implementation as an enum member."""
        return GateImplementation.from_name(self.gate_implementation)

    # ------------------------------------------------------------------
    # fingerprints
    # ------------------------------------------------------------------
    def compile_key(self) -> dict[str, Any]:
        """The canonical payload hashed into the compile fingerprint.

        Memoised per instance — building it re-serialises the whole gate
        list, and both fingerprints need it.
        """
        cached = self.__dict__.get("_compile_key")
        if cached is not None:
            return cached
        spec = compiler_spec(self.compiler)
        key: dict[str, Any] = {
            "circuit": circuit_fingerprint(self.resolve_circuit()),
            "device": device_fingerprint(self.resolve_device()),
            "compiler": spec.name,
        }
        if spec.accepts_mapping:
            key["mapping"] = self.resolved_mapping()
        if spec.accepts_config:
            key["config"] = asdict(self.config or SSyncConfig())
        object.__setattr__(self, "_compile_key", key)
        return key

    def compile_fingerprint(self) -> str:
        """Fingerprint of the compilation inputs (the schedule-cache key).

        Memoised per instance: hashing re-serialises the whole gate list,
        and a batch run asks for each fingerprint several times.
        """
        cached = self.__dict__.get("_compile_fingerprint")
        if cached is None:
            cached = _digest(self.compile_key())
            object.__setattr__(self, "_compile_fingerprint", cached)
        return cached

    def fingerprint(self) -> str:
        """Fingerprint of the full job, evaluation settings included."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = _digest(
                {
                    "compile": self.compile_key(),
                    "gate_implementation": self.resolved_gate_implementation().value,
                    "heating": asdict(self.heating or HeatingParameters()),
                }
            )
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def describe(self) -> dict[str, object]:
        """Short human-readable summary used by CLI tables."""
        circuit = self.circuit if isinstance(self.circuit, str) else self.circuit.name
        device = self.device if isinstance(self.device, str) else self.device.name
        return {
            "circuit": circuit,
            "device": device,
            "compiler": self.resolved_compiler(),
            "mapping": self.resolved_mapping() or "-",
            "gate_implementation": self.resolved_gate_implementation().value,
        }


def compile_job(job: CompileJob) -> CompilationResult:
    """Execute the compilation stage of ``job`` (no evaluation).

    Resolves the compiler through :mod:`repro.registry`, so any backend
    registered via :func:`repro.registry.register_compiler` — built-in or
    third-party — runs here.  This is the function worker processes run;
    it deliberately touches no shared state.
    """
    circuit = job.resolve_circuit()
    device = job.resolve_device()
    spec = compiler_spec(job.compiler)
    if job.initial_mapping is not None and not spec.accepts_mapping:
        raise ReproError(
            f"compiler {spec.name!r} brings its own initial mapping; "
            f"initial_mapping={job.initial_mapping!r} would be ignored"
        )
    pipeline = make_pipeline(spec.name, device, config=job.config)
    if spec.accepts_mapping:
        return pipeline.compile(circuit, initial_mapping=job.initial_mapping)
    return pipeline.compile(circuit)
