"""Job manifests: declarative batch descriptions for ``repro batch``.

A manifest is a JSON (or YAML, when PyYAML is installed) document with a
job list and optional shared defaults::

    {
      "defaults": {"device": "G-2x3", "gate_implementation": "fm"},
      "jobs": [
        {"circuit": "qft_24"},
        {"circuit": "bv_64", "device": "L-6", "mapping": "sta"},
        {"circuit": "qft_24", "compiler": "murali"},
        {"circuit": "adder_32", "config": {"lookahead_depth": 0}}
      ]
    }

A bare JSON list of job objects is also accepted.  Each job object
supports the keys ``circuit`` (benchmark name or ``.qasm`` path),
``device``/``capacity``, ``compiler``, ``mapping`` (or
``initial_mapping``), ``gate_implementation``, ``heating`` (a mapping of
:class:`HeatingParameters` fields), ``config`` (see
:func:`ssync_config_from_dict`) and the presentation metadata ``label``,
``parameter``, ``value``.

Every way a manifest can be malformed raises the typed
:class:`~repro.exceptions.ManifestError` (a :class:`ReproError`
subclass), so callers that accept untrusted documents — the
:mod:`repro.service` HTTP front-end chief among them — can map bad
requests onto structured 4xx responses without guessing which failures
were the client's fault.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from dataclasses import replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.circuit.qasm import qasm_to_circuit
from repro.core.compiler import SSyncConfig
from repro.core.scheduler import SchedulerConfig
from repro.exceptions import ManifestError, ReproError
from repro.hardware.presets import paper_device
from repro.noise.heating import HeatingParameters
from repro.registry import compiler_spec, normalize_compiler_name
from repro.runtime.jobs import CompileJob

#: Manifest keys understood by :func:`job_from_dict`.
_JOB_KEYS = frozenset(
    {
        "circuit",
        "device",
        "capacity",
        "compiler",
        "mapping",
        "initial_mapping",
        "gate_implementation",
        "heating",
        "config",
        "label",
        "parameter",
        "value",
    }
)

_SCHEDULER_KEYS = frozenset(f.name for f in dataclass_fields(SchedulerConfig))
_TOP_LEVEL_KEYS = frozenset(
    {"default_mapping", "mapping_reserve_per_trap", "mapping_lookahead_layers"}
)


def ssync_config_from_dict(data: Mapping[str, Any]) -> SSyncConfig:
    """Build an :class:`SSyncConfig` from flat manifest keys.

    Accepts the top-level mapping fields, any :class:`SchedulerConfig`
    field, and the convenience knob ``weight_ratio`` (the Fig. 14 ``r``).
    """
    config = SSyncConfig()
    top: dict[str, Any] = {}
    scheduler: dict[str, Any] = {}
    ratio: float | None = None
    for key, value in data.items():
        if key == "weight_ratio":
            ratio = float(value)
        elif key in _TOP_LEVEL_KEYS:
            top[key] = value
        elif key in _SCHEDULER_KEYS:
            scheduler[key] = value
        else:
            raise ManifestError(f"unknown S-SYNC config key {key!r} in manifest")
    if scheduler:
        config = replace(config, scheduler=replace(config.scheduler, **scheduler))
    if top:
        config = replace(config, **top)
    if ratio is not None:
        config = config.with_weight_ratio(ratio)
    return config


@lru_cache(maxsize=64)
def _device_spec_error(device: str, capacity: "int | None") -> str | None:
    """``None`` when the spec resolves, else the builder's error message.

    Memoised because validation materialises the device (including its
    dense distance matrices) only to discard it, and a sweep-shaped
    manifest repeats one spec across every job.
    """
    try:
        paper_device(device, capacity)
    except (ReproError, TypeError, ValueError) as exc:
        return str(exc)
    return None


def _validate_device_spec(device: str, capacity: Any) -> None:
    if isinstance(capacity, int) or capacity is None:
        error = _device_spec_error(device, capacity)
    else:  # unhashable/garbage capacity cannot go through the cache
        error = _device_spec_error.__wrapped__(device, capacity)
    if error is not None:
        raise ManifestError(f"invalid device spec {device!r}: {error}")


def _resolve_circuit_spec(spec: Any) -> Any:
    """A ``.qasm`` path is loaded eagerly; benchmark names stay symbolic."""
    if isinstance(spec, str) and spec.lower().endswith(".qasm"):
        path = Path(spec)
        if not path.exists():
            raise ManifestError(f"manifest circuit file {spec!r} does not exist")
        return qasm_to_circuit(path.read_text(), name=path.stem)
    return spec


def _normalize_mapping_key(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Fold the ``mapping`` alias into ``initial_mapping`` before merging.

    Normalising each dict separately keeps a job's ``mapping`` from being
    silently overridden by a defaults-level ``initial_mapping``.
    """
    out = dict(spec)
    if "mapping" in out:
        out.setdefault("initial_mapping", out.pop("mapping"))
    return out


def job_from_dict(
    data: Mapping[str, Any], defaults: Mapping[str, Any] | None = None
) -> CompileJob:
    """Build one :class:`CompileJob` from a manifest job object."""
    merged: dict[str, Any] = _normalize_mapping_key(defaults or {})
    merged.update(_normalize_mapping_key(data))
    unknown = set(merged) - _JOB_KEYS
    if unknown:
        raise ManifestError(f"unknown manifest job keys: {', '.join(sorted(unknown))}")
    if "circuit" not in merged:
        raise ManifestError("every manifest job needs a 'circuit'")
    if "device" not in merged:
        raise ManifestError("every manifest job needs a 'device' (directly or via defaults)")

    config = merged.get("config")
    if isinstance(config, Mapping):
        config = ssync_config_from_dict(config)
    heating = merged.get("heating")
    if isinstance(heating, Mapping):
        try:
            heating = HeatingParameters(**heating)
        except TypeError as exc:
            raise ManifestError(f"invalid heating parameters in manifest: {exc}") from exc

    mapping = merged.get("initial_mapping")
    # Resolve the compiler through the registry and validate the device
    # spec now, so a typo fails with the job's index in the error (and a
    # 4xx from the service) instead of mid-batch in a worker process.
    try:
        compiler = normalize_compiler_name(str(merged.get("compiler", "s-sync")))
    except ReproError as exc:
        raise ManifestError(str(exc)) from exc
    device = merged["device"]
    if isinstance(device, str):
        _validate_device_spec(device, merged.get("capacity"))
    if mapping is not None and not compiler_spec(compiler).accepts_mapping:
        if "initial_mapping" in _normalize_mapping_key(data):
            raise ManifestError(
                f"compiler {compiler!r} brings its own initial mapping; "
                f"remove mapping={mapping!r} from the job"
            )
        # A defaults-level mapping is meant for the jobs whose compiler
        # has pluggable mappings; fixed-mapping compilers just skip it.
        mapping = None
    return CompileJob(
        circuit=_resolve_circuit_spec(merged["circuit"]),
        device=merged["device"],
        capacity=merged.get("capacity"),
        compiler=compiler,
        initial_mapping=mapping,
        config=config,
        gate_implementation=merged.get("gate_implementation", "fm"),
        heating=heating,
        label=str(merged.get("label", "")),
        parameter=str(merged.get("parameter", "")),
        value=merged.get("value", ""),
    )


def jobs_from_manifest(document: Any) -> list[CompileJob]:
    """Parse a loaded manifest document (mapping or bare job list)."""
    if isinstance(document, Sequence) and not isinstance(document, (str, bytes)):
        defaults: Mapping[str, Any] = {}
        job_specs = document
    elif isinstance(document, Mapping):
        defaults = document.get("defaults", {})
        job_specs = document.get("jobs")
        if job_specs is None:
            raise ManifestError("manifest object needs a 'jobs' list")
    else:
        raise ManifestError("a manifest must be a JSON object or a list of jobs")
    if not isinstance(defaults, Mapping):
        raise ManifestError("manifest 'defaults' must be an object")
    jobs = []
    for index, spec in enumerate(job_specs):
        if not isinstance(spec, Mapping):
            raise ManifestError(f"manifest job #{index} is not an object")
        try:
            jobs.append(job_from_dict(spec, defaults=defaults))
        except ReproError as exc:
            raise ManifestError(f"manifest job #{index}: {exc}") from exc
    if not jobs:
        raise ManifestError("the manifest contains no jobs")
    return jobs


def manifest_document_from_text(text: "str | bytes") -> Any:
    """Decode a raw JSON manifest body into its document form.

    Split out of :func:`jobs_from_manifest_text` so callers that need the
    *document* as well as the jobs — the service journals the document
    verbatim, which is what makes interrupted jobs resubmittable after a
    restart — decode exactly once.  Raises :class:`ManifestError` for
    bodies that are not UTF-8 or not JSON.
    """
    if isinstance(text, bytes):
        try:
            text = text.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ManifestError(f"manifest body is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestError(f"invalid JSON manifest: {exc}") from exc


def jobs_from_manifest_text(text: "str | bytes") -> list[CompileJob]:
    """Parse a JSON manifest from raw text (the service request body).

    This is the one request-parsing path shared by the HTTP front-end
    and JSON file loading: decode, then :func:`jobs_from_manifest`.
    Raises :class:`ManifestError` for undecodable or invalid documents.
    """
    return jobs_from_manifest(manifest_document_from_text(text))


def load_manifest(path: "Path | str") -> list[CompileJob]:
    """Read a JSON or YAML manifest file into compile jobs."""
    path = Path(path)
    if not path.exists():
        raise ManifestError(f"manifest file {path} does not exist")
    text = path.read_text()
    if path.suffix.lower() in {".yaml", ".yml"}:
        try:
            import yaml  # type: ignore[import-untyped]
        except ImportError as exc:
            raise ManifestError(
                "YAML manifests need the optional PyYAML dependency; "
                "install it or use a JSON manifest"
            ) from exc
        document = yaml.safe_load(text)
        return jobs_from_manifest(document)
    try:
        return jobs_from_manifest_text(text)
    except ManifestError as exc:
        raise ManifestError(f"manifest {path}: {exc}") from exc
