"""Content-addressed cache of compiled schedules.

Compilation dominates the cost of every sweep and comparison pipeline,
and the same (circuit, device, config) point recurs constantly — across
the gate-implementation sweep, across repeated benchmark runs, across
CLI invocations.  :class:`ScheduleCache` memoises compilations keyed by
the job's compile fingerprint (:meth:`CompileJob.compile_fingerprint`):
an in-memory LRU serves the hot set, and an optional on-disk store (one
``<fingerprint>.sched`` file per fingerprint) makes hits survive process
restarts.

Entries store plain data (the binary-encoded schedule, via
:mod:`repro.schedule.serialize`), never live objects, so a cached result
replays identically to a fresh compilation no matter which process
produced it.  The on-disk **format v3** entry is a small binary
envelope: a magic + version header, a varint-framed JSON metadata
header (compiler/mapping names, compile time, statistics, pass timings
— no sidecar file), then the columnar schedule blob.  Entries written
by format v2 (one pretty JSON document per fingerprint) remain
readable: a disk hit on a legacy ``*.json`` entry decodes it, rewrites
it as ``*.sched`` in place, and counts a ``migrations`` statistic.

The cache is **thread-safe**: an internal lock guards the LRU table and
the counters, so any number of concurrently running batches (the service
scheduler runs several at once over one shared cache) can look up, store
and evict without torn LRU state or corrupted counters.  Disk I/O —
entry reads, the atomic write, the size-budget sweep — deliberately
happens *outside* the lock, so one slot faulting an entry in from disk
never stalls another slot's in-memory hits.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.exceptions import ReproError
from repro.schedule.schedule import Schedule
from repro.schedule.serialize import (
    read_varint,
    schedule_from_bytes,
    schedule_from_dict,
    schedule_to_bytes,
    schedule_to_dict,
    write_varint,
)

#: Format marker of on-disk cache entries.  Version 2 added the scheduler
#: statistics and per-pass timings alongside the schedule; version 3
#: switched the on-disk representation from one JSON document per entry
#: to the binary ``.sched`` envelope (JSON v2 entries stay readable and
#: are migrated on hit).
CACHE_FORMAT_VERSION = 3

#: Oldest on-disk format this library still reads (the JSON era).
CACHE_COMPAT_VERSIONS = (2, 3)

#: Magic prefix of a binary ``.sched`` cache entry.
ENTRY_MAGIC = b"RCEN"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or a snapshot of them)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_evictions: int = 0
    migrations: int = 0
    network_hits: int = 0
    network_misses: int = 0
    network_stores: int = 0
    network_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat dictionary for reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_evictions": self.disk_evictions,
            "migrations": self.migrations,
            "network_hits": self.network_hits,
            "network_misses": self.network_misses,
            "network_stores": self.network_stores,
            "network_errors": self.network_errors,
        }

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(**self.as_dict())


@dataclass(frozen=True)
class CachedCompilation:
    """One cached compilation: compile metadata plus the encoded schedule.

    The schedule travels as its **binary blob** (the columnar encoding
    from :func:`repro.schedule.serialize.schedule_to_bytes`), not as a
    live object or a JSON tree: the blob moves between worker processes
    and onto disk without any re-serialisation, and :meth:`schedule`
    decodes it lazily only when somebody actually needs the operation
    log.  ``statistics`` (the deterministic scheduler counters) and
    ``pass_timings`` (the pipeline's per-pass profile) travel with the
    schedule, so a cache hit replays the original compilation's full
    provenance — not just its operation log.
    """

    compiler_name: str
    mapping_name: str
    compile_time_s: float
    schedule_blob: bytes
    statistics: dict[str, int] = field(default_factory=dict)
    pass_timings: tuple[dict[str, Any], ...] = ()

    def schedule(self) -> Schedule:
        """Decode the live schedule object from the stored blob."""
        return schedule_from_bytes(self.schedule_blob)

    def to_bytes(self) -> bytes:
        """The binary ``.sched`` entry: header envelope + schedule blob.

        Layout: ``ENTRY_MAGIC``, one version byte, a varint-framed JSON
        metadata header (sorted keys, so identical entries encode to
        identical bytes), then the schedule blob verbatim to the end of
        the buffer.
        """
        meta = json.dumps(
            {
                "compiler_name": self.compiler_name,
                "mapping_name": self.mapping_name,
                "compile_time_s": self.compile_time_s,
                "statistics": dict(self.statistics),
                "pass_timings": [dict(t) for t in self.pass_timings],
            },
            sort_keys=True,
        ).encode("utf-8")
        out = bytearray(ENTRY_MAGIC)
        out.append(CACHE_FORMAT_VERSION)
        write_varint(out, len(meta))
        out += meta
        out += self.schedule_blob
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CachedCompilation":
        """Parse a binary entry written by :meth:`to_bytes`."""
        if data[: len(ENTRY_MAGIC)] != ENTRY_MAGIC:
            raise ReproError("not a binary cache entry (bad magic)")
        if len(data) < len(ENTRY_MAGIC) + 1:
            raise ReproError("truncated binary cache entry")
        version = data[len(ENTRY_MAGIC)]
        if version != CACHE_FORMAT_VERSION:
            raise ReproError(
                f"unsupported cache entry format version {version} "
                f"(this library writes version {CACHE_FORMAT_VERSION})"
            )
        meta_len, pos = read_varint(data, len(ENTRY_MAGIC) + 1)
        if pos + meta_len > len(data):
            raise ReproError("truncated binary cache entry")
        try:
            meta = json.loads(data[pos : pos + meta_len])
        except json.JSONDecodeError as exc:
            raise ReproError(f"corrupt binary cache entry header: {exc}") from exc
        blob = data[pos + meta_len :]
        try:
            return cls(
                compiler_name=meta["compiler_name"],
                mapping_name=meta["mapping_name"],
                compile_time_s=meta["compile_time_s"],
                schedule_blob=blob,
                statistics=dict(meta.get("statistics", {})),
                pass_timings=tuple(dict(t) for t in meta.get("pass_timings", ())),
            )
        except KeyError as exc:
            raise ReproError(f"cache entry is missing the {exc.args[0]!r} field") from exc

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (for JSON observers such as ``/v1/schedules``).

        Decodes the blob — use :meth:`to_bytes` on hot paths.
        """
        return {
            "format_version": CACHE_FORMAT_VERSION,
            "compiler_name": self.compiler_name,
            "mapping_name": self.mapping_name,
            "compile_time_s": self.compile_time_s,
            "schedule": schedule_to_dict(self.schedule()),
            "statistics": dict(self.statistics),
            "pass_timings": [dict(t) for t in self.pass_timings],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CachedCompilation":
        """Parse a dict-form entry (current, or the legacy v2 JSON format)."""
        version = data.get("format_version")
        if version not in CACHE_COMPAT_VERSIONS:
            raise ReproError(
                f"unsupported cache entry format version {version!r} "
                f"(this library writes version {CACHE_FORMAT_VERSION})"
            )
        try:
            # Both versions carry the schedule as a JSON tree here; the
            # blob is rebuilt through one decode/encode round-trip.
            return cls(
                compiler_name=data["compiler_name"],
                mapping_name=data["mapping_name"],
                compile_time_s=data["compile_time_s"],
                schedule_blob=schedule_to_bytes(schedule_from_dict(data["schedule"])),
                statistics=dict(data.get("statistics", {})),
                pass_timings=tuple(dict(t) for t in data.get("pass_timings", ())),
            )
        except KeyError as exc:
            raise ReproError(f"cache entry is missing the {exc.args[0]!r} field") from exc

    @classmethod
    def from_result(cls, result: "Any") -> "CachedCompilation":
        """Build an entry from a :class:`~repro.core.result.CompilationResult`."""
        return cls(
            compiler_name=result.compiler_name,
            mapping_name=result.mapping_name,
            compile_time_s=result.compile_time_s,
            schedule_blob=schedule_to_bytes(result.schedule),
            statistics=result.statistics_dict(),
            pass_timings=tuple(t.as_dict() for t in result.pass_timings),
        )


class ScheduleCache:
    """LRU cache of :class:`CachedCompilation` entries, optionally on disk.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory LRU tier.
    directory:
        When given, every stored entry is also written to
        ``<directory>/<fingerprint>.sched`` and memory misses fall back
        to disk (promoting hits back into memory).  Legacy
        ``<fingerprint>.json`` entries written by format v2 are still
        served and are rewritten in the binary format on their first
        hit.
    max_disk_bytes:
        Optional byte budget for the on-disk tier.  After every disk
        write, the least-recently-used entry files (by mtime — disk
        reads refresh it) are deleted until the tier fits the budget
        again; the entry just written is never evicted by its own
        store.  ``None`` (the default) leaves the disk tier unbounded.
    tiers:
        Optional remote tiers (:class:`~repro.runtime.cache_tier.CacheTier`
        instances, e.g. a fleet's shared network cache) consulted after a
        disk miss, in order.  A tier hit is promoted into memory *and*
        disk, so the next lookup is local; every local store is
        propagated to each tier best-effort.  Tiers are expected never to
        raise — an unreachable tier is a miss, not an error, so a dead
        network cache degrades the fleet to per-node caching instead of
        failing requests.
    """

    def __init__(
        self,
        max_entries: int = 256,
        directory: "Path | str | None" = None,
        max_disk_bytes: int | None = None,
        tiers: "Sequence[Any]" = (),
    ) -> None:
        if max_entries < 1:
            raise ReproError("a schedule cache needs room for at least one entry")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ReproError("the disk byte budget must be positive")
        self.max_entries = max_entries
        self.max_disk_bytes = max_disk_bytes
        self.tiers = tuple(tiers)
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, CachedCompilation]" = OrderedDict()
        self.stats = CacheStats()
        # One re-entrant lock guards the LRU table, the counters and the
        # disk-budget sweep.  Re-entrant because ``get`` promotes disk
        # entries through ``_insert`` while already holding it.
        self._lock = threading.RLock()
        # Bytes serialised to disk, keyed by codec ("binary" for .sched
        # writes; legacy JSON writes no longer happen but the label space
        # stays open).  Guarded by the lock; exposed by the scrape-time
        # collector when metrics are bound.
        self._serialize_bytes: dict[str, int] = {}
        # Live decode-latency histogram, attached by bind_metrics().
        self._decode_histogram: "Any | None" = None

    #: Glob patterns of the on-disk entry files, newest format first.
    _ENTRY_GLOBS = ("*.sched", "*.json")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _entry_paths(self) -> "list[Path]":
        """Every entry file on disk — current ``.sched`` and legacy ``.json``."""
        assert self.directory is not None
        paths: list[Path] = []
        for pattern in self._ENTRY_GLOBS:
            paths.extend(self.directory.glob(pattern))
        return paths

    def disk_bytes(self) -> int:
        """Total size of the on-disk entry files (0 without a disk tier)."""
        if self.directory is None:
            return 0
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                continue
        return total

    def disk_entries(self) -> int:
        """How many entry files the on-disk tier currently holds."""
        if self.directory is None:
            return 0
        return len(self._entry_paths())

    def bind_metrics(self, registry: "Any") -> None:
        """Expose this cache through a :class:`~repro.obs.MetricsRegistry`.

        Registers a scrape-time collector mirroring :attr:`stats` (the
        counters stay the single source of truth — the hot paths gain no
        extra bookkeeping) plus gauges for the in-memory entry count and
        the disk tier's entry files and bytes.  Also attaches a live
        ``repro_cache_decode_seconds`` histogram that disk-entry decodes
        observe from then on.
        """
        registry.register_collector(self._collect_metrics)
        self._decode_histogram = registry.histogram(
            "repro_cache_decode_seconds",
            "Wall time spent decoding one on-disk cache entry.",
            buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25),
        )

    def _collect_metrics(self) -> "list[Any]":
        from repro.obs.metrics import Counter, Gauge

        with self._lock:
            stats = self.stats.snapshot()
            entries = len(self._entries)
            serialize_bytes = dict(self._serialize_bytes)
        hits = Counter(
            "repro_cache_hits_total",
            "Schedule-cache hits, by serving tier.",
            ("tier",),
        )
        hits.labels(tier="memory").inc(stats.hits - stats.disk_hits - stats.network_hits)
        hits.labels(tier="disk").inc(stats.disk_hits)
        hits.labels(tier="network").inc(stats.network_hits)
        misses = Counter(
            "repro_cache_misses_total",
            "Schedule-cache misses: tier=local is a lookup that missed every "
            "tier; tier=network is one remote-tier consultation that missed.",
            ("tier",),
        )
        misses.labels(tier="local").inc(stats.misses)
        misses.labels(tier="network").inc(stats.network_misses)
        stores = Counter(
            "repro_cache_stores_total",
            "Compilations stored into the schedule cache, by tier.",
            ("tier",),
        )
        stores.labels(tier="local").inc(stats.stores)
        stores.labels(tier="network").inc(stats.network_stores)
        network_errors = Counter(
            "repro_cache_network_errors_total",
            "Remote cache-tier operations that failed or returned corrupt "
            "entries (always served locally instead — never an error).",
        )
        network_errors.inc(stats.network_errors)
        evictions = Counter(
            "repro_cache_evictions_total",
            "Schedule-cache entries evicted, by tier.",
            ("tier",),
        )
        evictions.labels(tier="memory").inc(stats.evictions)
        evictions.labels(tier="disk").inc(stats.disk_evictions)
        migrations = Counter(
            "repro_cache_migrations_total",
            "Legacy JSON cache entries rewritten in the binary format on hit.",
        )
        migrations.inc(stats.migrations)
        serialized = Counter(
            "repro_serialize_bytes_total",
            "Bytes of cache entries serialised to disk, by codec.",
            ("codec",),
        )
        for codec, count in sorted(serialize_bytes.items()):
            serialized.labels(codec=codec).inc(count)
        memory_entries = Gauge(
            "repro_cache_entries", "Entries currently in the in-memory LRU tier."
        )
        memory_entries.set(entries)
        disk_files = Gauge(
            "repro_cache_disk_entries", "Entry files currently in the on-disk tier."
        )
        disk_files.set(self.disk_entries())
        disk_size = Gauge(
            "repro_cache_disk_bytes", "Bytes used by the on-disk cache tier."
        )
        disk_size.set(self.disk_bytes())
        return [
            hits,
            misses,
            stores,
            network_errors,
            evictions,
            migrations,
            serialized,
            memory_entries,
            disk_files,
            disk_size,
        ]

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._entries:
                return True
        return self._disk_path_if_present(fingerprint) is not None

    def lookup(self, fingerprint: str) -> "tuple[CachedCompilation | None, str | None]":
        """Like :meth:`get`, but also reports where the entry came from.

        Returns ``(entry, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"``, ``"network"`` (a remote tier served it) or ``None``
        (a miss everywhere).  Concurrent batches use the tier to account
        run-local hit statistics without reading the shared counters,
        whose deltas interleave across overlapping runs.

        Disk reads (and remote-tier fetches) happen **outside** the lock
        — a slot faulting an entry in must not stall another slot's
        in-memory hits behind its I/O.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return entry, "memory"
        path = self._disk_path_if_present(fingerprint)
        if path is not None:
            entry = self._read_disk_entry(path)
            if entry is not None:
                if path.suffix == ".json":
                    # Legacy v2 entry: rewrite it in the binary format so
                    # the next hit decodes the fast path, and so the file
                    # the budget sweep sees carries today's mtime.
                    path = self._migrate_legacy_entry(fingerprint, entry, path)
                with self._lock:
                    self._insert(fingerprint, entry)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                # Refresh the file's recency so size-based eviction
                # treats disk reads as uses (LRU, not FIFO).
                try:
                    os.utime(path)
                except OSError:  # pragma: no cover - file raced away
                    pass
                return entry, "disk"
        entry = self._tier_fetch(fingerprint)
        if entry is not None:
            with self._lock:
                self._insert(fingerprint, entry)
                self.stats.hits += 1
                self.stats.network_hits += 1
            if self.directory is not None:
                # Promote into the disk tier so restarts (and the budget
                # sweep's recency) see the entry as a local citizen.
                self._write_entry_file(self._disk_path(fingerprint), entry)
            return entry, "network"
        with self._lock:
            self.stats.misses += 1
        return None, None

    def _tier_fetch(self, fingerprint: str) -> CachedCompilation | None:
        """First remote tier that serves ``fingerprint``; ``None`` on miss.

        A payload that fails to parse as a current-format binary entry —
        a corrupt blob, a foreign format, version skew — counts as a
        ``network_errors`` miss rather than raising: a bad shared-cache
        byte must never poison a local compilation.
        """
        for tier in self.tiers:
            payload = tier.load(fingerprint)
            if payload is None:
                with self._lock:
                    self.stats.network_misses += 1
                continue
            try:
                entry = CachedCompilation.from_bytes(payload)
            except (ReproError, IndexError, ValueError, TypeError):
                with self._lock:
                    self.stats.network_errors += 1
                continue
            return entry
        return None

    def get(self, fingerprint: str) -> CachedCompilation | None:
        """Look up a compilation; ``None`` on a miss (counted in stats)."""
        return self.lookup(fingerprint)[0]

    def peek(self, fingerprint: str) -> CachedCompilation | None:
        """Look up a compilation without touching stats or LRU recency.

        Read-only observers (the service's cached-schedule endpoint, CLI
        inspection) use this so they neither skew the hit/miss counters
        batch runs report as deltas nor promote entries over the working
        set.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                return entry
        path = self._disk_path_if_present(fingerprint)
        if path is not None:
            return self._read_disk_entry(path)
        return None

    def put(
        self, fingerprint: str, entry: CachedCompilation, propagate: bool = True
    ) -> "tuple[int, int]":
        """Store a compilation under ``fingerprint`` (memory and disk).

        Returns ``(evictions, disk_evictions)`` caused by this store, so
        a concurrently running batch can attribute the displacement it
        triggered to its own run-local statistics.  As with lookups, the
        disk write and budget sweep run outside the lock.

        With ``propagate=True`` (the default) the encoded entry is also
        offered to every remote tier, best-effort.  The server side of a
        network tier stores inbound ``PUT`` bodies with
        ``propagate=False`` so a fleet of mutually-tiered caches cannot
        echo entries back and forth.
        """
        with self._lock:
            evictions_before = self.stats.evictions
            self._insert(fingerprint, entry)
            self.stats.stores += 1
            evictions = self.stats.evictions - evictions_before
        disk_evictions = 0
        payload: bytes | None = None
        if self.directory is not None:
            path = self._disk_path(fingerprint)
            payload = self._write_entry_file(path, entry)
            # A v2-era file for the same fingerprint is now stale — the
            # .sched entry supersedes it.
            legacy = path.with_suffix(".json")
            try:
                legacy.unlink()
            except OSError:
                pass
            if self.max_disk_bytes is not None:
                disk_evictions = self._enforce_disk_budget(keep=path)
                if disk_evictions:
                    with self._lock:
                        self.stats.disk_evictions += disk_evictions
        if propagate and self.tiers:
            if payload is None:  # memory-only cache: encode once for the tiers
                payload = entry.to_bytes()
            for tier in self.tiers:
                if tier.store(fingerprint, payload):
                    with self._lock:
                        self.stats.network_stores += 1
                else:
                    with self._lock:
                        self.stats.network_errors += 1
        return evictions, disk_evictions

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier when ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            if disk and self.directory is not None:
                for path in self._entry_paths():
                    path.unlink()
                for path in self.directory.glob("*.tmp"):
                    path.unlink()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert(self, fingerprint: str, entry: CachedCompilation) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _enforce_disk_budget(self, keep: Path) -> int:
        """Delete LRU entry files until the disk tier fits its byte budget.

        ``keep`` (the entry that was just written) is exempt, so a budget
        smaller than a single entry still leaves the newest one usable.
        Returns how many entry files were deleted (the caller folds the
        count into the stats under the lock — this sweep itself runs
        without it, and concurrent sweeps tolerate each other through
        the ``OSError`` guards).
        """
        assert self.directory is not None and self.max_disk_bytes is not None
        entries: list[tuple[float, int, Path]] = []
        total = 0
        deleted = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total += stat.st_size
            if path != keep:
                entries.append((stat.st_mtime, stat.st_size, path))
        if total <= self.max_disk_bytes:
            return 0
        entries.sort()  # oldest mtime first
        for _, size, path in entries:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            deleted += 1
            if total <= self.max_disk_bytes:
                break
        return deleted

    def _disk_path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.sched"

    def _disk_path_if_present(self, fingerprint: str) -> Path | None:
        """The on-disk file serving ``fingerprint`` — ``.sched`` wins."""
        if self.directory is None:
            return None
        path = self._disk_path(fingerprint)
        if path.exists():
            return path
        legacy = path.with_suffix(".json")
        return legacy if legacy.exists() else None

    def _write_entry_file(self, path: Path, entry: CachedCompilation) -> bytes:
        """Atomically write ``entry`` in the binary format at ``path``.

        Unique temp name per writer: concurrent processes sharing a cache
        directory must not interleave writes before the atomic replace.
        Returns the encoded payload so callers (tier propagation) reuse
        the bytes instead of re-serialising.
        """
        payload = entry.to_bytes()
        tmp = path.with_suffix(f".{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)
        with self._lock:
            self._serialize_bytes["binary"] = (
                self._serialize_bytes.get("binary", 0) + len(payload)
            )
        return payload

    def _migrate_legacy_entry(
        self, fingerprint: str, entry: CachedCompilation, legacy_path: Path
    ) -> Path:
        """Rewrite a v2 JSON entry as a ``.sched`` file; returns the new path."""
        path = self._disk_path(fingerprint)
        self._write_entry_file(path, entry)
        try:
            legacy_path.unlink()
        except OSError:  # pragma: no cover - file raced away
            pass
        with self._lock:
            self.stats.migrations += 1
        return path

    def _read_disk_entry(self, path: Path) -> CachedCompilation | None:
        """Decode one on-disk entry file (either format); ``None`` skips it.

        An entry written by an older (or newer) library version is a
        cache miss, not an error: the caller recompiles and overwrites it
        with the current format.  Truncated or undecodable files raise —
        they signal corruption, not version skew.
        """
        started = time.perf_counter()
        if path.suffix == ".sched":
            raw = path.read_bytes()
            if len(raw) > len(ENTRY_MAGIC) and raw[: len(ENTRY_MAGIC)] == ENTRY_MAGIC:
                if raw[len(ENTRY_MAGIC)] != CACHE_FORMAT_VERSION:
                    return None
            try:
                entry = CachedCompilation.from_bytes(raw)
            except ReproError as exc:
                raise ReproError(f"corrupt cache entry {path}: {exc}") from exc
        else:
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ReproError(f"corrupt cache entry {path}: {exc}") from exc
            if data.get("format_version") not in CACHE_COMPAT_VERSIONS:
                return None
            entry = CachedCompilation.from_dict(data)
        histogram = self._decode_histogram
        if histogram is not None:
            histogram.observe(time.perf_counter() - started)
        return entry
