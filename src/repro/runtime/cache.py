"""Content-addressed cache of compiled schedules.

Compilation dominates the cost of every sweep and comparison pipeline,
and the same (circuit, device, config) point recurs constantly — across
the gate-implementation sweep, across repeated benchmark runs, across
CLI invocations.  :class:`ScheduleCache` memoises compilations keyed by
the job's compile fingerprint (:meth:`CompileJob.compile_fingerprint`):
an in-memory LRU serves the hot set, and an optional on-disk JSON store
(one file per fingerprint, via :mod:`repro.schedule.serialize`) makes
hits survive process restarts.

Entries store plain data (the serialised schedule), never live objects,
so a cached result replays identically to a fresh compilation no matter
which process produced it.

The cache is **thread-safe**: an internal lock guards the LRU table and
the counters, so any number of concurrently running batches (the service
scheduler runs several at once over one shared cache) can look up, store
and evict without torn LRU state or corrupted counters.  Disk I/O —
entry reads, the atomic write, the size-budget sweep — deliberately
happens *outside* the lock, so one slot faulting an entry in from disk
never stalls another slot's in-memory hits.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError
from repro.schedule.schedule import Schedule
from repro.schedule.serialize import schedule_from_dict, schedule_to_dict

#: Format marker stored in every on-disk cache entry.  Version 2 added the
#: scheduler statistics and per-pass timings alongside the schedule.
CACHE_FORMAT_VERSION = 2


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or a snapshot of them)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat dictionary for reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_evictions": self.disk_evictions,
        }

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(**self.as_dict())


@dataclass(frozen=True)
class CachedCompilation:
    """One cached compilation: compile metadata plus the schedule as data.

    ``statistics`` (the deterministic scheduler counters) and
    ``pass_timings`` (the pipeline's per-pass profile) travel with the
    schedule, so a cache hit replays the original compilation's full
    provenance — not just its operation log.
    """

    compiler_name: str
    mapping_name: str
    compile_time_s: float
    schedule_data: dict[str, Any]
    statistics: dict[str, int] = field(default_factory=dict)
    pass_timings: tuple[dict[str, Any], ...] = ()

    def schedule(self) -> Schedule:
        """Rebuild the live schedule object from the stored data."""
        return schedule_from_dict(self.schedule_data)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form written to disk."""
        return {
            "format_version": CACHE_FORMAT_VERSION,
            "compiler_name": self.compiler_name,
            "mapping_name": self.mapping_name,
            "compile_time_s": self.compile_time_s,
            "schedule": self.schedule_data,
            "statistics": dict(self.statistics),
            "pass_timings": [dict(t) for t in self.pass_timings],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CachedCompilation":
        """Parse an entry written by :meth:`to_dict`."""
        version = data.get("format_version")
        if version != CACHE_FORMAT_VERSION:
            raise ReproError(
                f"unsupported cache entry format version {version!r} "
                f"(this library writes version {CACHE_FORMAT_VERSION})"
            )
        try:
            return cls(
                compiler_name=data["compiler_name"],
                mapping_name=data["mapping_name"],
                compile_time_s=data["compile_time_s"],
                schedule_data=data["schedule"],
                statistics=dict(data.get("statistics", {})),
                pass_timings=tuple(dict(t) for t in data.get("pass_timings", ())),
            )
        except KeyError as exc:
            raise ReproError(f"cache entry is missing the {exc.args[0]!r} field") from exc

    @classmethod
    def from_result(cls, result: "Any") -> "CachedCompilation":
        """Build an entry from a :class:`~repro.core.result.CompilationResult`."""
        return cls(
            compiler_name=result.compiler_name,
            mapping_name=result.mapping_name,
            compile_time_s=result.compile_time_s,
            schedule_data=schedule_to_dict(result.schedule),
            statistics=result.statistics_dict(),
            pass_timings=tuple(t.as_dict() for t in result.pass_timings),
        )


class ScheduleCache:
    """LRU cache of :class:`CachedCompilation` entries, optionally on disk.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory LRU tier.
    directory:
        When given, every stored entry is also written to
        ``<directory>/<fingerprint>.json`` and memory misses fall back to
        disk (promoting hits back into memory).
    max_disk_bytes:
        Optional byte budget for the on-disk tier.  After every disk
        write, the least-recently-used entry files (by mtime — disk
        reads refresh it) are deleted until the tier fits the budget
        again; the entry just written is never evicted by its own
        store.  ``None`` (the default) leaves the disk tier unbounded.
    """

    def __init__(
        self,
        max_entries: int = 256,
        directory: "Path | str | None" = None,
        max_disk_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise ReproError("a schedule cache needs room for at least one entry")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ReproError("the disk byte budget must be positive")
        self.max_entries = max_entries
        self.max_disk_bytes = max_disk_bytes
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, CachedCompilation]" = OrderedDict()
        self.stats = CacheStats()
        # One re-entrant lock guards the LRU table, the counters and the
        # disk-budget sweep.  Re-entrant because ``get`` promotes disk
        # entries through ``_insert`` while already holding it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def disk_bytes(self) -> int:
        """Total size of the on-disk entry files (0 without a disk tier)."""
        if self.directory is None:
            return 0
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                continue
        return total

    def disk_entries(self) -> int:
        """How many entry files the on-disk tier currently holds."""
        if self.directory is None:
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def bind_metrics(self, registry: "Any") -> None:
        """Expose this cache through a :class:`~repro.obs.MetricsRegistry`.

        Registers a scrape-time collector mirroring :attr:`stats` (the
        counters stay the single source of truth — the hot paths gain no
        extra bookkeeping) plus gauges for the in-memory entry count and
        the disk tier's entry files and bytes.
        """
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> "list[Any]":
        from repro.obs.metrics import Counter, Gauge

        with self._lock:
            stats = self.stats.snapshot()
            entries = len(self._entries)
        hits = Counter(
            "repro_cache_hits_total",
            "Schedule-cache hits, by serving tier.",
            ("tier",),
        )
        hits.labels(tier="memory").inc(stats.hits - stats.disk_hits)
        hits.labels(tier="disk").inc(stats.disk_hits)
        misses = Counter(
            "repro_cache_misses_total", "Schedule-cache lookups that missed both tiers."
        )
        misses.inc(stats.misses)
        stores = Counter(
            "repro_cache_stores_total", "Compilations stored into the schedule cache."
        )
        stores.inc(stats.stores)
        evictions = Counter(
            "repro_cache_evictions_total",
            "Schedule-cache entries evicted, by tier.",
            ("tier",),
        )
        evictions.labels(tier="memory").inc(stats.evictions)
        evictions.labels(tier="disk").inc(stats.disk_evictions)
        memory_entries = Gauge(
            "repro_cache_entries", "Entries currently in the in-memory LRU tier."
        )
        memory_entries.set(entries)
        disk_files = Gauge(
            "repro_cache_disk_entries", "Entry files currently in the on-disk tier."
        )
        disk_files.set(self.disk_entries())
        disk_size = Gauge(
            "repro_cache_disk_bytes", "Bytes used by the on-disk cache tier."
        )
        disk_size.set(self.disk_bytes())
        return [hits, misses, stores, evictions, memory_entries, disk_files, disk_size]

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._entries:
                return True
        return self._disk_path_if_present(fingerprint) is not None

    def lookup(self, fingerprint: str) -> "tuple[CachedCompilation | None, str | None]":
        """Like :meth:`get`, but also reports where the entry came from.

        Returns ``(entry, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"`` or ``None`` (a miss).  Concurrent batches use the tier
        to account run-local hit statistics without reading the shared
        counters, whose deltas interleave across overlapping runs.

        Disk reads happen **outside** the lock — a slot faulting an
        entry in from disk must not stall every other slot's in-memory
        hits behind its file I/O.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return entry, "memory"
        path = self._disk_path_if_present(fingerprint)
        if path is not None:
            entry = self._read_disk_entry(path)
            if entry is not None:
                with self._lock:
                    self._insert(fingerprint, entry)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                # Refresh the file's recency so size-based eviction
                # treats disk reads as uses (LRU, not FIFO).
                try:
                    os.utime(path)
                except OSError:  # pragma: no cover - file raced away
                    pass
                return entry, "disk"
        with self._lock:
            self.stats.misses += 1
        return None, None

    def get(self, fingerprint: str) -> CachedCompilation | None:
        """Look up a compilation; ``None`` on a miss (counted in stats)."""
        return self.lookup(fingerprint)[0]

    def peek(self, fingerprint: str) -> CachedCompilation | None:
        """Look up a compilation without touching stats or LRU recency.

        Read-only observers (the service's cached-schedule endpoint, CLI
        inspection) use this so they neither skew the hit/miss counters
        batch runs report as deltas nor promote entries over the working
        set.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                return entry
        path = self._disk_path_if_present(fingerprint)
        if path is not None:
            return self._read_disk_entry(path)
        return None

    def put(self, fingerprint: str, entry: CachedCompilation) -> "tuple[int, int]":
        """Store a compilation under ``fingerprint`` (memory and disk).

        Returns ``(evictions, disk_evictions)`` caused by this store, so
        a concurrently running batch can attribute the displacement it
        triggered to its own run-local statistics.  As with lookups, the
        disk write and budget sweep run outside the lock.
        """
        with self._lock:
            evictions_before = self.stats.evictions
            self._insert(fingerprint, entry)
            self.stats.stores += 1
            evictions = self.stats.evictions - evictions_before
        disk_evictions = 0
        if self.directory is not None:
            path = self._disk_path(fingerprint)
            # Unique temp name per writer: concurrent processes sharing a
            # cache directory must not interleave writes before the atomic
            # replace.
            tmp = path.with_suffix(f".{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
            tmp.write_text(json.dumps(entry.to_dict(), sort_keys=True))
            tmp.replace(path)
            if self.max_disk_bytes is not None:
                disk_evictions = self._enforce_disk_budget(keep=path)
                if disk_evictions:
                    with self._lock:
                        self.stats.disk_evictions += disk_evictions
        return evictions, disk_evictions

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier when ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            if disk and self.directory is not None:
                for path in self.directory.glob("*.json"):
                    path.unlink()
                for path in self.directory.glob("*.tmp"):
                    path.unlink()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert(self, fingerprint: str, entry: CachedCompilation) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _enforce_disk_budget(self, keep: Path) -> int:
        """Delete LRU entry files until the disk tier fits its byte budget.

        ``keep`` (the entry that was just written) is exempt, so a budget
        smaller than a single entry still leaves the newest one usable.
        Returns how many entry files were deleted (the caller folds the
        count into the stats under the lock — this sweep itself runs
        without it, and concurrent sweeps tolerate each other through
        the ``OSError`` guards).
        """
        assert self.directory is not None and self.max_disk_bytes is not None
        entries: list[tuple[float, int, Path]] = []
        total = 0
        deleted = 0
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total += stat.st_size
            if path != keep:
                entries.append((stat.st_mtime, stat.st_size, path))
        if total <= self.max_disk_bytes:
            return 0
        entries.sort()  # oldest mtime first
        for _, size, path in entries:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            deleted += 1
            if total <= self.max_disk_bytes:
                break
        return deleted

    def _disk_path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    def _disk_path_if_present(self, fingerprint: str) -> Path | None:
        if self.directory is None:
            return None
        path = self._disk_path(fingerprint)
        return path if path.exists() else None

    @staticmethod
    def _read_disk_entry(path: Path) -> CachedCompilation | None:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(f"corrupt cache entry {path}: {exc}") from exc
        # An entry written by an older (or newer) library version is a
        # cache miss, not an error: the caller recompiles and overwrites
        # it with the current format.
        if data.get("format_version") != CACHE_FORMAT_VERSION:
            return None
        return CachedCompilation.from_dict(data)
