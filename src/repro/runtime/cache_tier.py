"""Remote cache tiers for :class:`~repro.runtime.cache.ScheduleCache`.

A *cache tier* is anything that can ``load`` and ``store`` the binary
``RCEN`` entry payloads the local cache already writes to disk — the
same bytes, the same format version, just reachable over a wire.  The
local cache consults its tiers after a disk miss and offers every fresh
store to them, so a fleet of shared-nothing workers pointed at one
shared tier turns any worker's compilation into a disk-speed hit for
every other worker.

The contract is deliberately forgiving: **tiers never raise**.  A dead,
slow or misbehaving tier answers ``None`` (load) or ``False`` (store)
and the caller degrades to local-only caching — a shared cache is an
accelerator, never a dependency.  :class:`HttpCacheTier` additionally
backs off for ``failure_cooldown_s`` after a transport failure so a
down tier costs one timeout per cooldown window, not one per lookup.

The wire protocol is two verbs on the existing service surface::

    GET /v1/cache/<fingerprint>   -> 200 + RCEN bytes | 404
    PUT /v1/cache/<fingerprint>   -> 204 (stored)

served by :mod:`repro.service.server` from the worker's (or router's)
own ``ScheduleCache``.
"""

from __future__ import annotations

import http.client
import threading
import time
import urllib.parse
from typing import Protocol

__all__ = ["CacheTier", "HttpCacheTier"]

#: Upper bound on an entry fetched from a remote tier.  RCEN entries for
#: even the largest benchmarked circuits are well under a megabyte; a
#: tier answering more than this is broken and treated as a miss.
MAX_TIER_ENTRY_BYTES = 64 * 1024 * 1024


class CacheTier(Protocol):
    """What :class:`ScheduleCache` needs from a remote tier.

    Implementations must be thread-safe (concurrent scheduler slots
    share one cache, hence one tier) and must **never raise** from
    either method.
    """

    def load(self, fingerprint: str) -> "bytes | None":
        """The binary entry payload for ``fingerprint``, or ``None``."""
        ...

    def store(self, fingerprint: str, payload: bytes) -> bool:
        """Offer an encoded entry; ``True`` when the tier accepted it."""
        ...


class HttpCacheTier:
    """A shared schedule cache behind ``GET/PUT /v1/cache/<fingerprint>``.

    Stdlib-only: one pooled persistent :class:`http.client.HTTPConnection`
    guarded by a lock (cache traffic is short request/response pairs, so
    one connection per tier keeps the worker's socket count flat), with
    reconnect-on-stale and a failure cooldown.

    Parameters
    ----------
    base_url:
        Root of the service hosting the cache endpoints, e.g.
        ``http://127.0.0.1:8100``.
    timeout:
        Socket timeout per request.  Kept deliberately short — a tier
        slower than this is worth recompiling past.
    failure_cooldown_s:
        After a transport error, every call is an immediate miss for
        this long before the tier is retried.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 2.0,
        failure_cooldown_s: float = 10.0,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"cache tiers speak plain http, got {base_url!r}")
        if not parsed.hostname:
            raise ValueError(f"cache tier URL has no host: {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.base_path = parsed.path.rstrip("/")
        self.timeout = timeout
        self.failure_cooldown_s = failure_cooldown_s
        self._lock = threading.Lock()
        self._connection: "http.client.HTTPConnection | None" = None
        self._down_until = 0.0
        # Transport failures observed (reported via CacheStats by the
        # owning cache; kept here too for direct inspection in tests).
        self.failures = 0

    @property
    def url(self) -> str:
        """The tier's base URL (for health payloads and logs)."""
        return f"http://{self.host}:{self.port}{self.base_path}"

    # ------------------------------------------------------------------
    # CacheTier protocol
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> "bytes | None":
        response = self._request("GET", fingerprint)
        if response is None:
            return None
        status, body = response
        if status != 200 or not body:
            return None
        return body

    def store(self, fingerprint: str, payload: bytes) -> bool:
        response = self._request("PUT", fingerprint, payload)
        return response is not None and response[0] in (200, 201, 204)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, fingerprint: str, body: "bytes | None" = None
    ) -> "tuple[int, bytes] | None":
        """One round-trip; ``None`` on any transport problem.

        Holds the connection lock for the whole exchange: the pooled
        connection is strictly serial.  A request that fails on a
        *reused* connection is retried once on a fresh one — the server
        may simply have closed an idle keep-alive socket.
        """
        with self._lock:
            if time.monotonic() < self._down_until:
                return None
            reused = self._connection is not None
            for attempt in range(2):
                connection = self._connection
                if connection is None:
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                    reused = False
                self._connection = None
                try:
                    connection.request(
                        method,
                        f"{self.base_path}/v1/cache/{fingerprint}",
                        body=body,
                        headers={"Content-Type": "application/octet-stream"}
                        if body is not None
                        else {},
                    )
                    response = connection.getresponse()
                    payload = response.read(MAX_TIER_ENTRY_BYTES + 1)
                    if len(payload) > MAX_TIER_ENTRY_BYTES:
                        connection.close()
                        return None
                    if response.will_close:
                        connection.close()
                    else:
                        self._connection = connection
                    return response.status, payload
                except (OSError, http.client.HTTPException):
                    connection.close()
                    if reused and attempt == 0:
                        # Stale keep-alive socket; retry once, fresh.
                        reused = False
                        continue
                    self.failures += 1
                    self._down_until = time.monotonic() + self.failure_cooldown_s
                    return None
        return None  # pragma: no cover - loop always returns
