"""The batch-compilation engine.

:class:`BatchCompiler` takes a list of :class:`CompileJob` items and
produces one :class:`JobOutcome` per job, in job order, through three
tiers:

1. **cache** — jobs whose compile fingerprint is already in the
   :class:`~repro.runtime.cache.ScheduleCache` skip compilation;
2. **dedup** — remaining jobs are grouped by compile fingerprint so each
   distinct compilation runs exactly once per batch (the four
   gate-implementation evaluations of one circuit share one compile);
3. **fan-out** — distinct compilations run either serially (the
   deterministic fallback, also used for single jobs) or across a
   ``multiprocessing`` pool.

Every schedule — fresh or cached, local or from a worker — travels as
plain serialised data and is re-evaluated in the parent process, so the
result **records are byte-identical** across the serial, parallel and
warm-cache paths; only the timing side-channel (``compile_time_s``,
``from_cache``) differs.

Two service-oriented modes layer on top of the same engine:

* **warm pool** (``BatchCompiler(warm=True)``) — the worker pool is
  created once and survives across :meth:`BatchCompiler.run` calls, so
  small batches amortise the process-spawn cost instead of paying it per
  batch.  ``BatchResult.extra["worker_pids"]`` records which processes
  compiled, making the reuse observable;
* **completion callbacks** (``run(jobs, on_outcome=...)``) — each
  :class:`JobOutcome` is delivered in job order as soon as its
  compilation lands, instead of after the whole batch.  This is what the
  :mod:`repro.service` streaming endpoint consumes.

:meth:`BatchCompiler.run` is **re-entrant**: any number of threads may
call it concurrently on one engine (the service scheduler runs several
batches at once over a single warm pool).  Each call keeps its state in
locals, the shared :class:`ScheduleCache` takes its own lock, the warm
pool accepts task submissions from multiple threads, and per-run cache
statistics are accounted locally instead of as deltas of the shared
counters (which interleave across overlapping runs).  Deduplication
extends across overlapping runs: a run that misses the cache but finds
the same compile fingerprint **in flight** in another run waits for that
compilation and serves it as a cache hit instead of compiling it twice
(falling back to compiling locally if the other run fails or is
cancelled).  The ``on_outcome`` in-job-order guarantee holds per call,
and records stay byte-identical whether runs overlap or not.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.exceptions import ReproError
from repro.noise.evaluator import evaluate_schedule
from repro.runtime.cache import CachedCompilation, CacheStats, ScheduleCache
from repro.runtime.jobs import CompileJob, compile_job


def _compile_entry(
    item: "tuple[str, CompileJob]",
) -> "tuple[str, bytes, int]":
    """Worker function: compile one job and return plain data.

    Must stay a module-level function so it pickles under every
    multiprocessing start method.  The entry crosses the process
    boundary in its binary form — the same bytes later written to the
    disk cache — so a pooled compile pays for serialisation exactly
    once.  The compiling process id travels with the result so warm-pool
    reuse is observable from the parent.
    """
    fingerprint, job = item
    result = compile_job(job)
    return fingerprint, CachedCompilation.from_result(result).to_bytes(), os.getpid()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, no re-import) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: Upper bound on waiting for another run's in-flight compilation of the
#: same fingerprint.  Generously above any real compile time — on expiry
#: the waiter assumes the holder died and compiles locally, so a wedged
#: run can never wedge its neighbours.
_INFLIGHT_WAIT_S = 600.0


@dataclass(frozen=True)
class JobOutcome:
    """Result of one job: the deterministic record plus timing metadata.

    ``record`` contains only deterministic fields (schedule counts and
    evaluation metrics) and is identical whichever execution tier served
    the job; wall-clock compile time and cache provenance live alongside
    it.
    """

    job: CompileJob
    fingerprint: str
    compile_fingerprint: str
    record: dict[str, object]
    compile_time_s: float
    from_cache: bool
    pass_timings: tuple[dict[str, object], ...] = ()

    def as_dict(self) -> dict[str, object]:
        """Record plus timing columns, for tables and result files.

        ``pass_timings`` sit with the wall-clock side channel, not the
        deterministic record: like ``compile_time_s`` they replay the
        original compilation's profile on a cache hit and vary between
        serial and parallel runs.
        """
        row = dict(self.record)
        row["compile_time_s"] = self.compile_time_s
        row["from_cache"] = self.from_cache
        row["pass_timings"] = [dict(t) for t in self.pass_timings]
        return row

    def encoded_record(self) -> bytes:
        """The record as canonical JSON bytes (sorted keys), cached.

        Encoded lazily once and memoised on the (frozen) instance, so
        the service can splice the same bytes into every stream that
        replays this outcome without re-serialising the record.
        """
        cached = self.__dict__.get("_encoded_record")
        if cached is None:
            cached = json.dumps(self.record, sort_keys=True).encode("utf-8")
            object.__setattr__(self, "_encoded_record", cached)
        return cached


@dataclass
class BatchResult:
    """Everything one :meth:`BatchCompiler.run` call produced."""

    outcomes: list[JobOutcome]
    cache_stats: CacheStats
    compilations: int
    workers: int
    wall_time_s: float = 0.0
    extra: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def records(self) -> list[dict[str, object]]:
        """The deterministic records, in job order."""
        return [outcome.record for outcome in self.outcomes]

    def as_dicts(self) -> list[dict[str, object]]:
        """Records with timing columns, in job order (for reporting)."""
        return [outcome.as_dict() for outcome in self.outcomes]

    def summary(self) -> dict[str, object]:
        """One-line batch statistics for logs and CLI footers."""
        return {
            "jobs": len(self.outcomes),
            "compilations": self.compilations,
            "cache_hits": self.cache_stats.hits,
            "cache_misses": self.cache_stats.misses,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
        }


class BatchCompiler:
    """Fan compile jobs out over a worker pool, with schedule caching.

    Parameters
    ----------
    workers:
        Process count for the compilation stage.  ``0``/``1`` (or a
        single distinct compilation) selects the deterministic serial
        path; ``None`` means one worker per CPU.
    cache:
        Schedule cache shared across runs.  When omitted the engine owns
        a private in-memory cache, so repeated ``run`` calls on one
        instance still deduplicate.
    warm:
        Keep one persistent worker pool alive across :meth:`run` calls
        instead of spawning (and tearing down) a pool per batch.  Warm
        engines route every pooled compilation — even a single one —
        through the persistent workers, amortising process spawn on
        small jobs; call :meth:`close` (or use the engine as a context
        manager) to release the workers.
    """

    def __init__(
        self,
        workers: int | None = 1,
        cache: ScheduleCache | None = None,
        warm: bool = False,
    ) -> None:
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 0:
            raise ReproError("workers cannot be negative")
        self.workers = max(workers, 1)
        self.cache = cache if cache is not None else ScheduleCache()
        self.warm = bool(warm)
        self._pool: "multiprocessing.pool.Pool | None" = None
        # Guards warm-pool creation/teardown only; ``run`` itself keeps
        # all batch state in locals and needs no engine-wide lock.
        self._pool_lock = threading.Lock()
        # Compile fingerprints currently being compiled by some run, each
        # mapped to the event its completion sets.  Concurrent runs use
        # this to wait for each other's compilations instead of
        # duplicating them.
        self._inflight: "dict[str, threading.Event]" = {}
        self._inflight_lock = threading.Lock()
        # Optional instruments; bound by bind_metrics (the service does).
        self._m_runs = None
        self._m_jobs = None
        self._m_compilations = None
        self._m_compile_seconds = None
        self._m_dedup = None

    def bind_metrics(self, registry: "Any") -> None:
        """Record engine activity into a :class:`~repro.obs.MetricsRegistry`.

        Creates the ``repro_engine_*`` counters (runs, jobs,
        fresh compilations, compile seconds, deduplications by kind) and
        a workers gauge.  Unbound engines skip all accounting — the
        library batch path stays observability-free unless asked.
        """
        self._m_runs = registry.counter(
            "repro_engine_runs_total", "Completed BatchCompiler.run calls."
        )
        self._m_jobs = registry.counter(
            "repro_engine_jobs_total", "Compile jobs processed across all runs."
        )
        self._m_compilations = registry.counter(
            "repro_engine_compilations_total",
            "Fresh compilations executed (cache misses actually compiled).",
        )
        self._m_compile_seconds = registry.counter(
            "repro_engine_compile_seconds_total",
            "Wall-clock seconds spent inside fresh compilations; divide by "
            "uptime times workers for pool utilisation.",
        )
        self._m_dedup = registry.counter(
            "repro_engine_dedup_total",
            "Compilations avoided by deduplication: 'batch' folds repeats "
            "within one run, 'inflight' waits on another run's compile.",
            ("kind",),
        )
        registry.gauge(
            "repro_engine_workers",
            "Configured worker-process count of the engine.",
            callback=lambda: self.workers,
        )

    def run(
        self,
        jobs: Sequence[CompileJob],
        on_outcome: "Callable[[JobOutcome], None] | None" = None,
    ) -> BatchResult:
        """Execute ``jobs`` and return outcomes in job order.

        ``on_outcome`` is called once per job, in job order, as soon as
        the job's outcome is known — cache hits fire before the first
        compilation finishes, compiled jobs as their schedule lands.  The
        callback runs in the calling thread and sees exactly the outcomes
        the returned :class:`BatchResult` will contain.  An exception
        raised by the callback aborts the run between compilations and
        propagates to the caller (the service scheduler cancels jobs this
        way); outcomes already delivered stay delivered, and compilations
        already cached stay cached.

        Re-entrant: concurrent calls on one engine are safe and share the
        cache and (in warm mode) the worker pool.
        """
        start = time.perf_counter()
        jobs = list(jobs)
        # Per-run statistics are accumulated locally: with several runs
        # in flight, before/after deltas of the shared cache counters
        # would attribute other runs' traffic to this batch.
        run_stats = CacheStats()

        entries: dict[str, CachedCompilation] = {}
        from_cache: dict[str, bool] = {}
        pending: "dict[str, CompileJob]" = {}
        # Fingerprints another run is compiling right now: wait for its
        # event instead of compiling a second copy.  Insertion order is
        # job order, which is the order waits resolve in below.
        awaited: "dict[str, tuple[threading.Event, CompileJob]]" = {}
        claimed: set[str] = set()
        compilations = 0
        batch_dedups = 0
        inflight_dedups = 0
        fresh_seconds = 0.0
        compile_fps = [job.compile_fingerprint() for job in jobs]

        def _record_hit(fingerprint: str, entry: CachedCompilation, tier: str) -> None:
            run_stats.hits += 1
            if tier == "disk":
                run_stats.disk_hits += 1
            elif tier == "network":
                run_stats.network_hits += 1
            entries[fingerprint] = entry
            from_cache[fingerprint] = True

        outcomes: list[JobOutcome] = []
        worker_pids: set[int] = set()

        def _drain() -> None:
            """Emit every job whose compilation is resolved, in job order."""
            while len(outcomes) < len(jobs):
                fingerprint = compile_fps[len(outcomes)]
                entry = entries.get(fingerprint)
                if entry is None:
                    return
                outcome = self._build_outcome(
                    jobs[len(outcomes)], fingerprint, entry, from_cache[fingerprint]
                )
                outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)

        def _store_compiled(fingerprint: str, entry: CachedCompilation) -> None:
            nonlocal fresh_seconds
            fresh_seconds += entry.compile_time_s
            evictions, disk_evictions = self.cache.put(fingerprint, entry)
            run_stats.stores += 1
            run_stats.evictions += evictions
            run_stats.disk_evictions += disk_evictions
            entries[fingerprint] = entry
            from_cache[fingerprint] = False

        try:
            for job, fingerprint in zip(jobs, compile_fps):
                if (
                    fingerprint in entries
                    or fingerprint in pending
                    or fingerprint in awaited
                ):
                    if fingerprint in pending or fingerprint in awaited:
                        batch_dedups += 1
                    continue
                entry, tier = self.cache.lookup(fingerprint)
                if entry is not None:
                    _record_hit(fingerprint, entry, tier)
                    continue
                holder = self._claim_inflight(fingerprint)
                if holder is not None:
                    awaited[fingerprint] = (holder, job)
                    continue
                claimed.add(fingerprint)
                # Re-check after claiming: the holder may have finished
                # (and released) between our cache miss and our claim.
                # peek, not lookup — the miss was already counted above,
                # and this rare-hit probe must not count a second one.
                entry = self.cache.peek(fingerprint)
                if entry is not None:
                    claimed.discard(fingerprint)
                    self._release_inflight(fingerprint)
                    _record_hit(fingerprint, entry, "memory")
                    continue
                run_stats.misses += 1
                pending[fingerprint] = job

            _drain()  # jobs fully served by the cache stream before any compile
            for fingerprint, entry_data, pid in self._iter_compiled(pending):
                entry = CachedCompilation.from_bytes(entry_data)
                _store_compiled(fingerprint, entry)
                compilations += 1
                worker_pids.add(pid)
                # Release before draining: a waiting run may proceed even
                # if our on_outcome callback raises (cancellation).
                claimed.discard(fingerprint)
                self._release_inflight(fingerprint)
                _drain()
            for fingerprint, (event, job) in awaited.items():
                resolved = event.wait(timeout=_INFLIGHT_WAIT_S)
                entry, tier = self.cache.lookup(fingerprint) if resolved else (None, None)
                if entry is not None:
                    inflight_dedups += 1
                    _record_hit(fingerprint, entry, tier)
                else:
                    # The other run failed, was cancelled before this
                    # compilation, or is pathologically slow: compile it
                    # ourselves rather than lose the batch.
                    run_stats.misses += 1
                    _, entry_data, pid = _compile_entry((fingerprint, job))
                    _store_compiled(fingerprint, CachedCompilation.from_bytes(entry_data))
                    compilations += 1
                    worker_pids.add(pid)
                _drain()
        finally:
            # Claims this run never compiled (its callback raised, or a
            # worker died): wake the waiters so they self-serve.
            for fingerprint in claimed:
                self._release_inflight(fingerprint)

        if self._m_runs is not None:
            self._m_runs.inc()
            self._m_jobs.inc(len(jobs))
            self._m_compilations.inc(compilations)
            self._m_compile_seconds.inc(fresh_seconds)
            if batch_dedups:
                self._m_dedup.labels(kind="batch").inc(batch_dedups)
            if inflight_dedups:
                self._m_dedup.labels(kind="inflight").inc(inflight_dedups)
        return BatchResult(
            outcomes=outcomes,
            cache_stats=run_stats,
            compilations=compilations,
            workers=self.workers,
            wall_time_s=time.perf_counter() - start,
            extra={"worker_pids": sorted(worker_pids)},
        )

    def close(self) -> None:
        """Release the persistent warm pool (no-op for cold engines).

        Thread-safe and idempotent.  Callers owning concurrent batches
        (the service) must drain them first — terminating the pool under
        a live ``run`` kills its in-flight compilations.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "BatchCompiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _claim_inflight(self, fingerprint: str) -> "threading.Event | None":
        """Claim a fingerprint for compilation by this run.

        Returns ``None`` when the claim succeeded (this run compiles it
        and must eventually :meth:`_release_inflight` it), or the holding
        run's completion event to wait on.
        """
        with self._inflight_lock:
            event = self._inflight.get(fingerprint)
            if event is not None:
                return event
            self._inflight[fingerprint] = threading.Event()
            return None

    def _release_inflight(self, fingerprint: str) -> None:
        """Drop a claim and wake every run waiting on it (idempotent)."""
        with self._inflight_lock:
            event = self._inflight.pop(fingerprint, None)
        if event is not None:
            event.set()

    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        """The persistent warm pool, created on first use (thread-safe)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = _pool_context().Pool(processes=self.workers)
            return self._pool

    def _split_items(
        self, items: "list[tuple[str, CompileJob]]"
    ) -> "tuple[list[tuple[str, CompileJob]], list[tuple[str, CompileJob]]]":
        """Partition items into (pooled, compile-in-this-process).

        Spawned workers re-import the package and therefore only see the
        built-in compilers; a warm pool additionally snapshots the parent
        at creation time, so even under ``fork`` a compiler registered
        after the pool started would be missing.  In both situations jobs
        using runtime-registered backends compile in this process, where
        the registration happened.
        """
        if not self.warm and _pool_context().get_start_method() == "fork":
            return items, []
        from repro.registry import compiler_spec

        pooled = [item for item in items if compiler_spec(item[1].compiler).builtin]
        local = [item for item in items if not compiler_spec(item[1].compiler).builtin]
        return pooled, local

    def _iter_compiled(
        self, pending: "dict[str, CompileJob]"
    ) -> "Iterator[tuple[str, bytes, int]]":
        """Compile pending items, yielding each as soon as it completes."""
        items = list(pending.items())
        if not items:
            return
        if not self.warm and (self.workers <= 1 or len(items) == 1):
            for item in items:
                yield _compile_entry(item)
            return
        pooled, local = self._split_items(items)
        if not pooled:
            for item in local:
                yield _compile_entry(item)
            return
        if self.warm:
            results = self._ensure_pool().imap_unordered(_compile_entry, pooled)
            for item in local:
                yield _compile_entry(item)
            yield from results
        else:
            with _pool_context().Pool(processes=min(self.workers, len(pooled))) as pool:
                results = pool.imap_unordered(_compile_entry, pooled)
                for item in local:
                    yield _compile_entry(item)
                yield from results

    @staticmethod
    def _build_outcome(
        job: CompileJob,
        compile_fingerprint: str,
        entry: CachedCompilation,
        cached: bool,
    ) -> JobOutcome:
        schedule = entry.schedule()
        implementation = job.resolved_gate_implementation()
        evaluation = evaluate_schedule(
            schedule, gate_implementation=implementation, heating=job.heating
        )
        # The circuit label comes from the job, not the cached schedule: the
        # circuit *name* is not part of the compile fingerprint (identical
        # gate lists dedup regardless of name), so a cache hit may carry
        # another job's circuit_name.  The device name needs no such care —
        # it is hashed via device_to_dict.
        circuit_name = (
            job.circuit.lower() if isinstance(job.circuit, str) else job.circuit.name
        )
        record: dict[str, object] = {
            "label": job.label,
            "parameter": job.parameter,
            "value": job.value,
            "circuit": circuit_name,
            "device": schedule.device.name,
            "compiler": entry.compiler_name,
            "mapping": entry.mapping_name,
            "gate_implementation": implementation.value,
            "shuttles": schedule.shuttle_count,
            "swaps": schedule.swap_count,
            "two_qubit_gates": schedule.two_qubit_gate_count,
            "success_rate": evaluation.success_rate,
            "log_success_rate": evaluation.log_success_rate,
            "execution_time_us": evaluation.execution_time_us,
        }
        # Scheduler statistics are deterministic counters, so they belong
        # in the record proper (byte-identical across serial/parallel/
        # cached paths); wall-clock pass timings stay a side channel.
        record.update(entry.statistics)
        return JobOutcome(
            job=job,
            fingerprint=job.fingerprint(),
            compile_fingerprint=compile_fingerprint,
            record=record,
            compile_time_s=entry.compile_time_s,
            from_cache=cached,
            pass_timings=entry.pass_timings,
        )
