"""High-level entry points of the batch runtime.

:func:`run_batch` executes any job list and returns the full
:class:`~repro.runtime.pool.BatchResult`; :func:`run_sweep` is the
sweep-shaped convenience used by :mod:`repro.analysis.sweeps`, returning
flat row dictionaries (record + compile time) in job order.

Schedules move through this layer on the binary artifact path: worker
processes return compiled entries as cache-format-v3 byte blobs, the
:class:`ScheduleCache` stores those same bytes on disk
(``<fingerprint>.sched``), and decoding is lazy — callers that only
read records or statistics never materialise operation objects.  See
``docs/architecture.md`` (cache format v3) for the wire layout.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.runtime.cache import ScheduleCache
from repro.runtime.jobs import CompileJob
from repro.runtime.pool import BatchCompiler, BatchResult, JobOutcome


def _resolve_cache(
    cache: ScheduleCache | None,
    cache_dir: "Path | str | None",
    max_cache_entries: int,
) -> ScheduleCache | None:
    if cache is not None:
        return cache
    if cache_dir is not None:
        return ScheduleCache(max_entries=max_cache_entries, directory=cache_dir)
    return None


def run_batch(
    jobs: Sequence[CompileJob],
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
    cache_dir: "Path | str | None" = None,
    max_cache_entries: int = 256,
    on_outcome: "Callable[[JobOutcome], None] | None" = None,
    engine: BatchCompiler | None = None,
) -> BatchResult:
    """Compile and evaluate every job, parallelising distinct compilations.

    Parameters
    ----------
    jobs:
        The work items, in the order results should come back.
    workers:
        Worker-process count (``0``/``1`` = deterministic serial path,
        ``None`` = one per CPU).
    cache:
        An existing :class:`ScheduleCache` to reuse across calls.
    cache_dir:
        Shorthand for a disk-backed cache at this directory (ignored when
        ``cache`` is given).
    on_outcome:
        Called once per job, in job order, as soon as the job's outcome
        is known (streamed result delivery; see
        :meth:`BatchCompiler.run`).
    engine:
        An existing :class:`BatchCompiler` to run on instead of building
        a throwaway one; ``workers``/``cache``/``cache_dir`` are then
        ignored and the engine is **not** closed afterwards.  This is how
        long-lived callers (the service scheduler, REPL sessions holding
        ``BatchCompiler(warm=True)``) route one-off batches through their
        shared warm pool — :meth:`BatchCompiler.run` is re-entrant, so
        such calls may overlap freely.
    """
    if engine is not None:
        return engine.run(jobs, on_outcome=on_outcome)
    engine = BatchCompiler(
        workers=workers, cache=_resolve_cache(cache, cache_dir, max_cache_entries)
    )
    with engine:
        return engine.run(jobs, on_outcome=on_outcome)


def run_sweep(
    jobs: Sequence[CompileJob],
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
    cache_dir: "Path | str | None" = None,
) -> list[dict[str, object]]:
    """Run sweep jobs and return flat rows (record + timing) in job order."""
    return run_batch(jobs, workers=workers, cache=cache, cache_dir=cache_dir).as_dicts()
