"""The differential oracle: one scenario, every backend, every invariant.

For a scenario the oracle

1. compiles the circuit through **all three scheduler backends**
   (``naive`` is the reference; ``flat`` and ``incremental`` must match
   it bit-for-bit in schedule bytes, scheduler statistics and initial /
   final occupancy);
2. compiles through the **baseline compilers** (Murali, Dai) — their
   schedules differ from S-SYNC's by design, but must still be legal;
3. replays every emitted schedule through the legality verifier
   (:func:`~repro.schedule.verify.verify_schedule`, with the gate-order
   cross-check against the program circuit);
4. round-trips the S-SYNC schedule through the binary codec of PR 8 and
   the JSON codec (decode(encode(s)) must re-encode to identical bytes
   and to an identical plain-data document);
5. evaluates every schedule under the noise model and checks the
   invariants the analysis layer trusts: success rate in ``[0, 1]``,
   positive makespan on a non-empty schedule, and an executed two-qubit
   gate count equal to the circuit's.

Any violation raises :class:`OracleFailure` naming the failed check; a
clean pass returns an :class:`OracleReport` listing every check run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.core.result import CompilationResult
from repro.core.scheduler import SCHEDULER_BACKENDS, SchedulerConfig
from repro.exceptions import ReproError
from repro.fuzz.scenario import Scenario
from repro.noise.evaluator import evaluate_schedule
from repro.registry import make_pipeline
from repro.schedule.serialize import (
    schedule_from_bytes,
    schedule_from_json,
    schedule_to_bytes,
    schedule_to_dict,
    schedule_to_json,
)
from repro.schedule.verify import verify_schedule

#: Backend order the oracle compiles in: the naive reference scorer
#: first, so the two optimised cores are judged against it.
#: (:data:`SCHEDULER_BACKENDS` lists the cores fastest-first instead.)
DEFAULT_BACKENDS = ("naive", "flat", "incremental")

#: Baseline compilers the oracle drives beside the three S-SYNC backends.
DEFAULT_BASELINES = ("murali", "dai")

#: Gate implementations the noise invariants are checked under.
DEFAULT_GATE_IMPLEMENTATIONS = ("fm", "am2")


class OracleFailure(ReproError):
    """A scenario violated one of the oracle's checks.

    Attributes
    ----------
    scenario:
        The offending scenario (pass it to the minimizer).
    check:
        Stable name of the failed check, e.g. ``"parity:flat"`` or
        ``"verify:murali"``.
    detail:
        Human-readable description of the violation.
    """

    def __init__(self, scenario: Scenario, check: str, detail: str) -> None:
        super().__init__(f"[{check}] {detail} (scenario: {scenario.describe()})")
        self.scenario = scenario
        self.check = check
        self.detail = detail


@dataclass(frozen=True)
class OracleReport:
    """Summary of a scenario that passed every check."""

    scenario_fingerprint: str
    backends: tuple[str, ...]
    baselines: tuple[str, ...]
    operations: int
    two_qubit_gates: int
    checks: tuple[str, ...]


def run_oracle(
    scenario: Scenario,
    backends: "tuple[str, ...]" = DEFAULT_BACKENDS,
    baselines: "tuple[str, ...]" = DEFAULT_BASELINES,
    gate_implementations: "tuple[str, ...]" = DEFAULT_GATE_IMPLEMENTATIONS,
) -> OracleReport:
    """Run the full differential oracle on ``scenario``.

    Raises :class:`OracleFailure` on the first violated check; returns
    an :class:`OracleReport` when every check passes.  ``backends`` must
    contain at least one entry; the first is the parity reference (keep
    ``naive`` first so the two optimised cores are judged against the
    reference scorer).
    """
    if not backends:
        raise ReproError("the oracle needs at least one scheduler backend")
    checks: list[str] = []
    circuit = _guarded(scenario, "build:circuit", scenario.build_circuit)
    device = _guarded(scenario, "build:device", scenario.build_device)

    # -- 1. all scheduler backends ------------------------------------
    results: dict[str, CompilationResult] = {}
    for backend in backends:
        config = SSyncConfig(scheduler=SchedulerConfig(backend=backend))
        results[backend] = _guarded(
            scenario,
            f"compile:{backend}",
            lambda config=config: SSyncCompiler(device, config).compile(circuit),
        )
        checks.append(f"compile:{backend}")

    reference = results[backends[0]]
    reference_bytes = _guarded(
        scenario, "encode:binary", lambda: schedule_to_bytes(reference.schedule)
    )

    # -- 2. three-way parity ------------------------------------------
    for backend in backends[1:]:
        result = results[backend]
        if schedule_to_bytes(result.schedule) != reference_bytes:
            raise OracleFailure(
                scenario,
                f"parity:{backend}",
                f"schedule bytes differ from the {backends[0]!r} reference",
            )
        if result.statistics != reference.statistics:
            raise OracleFailure(
                scenario,
                f"parity:{backend}",
                f"scheduler statistics differ: {result.statistics_dict()} "
                f"vs {reference.statistics_dict()}",
            )
        if (
            result.initial_state.occupancy() != reference.initial_state.occupancy()
            or result.final_state.occupancy() != reference.final_state.occupancy()
        ):
            raise OracleFailure(
                scenario, f"parity:{backend}", "initial/final occupancy differs"
            )
        checks.append(f"parity:{backend}")

    # -- 3. legality replay (S-SYNC) ----------------------------------
    report = _guarded(
        scenario,
        "verify:s-sync",
        lambda: verify_schedule(reference.schedule, reference.initial_state, circuit=circuit),
    )
    if report.two_qubit_gates != circuit.num_two_qubit_gates:
        raise OracleFailure(
            scenario,
            "verify:s-sync",
            f"schedule executes {report.two_qubit_gates} two-qubit gates, "
            f"circuit has {circuit.num_two_qubit_gates}",
        )
    checks.append("verify:s-sync")

    # -- 4. codec round-trips -----------------------------------------
    decoded = _guarded(
        scenario, "codec:binary", lambda: schedule_from_bytes(reference_bytes)
    )
    if schedule_to_bytes(decoded) != reference_bytes:
        raise OracleFailure(
            scenario, "codec:binary", "decode(encode(schedule)) re-encodes differently"
        )
    if schedule_to_dict(decoded) != schedule_to_dict(reference.schedule):
        raise OracleFailure(
            scenario, "codec:binary", "binary round-trip changed the operation log"
        )
    checks.append("codec:binary")

    json_trip = _guarded(
        scenario,
        "codec:json",
        lambda: schedule_from_json(schedule_to_json(reference.schedule)),
    )
    if schedule_to_dict(json_trip) != schedule_to_dict(reference.schedule):
        raise OracleFailure(
            scenario, "codec:json", "JSON round-trip changed the operation log"
        )
    checks.append("codec:json")

    # -- 5. noise invariants (S-SYNC) ---------------------------------
    _check_noise(scenario, "s-sync", reference, circuit, gate_implementations, checks)

    # -- 6. baselines: legal schedules, sane evaluations --------------
    for baseline in baselines:
        result = _guarded(
            scenario,
            f"compile:{baseline}",
            lambda baseline=baseline: make_pipeline(baseline, device).compile(circuit),
        )
        checks.append(f"compile:{baseline}")
        _guarded(
            scenario,
            f"verify:{baseline}",
            lambda result=result: verify_schedule(
                result.schedule, result.initial_state, circuit=circuit
            ),
        )
        checks.append(f"verify:{baseline}")
        _check_noise(scenario, baseline, result, circuit, gate_implementations[:1], checks)

    return OracleReport(
        scenario_fingerprint=scenario.fingerprint(),
        backends=tuple(backends),
        baselines=tuple(baselines),
        operations=len(reference.schedule),
        two_qubit_gates=circuit.num_two_qubit_gates,
        checks=tuple(checks),
    )


def oracle_failing(scenario: Scenario) -> bool:
    """Predicate form of the oracle, as the minimizer wants it.

    ``True`` when the scenario reproduces a failure: any exception out
    of the oracle — an :class:`OracleFailure`, but also an unexpected
    crash inside a compiler (an ``IndexError`` deep in a scheduler core
    is exactly the kind of bug the fuzzer exists to catch).  Ill-formed
    scenarios are *not* failures; the minimizer must never shrink into
    legitimately uncompilable territory.
    """
    if not scenario.is_well_formed():
        return False
    try:
        run_oracle(scenario)
    except Exception:
        return True
    return False


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _guarded(scenario: Scenario, check: str, thunk):
    """Run ``thunk``, converting any crash into an :class:`OracleFailure`.

    A compiler that *raises* on a well-formed scenario is as much a bug
    as one that emits a wrong schedule, so crashes are folded into the
    same failure type the campaign driver and minimizer understand.
    """
    try:
        return thunk()
    except OracleFailure:
        raise
    except Exception as exc:
        raise OracleFailure(scenario, check, f"{type(exc).__name__}: {exc}") from exc


def _check_noise(
    scenario: Scenario,
    compiler: str,
    result: CompilationResult,
    circuit,
    gate_implementations: "tuple[str, ...]",
    checks: list[str],
) -> None:
    for implementation in gate_implementations:
        evaluation = _guarded(
            scenario,
            f"noise:{compiler}:{implementation}",
            lambda implementation=implementation: evaluate_schedule(
                result.schedule, gate_implementation=implementation
            ),
        )
        if not 0.0 <= evaluation.success_rate <= 1.0:
            raise OracleFailure(
                scenario,
                f"noise:{compiler}:{implementation}",
                f"success rate {evaluation.success_rate} outside [0, 1]",
            )
        if len(result.schedule) > 0 and evaluation.execution_time_us <= 0.0:
            raise OracleFailure(
                scenario,
                f"noise:{compiler}:{implementation}",
                f"non-empty schedule with makespan {evaluation.execution_time_us} us",
            )
        if evaluation.gate_count_2q != circuit.num_two_qubit_gates:
            raise OracleFailure(
                scenario,
                f"noise:{compiler}:{implementation}",
                f"evaluator saw {evaluation.gate_count_2q} two-qubit gates, "
                f"circuit has {circuit.num_two_qubit_gates}",
            )
        checks.append(f"noise:{compiler}:{implementation}")
