"""The fuzz campaign driver behind ``python -m repro fuzz``.

A campaign has two phases:

1. **corpus replay** — every checked-in scenario under the corpus
   directory runs through the full oracle first.  The corpus is the
   regression net: once a failure has been minimized and committed, it
   can never silently come back.
2. **seeded generation** — ``cases`` fresh scenarios from
   :class:`~repro.fuzz.scenario.ScenarioGenerator` run through the
   oracle, subject to an optional wall-clock budget.

Every failure is recorded; with minimization enabled the failing
scenario is shrunk to a 1-minimal reproducer and written as a JSON seed
file into the failures directory — ready to be triaged and, once
understood, promoted into the corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.fuzz.minimize import minimize_scenario
from repro.fuzz.oracle import OracleFailure, oracle_failing, run_oracle
from repro.fuzz.scenario import (
    Scenario,
    ScenarioError,
    ScenarioGenerator,
    load_corpus,
    write_scenario,
)


@dataclass(frozen=True)
class FuzzFailure:
    """One failing scenario: where it came from and what it shrank to."""

    scenario: Scenario
    check: str
    detail: str
    source: str  # "corpus:<path>" or "generated:<index>"
    minimized: Scenario | None = None
    reproducer_path: Path | None = None


@dataclass
class FuzzResult:
    """Outcome of one campaign."""

    seed: int
    cases_requested: int
    cases_run: int = 0
    corpus_replayed: int = 0
    checks_run: int = 0
    elapsed_s: float = 0.0
    budget_exhausted: bool = False
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        budget = ", time budget exhausted" if self.budget_exhausted else ""
        return (
            f"fuzz seed={self.seed}: {self.corpus_replayed} corpus + "
            f"{self.cases_run}/{self.cases_requested} generated scenarios, "
            f"{self.checks_run} oracle checks in {self.elapsed_s:.1f}s{budget} -> {status}"
        )


def run_fuzz(
    cases: int,
    seed: int = 0,
    time_budget_s: float | None = None,
    corpus_dir: "str | Path | None" = None,
    minimize: bool = True,
    failures_dir: "str | Path | None" = None,
    on_progress: Callable[[str], None] | None = None,
) -> FuzzResult:
    """Run one fuzz campaign; see the module docstring for the phases.

    Parameters
    ----------
    cases:
        Number of scenarios to generate (the corpus replays on top).
    seed:
        Master seed of the scenario stream.
    time_budget_s:
        Optional wall-clock cap; generation stops (cleanly, between
        scenarios) once exceeded.  The corpus always replays in full.
    corpus_dir:
        Directory of committed scenario JSON files to replay first.
    minimize:
        Shrink every failing generated scenario to a 1-minimal
        reproducer (corpus entries are committed already-minimal and are
        reported as-is).
    failures_dir:
        Where minimized reproducers are written (created on demand; only
        touched when there is something to write).
    on_progress:
        Optional sink for one-line progress messages.
    """
    started = time.monotonic()
    result = FuzzResult(seed=seed, cases_requested=cases)
    say = on_progress or (lambda message: None)

    for path, scenario in load_corpus(corpus_dir) if corpus_dir else []:
        failure, checks = _run_case(scenario, f"corpus:{path.name}")
        result.corpus_replayed += 1
        result.checks_run += checks
        if failure is not None:
            say(f"corpus regression: {path.name} [{failure.check}] {failure.detail}")
            result.failures.append(failure)

    generator = ScenarioGenerator(seed)
    for index in range(cases):
        if time_budget_s is not None and time.monotonic() - started > time_budget_s:
            result.budget_exhausted = True
            say(f"time budget exhausted after {result.cases_run} generated cases")
            break
        scenario = generator.next_scenario()
        failure, checks = _run_case(scenario, f"generated:{index}")
        result.cases_run += 1
        result.checks_run += checks
        if failure is None:
            if (index + 1) % 25 == 0:
                say(f"{index + 1}/{cases} scenarios OK")
            continue
        say(f"FAIL {scenario.describe()} [{failure.check}] {failure.detail}")
        if minimize:
            failure = _minimize_failure(failure, failures_dir, say)
        result.failures.append(failure)

    result.elapsed_s = time.monotonic() - started
    return result


def _run_case(scenario: Scenario, source: str) -> tuple[FuzzFailure | None, int]:
    """Run the oracle on one scenario; (failure-or-None, checks passed)."""
    try:
        report = run_oracle(scenario)
    except OracleFailure as exc:
        return (
            FuzzFailure(scenario=scenario, check=exc.check, detail=exc.detail, source=source),
            0,
        )
    except Exception as exc:  # a crash outside _guarded's coverage
        return (
            FuzzFailure(
                scenario=scenario,
                check="oracle:crash",
                detail=f"{type(exc).__name__}: {exc}",
                source=source,
            ),
            0,
        )
    return None, len(report.checks)


def _minimize_failure(
    failure: FuzzFailure,
    failures_dir: "str | Path | None",
    say: Callable[[str], None],
) -> FuzzFailure:
    try:
        minimized = minimize_scenario(failure.scenario, oracle_failing)
    except ScenarioError as exc:
        # A flaky failure that no longer reproduces: report the original
        # scenario, flagged so the triager knows minimization bailed.
        say(f"minimization failed: {exc}")
        return failure
    path: Path | None = None
    if failures_dir is not None:
        name = f"repro-{minimized.fingerprint()[:16]}.json"
        path = write_scenario(
            Scenario(
                circuit=minimized.circuit,
                device=minimized.device,
                name=minimized.name or failure.scenario.name,
                note=f"minimized reproducer [{failure.check}]: {failure.detail}",
            ),
            Path(failures_dir) / name,
        )
        say(f"minimized reproducer written to {path}")
    gates = len(minimized.circuit.get("gates", ()))
    traps = len(minimized.device.get("traps", ()))
    say(f"minimized to {gates} gates / {traps} traps")
    return FuzzFailure(
        scenario=failure.scenario,
        check=failure.check,
        detail=failure.detail,
        source=failure.source,
        minimized=minimized,
        reproducer_path=path,
    )
