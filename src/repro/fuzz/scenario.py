"""Fuzz scenarios: declarative (circuit, device) pairs and their generator.

A :class:`Scenario` is the unit of work the differential oracle checks
and the minimizer shrinks: a circuit *spec* (either a named seeded
generator with its parameters, or an explicit gate list) plus a device
description in the :func:`~repro.schedule.serialize.device_to_dict`
form.  Scenarios are plain JSON values — they round-trip losslessly
through :meth:`Scenario.to_json`, which is what the regression corpus
under ``tests/fuzz/corpus/`` stores.

:class:`ScenarioGenerator` draws scenarios from a seeded RNG: a device
family (linear / ring / grid / star / hex), a size, homogeneous or
heterogeneous per-trap capacities, then a circuit family (random / QAOA
on a random Erdős–Rényi graph / random Clifford / GHZ / QFT) sized to
fit the device.  The same master seed always yields the same scenario
stream, so a failing campaign is reproducible from its seed alone.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.library import (
    ghz_circuit,
    qft_circuit,
    random_circuit,
    random_clifford,
    random_qaoa,
)
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.topologies import (
    grid_device,
    hex_device,
    linear_device,
    ring_device,
    star_device,
)
from repro.schedule.serialize import device_from_dict, device_to_dict

#: Format marker written into every scenario JSON document.
SCENARIO_FORMAT = "repro-fuzz-scenario-v1"

#: Free slots every well-formed scenario leaves on its device: the
#: mappers and the scheduler need room to shuttle (the property suite
#: uses the same margin).
MIN_FREE_SLOTS = 2

#: Circuit spec kinds a scenario may carry.
CIRCUIT_KINDS = ("random", "qaoa", "clifford", "ghz", "qft", "gates")

#: Device families the generator draws from.
DEVICE_FAMILIES = ("linear", "ring", "grid", "star", "hex")


class ScenarioError(ReproError):
    """Raised for malformed scenario documents or generator misuse."""


@dataclass(frozen=True)
class Scenario:
    """One fuzz case: a circuit spec plus an explicit device description.

    ``circuit`` is a JSON-able spec dictionary whose ``"kind"`` selects a
    seeded generator (``"random"``, ``"qaoa"``, ``"clifford"``,
    ``"ghz"``, ``"qft"``) or an explicit gate list (``"gates"``).
    ``device`` is always explicit (the ``device_to_dict`` shape), so the
    minimizer can drop traps and lower capacities without knowing which
    factory built it.
    """

    circuit: dict[str, Any]
    device: dict[str, Any]
    name: str = ""
    note: str = ""

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def build_circuit(self) -> QuantumCircuit:
        """Materialise the circuit spec into a :class:`QuantumCircuit`."""
        spec = self.circuit
        kind = spec.get("kind")
        try:
            if kind == "random":
                return random_circuit(
                    spec["num_qubits"],
                    spec["num_two_qubit_gates"],
                    seed=spec.get("seed", 7),
                    locality=spec.get("locality"),
                )
            if kind == "qaoa":
                return random_qaoa(
                    spec["num_qubits"],
                    layers=spec.get("layers", 2),
                    edge_probability=spec.get("edge_probability", 0.4),
                    seed=spec.get("seed", 7),
                )
            if kind == "clifford":
                return random_clifford(
                    spec["num_qubits"],
                    depth=spec.get("depth", 8),
                    seed=spec.get("seed", 7),
                )
            if kind == "ghz":
                return ghz_circuit(spec["num_qubits"], ladder=spec.get("ladder", True))
            if kind == "qft":
                return qft_circuit(spec["num_qubits"])
            if kind == "gates":
                circuit = QuantumCircuit(
                    spec["num_qubits"], name=spec.get("name", "fuzz_gates")
                )
                for name, qubits, params in spec["gates"]:
                    circuit.append(Gate(name, tuple(qubits), tuple(params)))
                return circuit
        except KeyError as exc:
            raise ScenarioError(
                f"circuit spec {kind!r} is missing the {exc.args[0]!r} field"
            ) from exc
        raise ScenarioError(f"unknown circuit spec kind {kind!r}")

    def build_device(self) -> QCCDDevice:
        """Materialise the device description."""
        return device_from_dict(self.device)

    def explicit(self) -> "Scenario":
        """This scenario with its circuit flattened to an explicit gate list.

        The minimizer shrinks at gate granularity, so its first move is
        always to materialise the generator spec once and carry the gate
        list from there on.  ``gates``-form scenarios are returned
        unchanged.
        """
        if self.circuit.get("kind") == "gates":
            return self
        circuit = self.build_circuit()
        return replace(
            self,
            circuit={
                "kind": "gates",
                "name": circuit.name,
                "num_qubits": circuit.num_qubits,
                "gates": [
                    [gate.name, list(gate.qubits), list(gate.params)] for gate in circuit
                ],
            },
        )

    # ------------------------------------------------------------------
    # well-formedness
    # ------------------------------------------------------------------
    def is_well_formed(self) -> bool:
        """Can this scenario be compiled at all (independent of any bug)?

        A well-formed scenario has a buildable, connected device with at
        least :data:`MIN_FREE_SLOTS` spare slots beyond the circuit's
        qubit count, and a buildable circuit whose gates stay inside the
        qubit range.  The minimizer never proposes (and the oracle never
        blames) a scenario outside this envelope — shrinking a failure
        into a *legitimately* uncompilable input would be a useless
        reproducer.
        """
        try:
            device = self.build_device()
            circuit = self.build_circuit()
        except ReproError:
            return False
        if circuit.num_two_qubit_gates > 0 and circuit.num_qubits < 2:
            return False
        return device.total_capacity >= circuit.num_qubits + MIN_FREE_SLOTS

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (the corpus file shape)."""
        data: dict[str, Any] = {
            "format": SCENARIO_FORMAT,
            "circuit": self.circuit,
            "device": self.device,
        }
        if self.name:
            data["name"] = self.name
        if self.note:
            data["note"] = self.note
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        if data.get("format") != SCENARIO_FORMAT:
            raise ScenarioError(
                f"not a fuzz scenario document (format={data.get('format')!r})"
            )
        try:
            return cls(
                circuit=dict(data["circuit"]),
                device=dict(data["device"]),
                name=str(data.get("name", "")),
                note=str(data.get("note", "")),
            )
        except KeyError as exc:
            raise ScenarioError(
                f"scenario document is missing the {exc.args[0]!r} field"
            ) from exc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario document is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ScenarioError("scenario document must be a JSON object")
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical content (name/note excluded)."""
        payload = {"circuit": self.circuit, "device": self.device}
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human summary for campaign logs."""
        kind = self.circuit.get("kind", "?")
        qubits = self.circuit.get("num_qubits", "?")
        device_name = self.device.get("name", "?")
        traps = len(self.device.get("traps", ()))
        return f"{kind}({qubits}q) on {device_name} ({traps} traps)"


# ----------------------------------------------------------------------
# corpus I/O
# ----------------------------------------------------------------------
def write_scenario(scenario: Scenario, path: "str | Path") -> Path:
    """Write ``scenario`` as a JSON document; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(scenario.to_json() + "\n")
    return path


def load_scenario(path: "str | Path") -> Scenario:
    """Load one scenario JSON document."""
    return Scenario.from_json(Path(path).read_text())


def load_corpus(directory: "str | Path") -> list[tuple[Path, Scenario]]:
    """Load every ``*.json`` scenario under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [(path, load_scenario(path)) for path in sorted(directory.glob("*.json"))]


# ----------------------------------------------------------------------
# the seeded generator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratorLimits:
    """Size envelope of generated scenarios.

    The defaults keep a single oracle pass (three backends, two
    baselines, verification, codec round-trip, two noise evaluations)
    well under a second, so hundreds of cases fit in a CI smoke job.
    """

    max_traps: int = 9
    min_capacity: int = 2
    max_capacity: int = 6
    max_qubits: int = 12
    max_two_qubit_gates: int = 24
    heterogeneous_fraction: float = 0.5


class ScenarioGenerator:
    """Seeded random-circuit x random-device scenario stream."""

    def __init__(self, seed: int = 0, limits: GeneratorLimits | None = None) -> None:
        self.seed = seed
        self.limits = limits or GeneratorLimits()
        self._rng = random.Random(seed)
        self._count = 0

    def __iter__(self) -> Iterator[Scenario]:
        while True:
            yield self.next_scenario()

    def generate(self, count: int) -> list[Scenario]:
        """The next ``count`` scenarios of the stream."""
        return [self.next_scenario() for _ in range(count)]

    def next_scenario(self) -> Scenario:
        """Draw the next scenario (device first, then a circuit that fits)."""
        rng = self._rng
        device = self._draw_device(rng)
        circuit = self._draw_circuit(rng, device)
        index = self._count
        self._count += 1
        scenario = Scenario(
            circuit=circuit,
            device=device_to_dict(device),
            name=f"case{index:04d}-{circuit['kind']}-{device.name}",
        )
        # The draw bounds guarantee this; assert the invariant anyway so
        # a future limits change cannot silently emit broken cases.
        if not scenario.is_well_formed():  # pragma: no cover - defensive
            raise ScenarioError(f"generator produced an ill-formed scenario: {scenario.describe()}")
        return scenario

    # ------------------------------------------------------------------
    def _draw_capacities(self, rng: random.Random, num_traps: int) -> "int | list[int]":
        limits = self.limits
        if rng.random() < limits.heterogeneous_fraction:
            return [
                rng.randint(limits.min_capacity, limits.max_capacity)
                for _ in range(num_traps)
            ]
        return rng.randint(limits.min_capacity, limits.max_capacity)

    def _draw_device(self, rng: random.Random) -> QCCDDevice:
        limits = self.limits
        family = rng.choice(DEVICE_FAMILIES)
        if family == "linear":
            n = rng.randint(2, limits.max_traps)
            return linear_device(n, self._draw_capacities(rng, n))
        if family == "ring":
            n = rng.randint(3, limits.max_traps)
            return ring_device(n, self._draw_capacities(rng, n))
        if family == "star":
            n = rng.randint(2, min(6, limits.max_traps))
            return star_device(n, self._draw_capacities(rng, n))
        if family == "grid":
            rows = rng.randint(1, min(3, max(1, limits.max_traps // 2)))
            max_cols = min(3, max(2 if rows == 1 else 1, limits.max_traps // rows))
            cols = rng.randint(2 if rows == 1 else 1, max_cols)
            return grid_device(rows, cols, self._draw_capacities(rng, rows * cols))
        rows = rng.randint(1, min(3, max(1, limits.max_traps // 2)))
        cols = rng.randint(2, min(3, max(2, limits.max_traps // rows)))
        return hex_device(rows, cols, self._draw_capacities(rng, rows * cols))

    def _draw_circuit(self, rng: random.Random, device: QCCDDevice) -> dict[str, Any]:
        limits = self.limits
        max_qubits = min(limits.max_qubits, device.total_capacity - MIN_FREE_SLOTS)
        num_qubits = rng.randint(2, max(2, max_qubits))
        kind = rng.choice(("random", "random", "qaoa", "clifford", "ghz", "qft"))
        seed = rng.randrange(1_000_000)
        if kind == "random":
            return {
                "kind": "random",
                "num_qubits": num_qubits,
                "num_two_qubit_gates": rng.randint(1, limits.max_two_qubit_gates),
                "seed": seed,
                "locality": rng.choice((None, 1, 2)),
            }
        if kind == "qaoa":
            return {
                "kind": "qaoa",
                "num_qubits": num_qubits,
                "layers": rng.randint(1, 3),
                # Discrete probabilities keep the JSON exact and the
                # corpus diff-friendly.
                "edge_probability": rng.choice((0.2, 0.4, 0.7)),
                "seed": seed,
            }
        if kind == "clifford":
            return {
                "kind": "clifford",
                "num_qubits": num_qubits,
                "depth": rng.randint(2, 8),
                "seed": seed,
            }
        if kind == "ghz":
            return {
                "kind": "ghz",
                "num_qubits": num_qubits,
                "ladder": rng.random() < 0.5,
            }
        return {"kind": "qft", "num_qubits": min(num_qubits, 10)}
