"""Delta-debugging minimizer: shrink a failing scenario to a 1-minimal one.

Given a scenario and a *failing* predicate (normally
:func:`repro.fuzz.oracle.oracle_failing`, but any
``Callable[[Scenario], bool]`` works — the tests inject synthetic
oracles), the minimizer searches for a smaller scenario that still
fails, along four axes:

* **gates** — classic ddmin over the explicit gate list (chunked
  removal with granularity doubling, down to single gates);
* **traps** — drop one trap at a time, reindexing the remainder and
  keeping only connections between survivors (candidates whose
  connectivity graph falls apart are skipped, not tried);
* **capacities** — lower each trap's capacity one slot at a time;
* **qubits** — compact the qubit numbering once gates have gone, so the
  reproducer does not mention phantom qubits.

Every candidate must stay *well-formed*
(:meth:`~repro.fuzz.scenario.Scenario.is_well_formed`): the point of a
reproducer is a legal input that triggers a bug, never an input that
fails for the boring reason of being uncompilable.

The rounds repeat until a fixpoint, which makes the result **1-minimal**:
removing any single remaining gate, or any single remaining trap, either
breaks well-formedness or makes the failure disappear.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.fuzz.scenario import Scenario, ScenarioError

FailingPredicate = Callable[[Scenario], bool]

#: Hard ceiling on predicate evaluations per minimization, so a slow or
#: flaky predicate cannot stall a campaign forever.
DEFAULT_MAX_PROBES = 3000


class _Budget:
    """Counts predicate probes and stops the search when exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit

    def probe(self, failing: FailingPredicate, candidate: Scenario) -> bool:
        if self.spent():
            return False
        self.used += 1
        return candidate.is_well_formed() and failing(candidate)


def minimize_scenario(
    scenario: Scenario,
    failing: FailingPredicate,
    max_probes: int = DEFAULT_MAX_PROBES,
) -> Scenario:
    """Shrink ``scenario`` to a 1-minimal scenario that still fails.

    Raises :class:`ScenarioError` when the input scenario does not fail
    the predicate in the first place (a minimizer that "fixes" the input
    by silently returning it would hide exactly the flaky failures it
    exists to pin down).
    """
    scenario = scenario.explicit()
    if not scenario.is_well_formed():
        raise ScenarioError("cannot minimize an ill-formed scenario")
    if not failing(scenario):
        raise ScenarioError("the scenario does not reproduce the failure")
    budget = _Budget(max_probes)
    while not budget.spent():
        changed = False
        scenario, step = _shrink_gates(scenario, failing, budget)
        changed |= step
        scenario, step = _shrink_traps(scenario, failing, budget)
        changed |= step
        scenario, step = _shrink_capacities(scenario, failing, budget)
        changed |= step
        scenario, step = _compact_qubits(scenario, failing, budget)
        changed |= step
        if not changed:
            break
    return scenario


# ----------------------------------------------------------------------
# gate ddmin
# ----------------------------------------------------------------------
def _with_gates(scenario: Scenario, gates: list[list[Any]]) -> Scenario:
    circuit = dict(scenario.circuit)
    circuit["gates"] = gates
    return replace(scenario, circuit=circuit)


def _shrink_gates(
    scenario: Scenario, failing: FailingPredicate, budget: _Budget
) -> tuple[Scenario, bool]:
    """ddmin over the explicit gate list (Zeller & Hildebrandt style)."""
    gates = list(scenario.circuit["gates"])
    changed = False
    chunks = 2
    while len(gates) >= 1 and not budget.spent():
        chunk = max(1, len(gates) // chunks)
        removed_any = False
        start = 0
        while start < len(gates):
            candidate_gates = gates[:start] + gates[start + chunk :]
            candidate = _with_gates(scenario, candidate_gates)
            if budget.probe(failing, candidate):
                gates = candidate_gates
                changed = True
                removed_any = True
                # The list shrank in place of advancing; retry the same
                # offset against the new tail.
            else:
                start += chunk
        if removed_any:
            chunks = max(2, chunks - 1)
        elif chunk == 1:
            break
        else:
            chunks = min(len(gates), chunks * 2)
    return (_with_gates(scenario, gates) if changed else scenario), changed


# ----------------------------------------------------------------------
# device shrinking
# ----------------------------------------------------------------------
def _without_trap(device: dict[str, Any], trap_id: int) -> dict[str, Any]:
    """The device minus one trap, ids compacted, dangling connections gone."""
    survivors = [dict(t) for t in device["traps"] if t["trap_id"] != trap_id]
    remap = {old["trap_id"]: new_id for new_id, old in enumerate(survivors)}
    for new_id, trap in enumerate(survivors):
        trap["trap_id"] = new_id
    connections = [
        {
            "trap_a": remap[c["trap_a"]],
            "trap_b": remap[c["trap_b"]],
            "junctions": c.get("junctions", 0),
            "segments": c.get("segments", 1),
        }
        for c in device["connections"]
        if c["trap_a"] in remap and c["trap_b"] in remap
    ]
    shrunk = dict(device)
    shrunk["traps"] = survivors
    shrunk["connections"] = connections
    return shrunk


def _shrink_traps(
    scenario: Scenario, failing: FailingPredicate, budget: _Budget
) -> tuple[Scenario, bool]:
    changed = False
    progress = True
    while progress and not budget.spent():
        progress = False
        for trap in list(scenario.device["traps"]):
            if len(scenario.device["traps"]) <= 1:
                break
            candidate = replace(
                scenario, device=_without_trap(scenario.device, trap["trap_id"])
            )
            # probe() filters ill-formed candidates, which covers the
            # disconnected-graph case: build_device raises, so the
            # candidate is simply skipped.
            if budget.probe(failing, candidate):
                scenario = candidate
                changed = True
                progress = True
                break
    return scenario, changed


def _shrink_capacities(
    scenario: Scenario, failing: FailingPredicate, budget: _Budget
) -> tuple[Scenario, bool]:
    changed = False
    progress = True
    while progress and not budget.spent():
        progress = False
        for index, trap in enumerate(scenario.device["traps"]):
            if trap["capacity"] <= 1:
                continue
            device = dict(scenario.device)
            device["traps"] = [dict(t) for t in scenario.device["traps"]]
            device["traps"][index]["capacity"] = trap["capacity"] - 1
            candidate = replace(scenario, device=device)
            if budget.probe(failing, candidate):
                scenario = candidate
                changed = True
                progress = True
    return scenario, changed


# ----------------------------------------------------------------------
# qubit compaction
# ----------------------------------------------------------------------
def _compact_qubits(
    scenario: Scenario, failing: FailingPredicate, budget: _Budget
) -> tuple[Scenario, bool]:
    gates = scenario.circuit["gates"]
    used = sorted({q for _, qubits, _ in gates for q in qubits})
    num_qubits = max(len(used), 1)
    if num_qubits == scenario.circuit["num_qubits"] and used == list(range(num_qubits)):
        return scenario, False
    remap = {old: new for new, old in enumerate(used)}
    circuit = dict(scenario.circuit)
    circuit["num_qubits"] = num_qubits
    circuit["gates"] = [
        [name, [remap[q] for q in qubits], list(params)] for name, qubits, params in gates
    ]
    candidate = replace(scenario, circuit=circuit)
    if budget.probe(failing, candidate):
        return candidate, True
    return scenario, False
