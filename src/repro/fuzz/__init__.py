"""repro.fuzz — differential scenario fuzzing for the compilation pipeline.

The subsystem turns scenario diversity into a correctness weapon:

* :mod:`repro.fuzz.scenario` — a declarative, JSON-round-trippable
  :class:`Scenario` (circuit spec x device description) plus the seeded
  :class:`ScenarioGenerator` that cross-products random circuits
  (random / QAOA-on-random-graph / random-Clifford / GHZ / QFT) with
  random devices (linear / ring / grid / star / hex at arbitrary scale,
  heterogeneous per-trap capacities);
* :mod:`repro.fuzz.oracle` — the differential oracle: every scenario is
  compiled through all three scheduler backends (bit-identical schedule
  bytes and statistics required) and the baseline compilers, every
  emitted schedule is replayed through the legality verifier and
  round-tripped through the binary codec, and the noise evaluation must
  satisfy its invariants (success rate in [0, 1], positive makespan);
* :mod:`repro.fuzz.minimize` — a delta-debugging minimizer that shrinks
  a failing scenario (drop gates, drop traps, lower capacities, compact
  qubits) to a 1-minimal reproducer;
* :mod:`repro.fuzz.runner` — the campaign driver behind
  ``python -m repro fuzz``: corpus replay, seeded case generation, time
  budgets, and minimized-reproducer JSON files.

The replayable regression corpus lives in ``tests/fuzz/corpus/`` and is
re-run by pytest on every CI run; see ``docs/fuzzing.md``.
"""

from repro.fuzz.minimize import minimize_scenario
from repro.fuzz.oracle import OracleFailure, OracleReport, oracle_failing, run_oracle
from repro.fuzz.runner import FuzzFailure, FuzzResult, run_fuzz
from repro.fuzz.scenario import (
    SCENARIO_FORMAT,
    GeneratorLimits,
    Scenario,
    ScenarioError,
    ScenarioGenerator,
    load_corpus,
    load_scenario,
    write_scenario,
)

__all__ = [
    "SCENARIO_FORMAT",
    "FuzzFailure",
    "FuzzResult",
    "GeneratorLimits",
    "OracleFailure",
    "OracleReport",
    "Scenario",
    "ScenarioError",
    "ScenarioGenerator",
    "load_corpus",
    "load_scenario",
    "minimize_scenario",
    "oracle_failing",
    "run_fuzz",
    "run_oracle",
    "write_scenario",
]
