"""Named device presets matching the paper's evaluation section.

Section 4.2 selects configurations ``S-4``, ``G-2x2``, ``G-2x3``,
``G-3x3`` with maximum per-trap capacities of 22, 22, 17 and 12
respectively, plus ``L-4`` (22) and ``L-6`` (17) for certain tasks, and
``S-6`` appears in the Fig. 11 topology sweep.  :func:`paper_device`
resolves those names; :func:`paper_device_catalog` returns the full set.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import DeviceError
from repro.hardware.device import QCCDDevice
from repro.hardware.topologies import grid_device, linear_device, star_device


@dataclass(frozen=True)
class DevicePreset:
    """A named topology with the paper's default per-trap capacity."""

    name: str
    kind: str
    num_traps: int
    default_capacity: int
    rows: int = 0
    cols: int = 0


#: Presets used throughout the paper's evaluation (Section 4.2).
PAPER_PRESETS: tuple[DevicePreset, ...] = (
    DevicePreset("S-4", "star", 4, 22),
    DevicePreset("S-6", "star", 6, 17),
    DevicePreset("L-4", "linear", 4, 22),
    DevicePreset("L-6", "linear", 6, 17),
    DevicePreset("G-2x2", "grid", 4, 22, rows=2, cols=2),
    DevicePreset("G-2x3", "grid", 6, 17, rows=2, cols=3),
    DevicePreset("G-3x3", "grid", 9, 12, rows=3, cols=3),
)

_PRESETS_BY_NAME = {preset.name.lower(): preset for preset in PAPER_PRESETS}

_GRID_RE = re.compile(r"^g-(\d+)x(\d+)$")
_LINEAR_RE = re.compile(r"^l-(\d+)$")
_STAR_RE = re.compile(r"^s-(\d+)$")


def preset_names() -> tuple[str, ...]:
    """Names of all paper presets, in the paper's order."""
    return tuple(preset.name for preset in PAPER_PRESETS)


def paper_preset(name: str) -> DevicePreset:
    """Return the preset metadata for a paper topology name."""
    try:
        return _PRESETS_BY_NAME[name.lower()]
    except KeyError as exc:
        raise DeviceError(f"{name!r} is not a known paper preset") from exc


def paper_device(name: str, capacity: int | None = None) -> QCCDDevice:
    """Build a device from a paper topology name (``"G-2x3"``, ``"L-6"``...).

    Names outside the preset table are parsed structurally, so e.g.
    ``"G-4x4"`` or ``"L-8"`` also work (a capacity must then be given).
    """
    key = name.lower()
    preset = _PRESETS_BY_NAME.get(key)
    if preset is not None:
        cap = capacity if capacity is not None else preset.default_capacity
        return _build_from_preset(preset, cap)

    grid = _GRID_RE.match(key)
    if grid:
        if capacity is None:
            raise DeviceError(f"capacity required for non-preset topology {name!r}")
        return grid_device(int(grid.group(1)), int(grid.group(2)), capacity, name=name.upper())
    linear = _LINEAR_RE.match(key)
    if linear:
        if capacity is None:
            raise DeviceError(f"capacity required for non-preset topology {name!r}")
        return linear_device(int(linear.group(1)), capacity, name=name.upper())
    star = _STAR_RE.match(key)
    if star:
        if capacity is None:
            raise DeviceError(f"capacity required for non-preset topology {name!r}")
        return star_device(int(star.group(1)), capacity, name=name.upper())
    raise DeviceError(f"cannot parse topology name {name!r}")


def _build_from_preset(preset: DevicePreset, capacity: int) -> QCCDDevice:
    if preset.kind == "grid":
        return grid_device(preset.rows, preset.cols, capacity, name=preset.name)
    if preset.kind == "linear":
        return linear_device(preset.num_traps, capacity, name=preset.name)
    if preset.kind == "star":
        return star_device(preset.num_traps, capacity, name=preset.name)
    raise DeviceError(f"unknown preset kind {preset.kind!r}")  # pragma: no cover


def paper_device_catalog(capacity: int | None = None) -> dict[str, QCCDDevice]:
    """Build every paper preset, keyed by name.

    With ``capacity`` given, every preset uses that per-trap capacity
    (used by the Fig. 11 capacity sweep); otherwise each uses its paper
    default.
    """
    return {preset.name: paper_device(preset.name, capacity) for preset in PAPER_PRESETS}


def device_for_circuit(name: str, num_qubits: int, slack: int = 2) -> QCCDDevice:
    """Build a paper preset guaranteed to fit ``num_qubits`` program qubits.

    If the preset's default capacity is too small, the per-trap capacity
    is raised to the smallest value that leaves ``slack`` free slots per
    trap on average.
    """
    preset = paper_preset(name)
    device = paper_device(name)
    if device.total_capacity >= num_qubits + slack * device.num_traps:
        return device
    needed = -(-(num_qubits + slack * device.num_traps) // device.num_traps)  # ceil division
    return paper_device(name, max(needed, preset.default_capacity))
