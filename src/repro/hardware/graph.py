"""Static weighted slot graph — the paper's topology formulation (§3.1).

The key idea of S-SYNC is to model the device as a graph whose vertices
are *slots* (a slot either holds a qubit or is an empty "space") rather
than qubits, so that shuttling an ion is just an interchange of two node
labels and the graph itself never changes shape.

Nodes are ``(trap_id, position)`` pairs.  Edges and their weights follow
the paper's example (Fig. 5 and §4.4):

* intra-trap edge between slots at chain distance ``d``:
  weight ``inner_weight * d`` (``w1 = 0.001`` for adjacent ions,
  ``w2 = 0.002`` for distance 2, ...);
* inter-trap edge between the *edge* slots of two connected traps:
  weight ``shuttle_weight * (junctions + 1)`` (``w3 = 2`` for one
  junction, ``w4 = 3`` for two, with ``shuttle_weight = 1``).

The interchange rules of §3.1 (which node pairs may be swapped, and what
each interchange costs physically) are implemented by
:class:`repro.core.generic_swap.GenericSwapRules` on top of this graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.exceptions import DeviceError
from repro.hardware.device import QCCDDevice

SlotNode = tuple[int, int]


@dataclass(frozen=True)
class GraphWeights:
    """Weight configuration of the static slot graph (paper §4.4 defaults)."""

    inner_weight: float = 0.001
    shuttle_weight: float = 1.0
    #: Two slots are "in the same trap" for gate purposes when the edge
    #: weight between them does not exceed this threshold.
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.inner_weight <= 0:
            raise DeviceError("inner_weight must be positive")
        if self.shuttle_weight <= 0:
            raise DeviceError("shuttle_weight must be positive")
        if not (self.inner_weight < self.threshold < self.shuttle_weight):
            raise DeviceError(
                "threshold must separate intra-trap weights from shuttle weights: "
                f"need {self.inner_weight} < threshold < {self.shuttle_weight}"
            )

    @property
    def ratio(self) -> float:
        """Shuttle-to-inner weight ratio (the ``r`` of the Fig. 14 sweep)."""
        return self.shuttle_weight / self.inner_weight

    def with_ratio(self, ratio: float) -> "GraphWeights":
        """Return weights with the same inner weight and a new shuttle/inner ratio."""
        if ratio <= 0:
            raise DeviceError("the weight ratio must be positive")
        return GraphWeights(
            inner_weight=self.inner_weight,
            shuttle_weight=self.inner_weight * ratio,
            threshold=min(self.threshold, self.inner_weight * ratio / 2.0),
        )


class SlotGraph:
    """The static weighted connectivity graph over device slots."""

    def __init__(self, device: QCCDDevice, weights: GraphWeights | None = None) -> None:
        self.device = device
        self.weights = weights or GraphWeights()
        self._graph = nx.Graph()
        self._build()

    def _build(self) -> None:
        inner = self.weights.inner_weight
        for trap in self.device.traps:
            slots = [(trap.trap_id, position) for position in range(trap.capacity)]
            self._graph.add_nodes_from(slots, trap=trap.trap_id)
            # Full intra-trap connectivity, weighted by chain distance.
            for i, node_a in enumerate(slots):
                for j in range(i + 1, len(slots)):
                    node_b = slots[j]
                    distance = j - i
                    self._graph.add_edge(
                        node_a, node_b, weight=inner * distance, kind="intra", distance=distance
                    )
        for connection in self.device.connections:
            weight = self.weights.shuttle_weight * (1 + connection.junctions)
            edge_a = self._edge_slot_toward(connection.trap_a, connection.trap_b)
            edge_b = self._edge_slot_toward(connection.trap_b, connection.trap_a)
            self._graph.add_edge(
                edge_a,
                edge_b,
                weight=weight,
                kind="shuttle",
                junctions=connection.junctions,
                segments=connection.segments,
            )

    def _edge_slot_toward(self, trap_id: int, other_trap: int) -> SlotNode:
        """The edge slot of ``trap_id`` facing ``other_trap``.

        Traps with a lower id expose their last slot towards higher-id
        neighbours and their first slot towards lower-id neighbours; this
        gives a deterministic, geometry-like orientation for linear and
        grid layouts.
        """
        capacity = self.device.capacity(trap_id)
        if other_trap > trap_id:
            return (trap_id, capacity - 1)
        return (trap_id, 0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (shared instance; treat as read-only)."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Total slot count (= device total capacity)."""
        return self._graph.number_of_nodes()

    def nodes(self) -> list[SlotNode]:
        """All slots as ``(trap, position)`` pairs, sorted."""
        return sorted(self._graph.nodes)

    def edge_weight(self, node_a: SlotNode, node_b: SlotNode) -> float:
        """Weight of the edge between two slots (raises if absent)."""
        if not self._graph.has_edge(node_a, node_b):
            raise DeviceError(f"slots {node_a} and {node_b} are not connected")
        return float(self._graph[node_a][node_b]["weight"])

    def edge_kind(self, node_a: SlotNode, node_b: SlotNode) -> str:
        """``"intra"`` or ``"shuttle"`` for the edge between two slots."""
        if not self._graph.has_edge(node_a, node_b):
            raise DeviceError(f"slots {node_a} and {node_b} are not connected")
        return str(self._graph[node_a][node_b]["kind"])

    def shuttle_edges(self) -> list[tuple[SlotNode, SlotNode]]:
        """All inter-trap edges."""
        return [
            (a, b) for a, b, data in self._graph.edges(data=True) if data["kind"] == "shuttle"
        ]

    def same_trap(self, node_a: SlotNode, node_b: SlotNode) -> bool:
        """True when two slots belong to the same trap."""
        return node_a[0] == node_b[0]

    def is_edge_slot(self, node: SlotNode) -> bool:
        """True when the slot is at either end of its trap."""
        trap_id, position = node
        return position in self.device.trap(trap_id).edge_positions

    def receiving_slot(self, from_trap: int, to_trap: int) -> SlotNode:
        """The edge slot of ``to_trap`` that faces ``from_trap``."""
        return self._edge_slot_toward(to_trap, from_trap)

    def departing_slot(self, from_trap: int, to_trap: int) -> SlotNode:
        """The edge slot of ``from_trap`` that faces ``to_trap``."""
        return self._edge_slot_toward(from_trap, to_trap)

    def slot_distance(self, node_a: SlotNode, node_b: SlotNode) -> float:
        """Weighted shortest-path distance between two slots.

        Same-trap pairs use the direct intra-trap edge; cross-trap pairs
        combine the distance to the departing edge slot, the precomputed
        trap-level shuttle distance, and the distance from the receiving
        edge slot — which equals the graph shortest path but avoids a
        Dijkstra run per query.
        """
        if node_a == node_b:
            return 0.0
        trap_a, pos_a = node_a
        trap_b, pos_b = node_b
        inner = self.weights.inner_weight
        if trap_a == trap_b:
            return inner * abs(pos_a - pos_b)
        depart = self.departing_slot(trap_a, trap_b)
        arrive = self.receiving_slot(trap_a, trap_b)
        intra_out = inner * abs(pos_a - depart[1])
        intra_in = inner * abs(pos_b - arrive[1])
        shuttle = self.weights.shuttle_weight * self.device.trap_distance(trap_a, trap_b)
        return intra_out + shuttle + intra_in

    def __repr__(self) -> str:
        return (
            f"SlotGraph(device={self.device.name!r}, slots={self.num_nodes}, "
            f"edges={self._graph.number_of_edges()})"
        )
