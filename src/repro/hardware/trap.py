"""Trap and inter-trap connection descriptions for QCCD devices.

A QCCD device (Fig. 2 of the paper) is a set of linear *traps* — short
ion chains confined by segmented electrodes — connected by shuttle paths
which may pass through *junctions*.  These classes are pure, immutable
descriptions of the hardware; the mutable occupancy lives in
:class:`repro.core.state.DeviceState`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DeviceError


@dataclass(frozen=True)
class Trap:
    """One linear ion trap (a "zone" in QCCD terminology).

    Parameters
    ----------
    trap_id:
        Unique integer identifier within the device.
    capacity:
        Maximum number of ions the trap can hold (number of slots).
    name:
        Optional human-readable label (e.g. ``"T(0,1)"`` for a grid).
    """

    trap_id: int
    capacity: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.trap_id < 0:
            raise DeviceError("trap_id must be non-negative")
        if self.capacity < 1:
            raise DeviceError(f"trap {self.trap_id} must have capacity >= 1, got {self.capacity}")
        if not self.name:
            object.__setattr__(self, "name", f"trap{self.trap_id}")

    @property
    def edge_positions(self) -> tuple[int, int]:
        """The two slot indices ions can shuttle out of / into."""
        return (0, self.capacity - 1)


@dataclass(frozen=True)
class Connection:
    """A shuttle path between two traps.

    Parameters
    ----------
    trap_a, trap_b:
        Identifiers of the connected traps.
    junctions:
        Number of junctions the path crosses (0 for a straight segment
        between linearly adjacent traps, 1 for a grid X-junction, ...).
    segments:
        Number of straight electrode segments traversed; each segment
        costs one "move" operation of Table 1.
    """

    trap_a: int
    trap_b: int
    junctions: int = 0
    segments: int = 1

    def __post_init__(self) -> None:
        if self.trap_a == self.trap_b:
            raise DeviceError("a connection cannot link a trap to itself")
        if self.trap_a < 0 or self.trap_b < 0:
            raise DeviceError("connection trap ids must be non-negative")
        if self.junctions < 0:
            raise DeviceError("junction count cannot be negative")
        if self.segments < 1:
            raise DeviceError("a connection must traverse at least one segment")

    @property
    def endpoints(self) -> tuple[int, int]:
        """The two trap identifiers, in declaration order."""
        return (self.trap_a, self.trap_b)

    def other(self, trap_id: int) -> int:
        """Given one endpoint, return the other."""
        if trap_id == self.trap_a:
            return self.trap_b
        if trap_id == self.trap_b:
            return self.trap_a
        raise DeviceError(f"trap {trap_id} is not an endpoint of {self}")

    def shuttle_weight(self, junction_weight: float = 1.0) -> float:
        """Graph weight of traversing this connection (paper §4: j + 1)."""
        return 1.0 + junction_weight * self.junctions


@dataclass(frozen=True)
class JunctionCrossing:
    """Record of a junction traversal, used by the timing model."""

    num_paths: int = 3
    extra_segments: int = field(default=0)

    def __post_init__(self) -> None:
        if self.num_paths < 2:
            raise DeviceError("a junction joins at least two paths")
