"""Topology factories: linear (L-series), ring, grid (G-series), star, hex.

Figure 7 of the paper evaluates three architectural families inspired by
Quantinuum's roadmap:

* **L-n** — ``n`` traps in a line ("H2"-like racetrack unrolled); adjacent
  traps are connected by a straight shuttle segment with no junction.
* **G-RxC** — an R-by-C grid of traps ("SOL"/"APOLLO"-like); neighbouring
  traps are connected through one X-junction each.
* **S-n** — ``n`` traps around a central switching hub ("HELIOS"-like
  fully-connected variant); every pair of traps is reachable through the
  hub, modelled as a direct connection crossing one junction.

Two parametric families extend the paper's set for the scenario fuzzer
(:mod:`repro.fuzz`) and the device-farm roadmap item:

* **R-n** — a ring ("racetrack"): the linear device with wrap-around.
* **H-RxC** — a honeycomb / brick-wall lattice where every trap meets at
  most three Y-junction shuttle paths.

Capacities default to the paper's per-preset values (see
:mod:`repro.hardware.presets`) but every factory takes an explicit
``capacity`` so the Fig. 11 capacity sweeps can be reproduced.  Every
factory also accepts a *sequence* of per-trap capacities (one entry per
trap, in trap-id order), which models heterogeneous devices — e.g. large
memory zones on the boundary feeding small interaction zones.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import DeviceError
from repro.hardware.device import QCCDDevice
from repro.hardware.trap import Connection, Trap

#: A capacity argument: one capacity for every trap, or one per trap.
CapacitySpec = "int | Sequence[int]"


def trap_capacities(num_traps: int, capacity: "int | Sequence[int]") -> list[int]:
    """Normalise a :data:`CapacitySpec` into one positive capacity per trap.

    An ``int`` is broadcast to every trap; a sequence must have exactly
    ``num_traps`` entries.  Raises :class:`DeviceError` on a length
    mismatch or a non-positive capacity.
    """
    if isinstance(capacity, int):
        capacities = [capacity] * num_traps
    else:
        capacities = [int(value) for value in capacity]
        if len(capacities) != num_traps:
            raise DeviceError(
                f"got {len(capacities)} capacities for {num_traps} traps; "
                "a heterogeneous capacity sequence needs one entry per trap"
            )
    if any(value < 1 for value in capacities):
        raise DeviceError("trap capacity must be positive")
    return capacities


def linear_device(
    num_traps: int, capacity: "int | Sequence[int]", name: str | None = None
) -> QCCDDevice:
    """Build an L-series device: ``num_traps`` traps in a line.

    Adjacent traps share a junction-free straight shuttle path.
    """
    if num_traps < 1:
        raise DeviceError("a linear device needs at least one trap")
    capacities = trap_capacities(num_traps, capacity)
    traps = [Trap(i, capacities[i], name=f"L{i}") for i in range(num_traps)]
    connections = [Connection(i, i + 1, junctions=0, segments=1) for i in range(num_traps - 1)]
    return QCCDDevice(traps, connections, name=name or f"L-{num_traps}")


def ring_device(
    num_traps: int, capacity: "int | Sequence[int]", name: str | None = None
) -> QCCDDevice:
    """Build a ring ("racetrack") device: a linear device with wrap-around."""
    if num_traps < 3:
        raise DeviceError("a ring device needs at least three traps")
    capacities = trap_capacities(num_traps, capacity)
    traps = [Trap(i, capacities[i], name=f"R{i}") for i in range(num_traps)]
    connections = [Connection(i, (i + 1) % num_traps, junctions=0, segments=1) for i in range(num_traps)]
    return QCCDDevice(traps, connections, name=name or f"R-{num_traps}")


def grid_device(
    rows: int, cols: int, capacity: "int | Sequence[int]", name: str | None = None
) -> QCCDDevice:
    """Build a G-series device: an ``rows x cols`` grid of traps.

    Each nearest-neighbour pair of traps is connected through a single
    X-junction (``junctions=1``), following the paper's weight example
    where a one-junction path has weight 2.  Heterogeneous capacities are
    given in row-major trap-id order.
    """
    if rows < 1 or cols < 1:
        raise DeviceError("grid dimensions must be positive")
    if rows * cols < 2:
        raise DeviceError("a grid device needs at least two traps")
    capacities = trap_capacities(rows * cols, capacity)

    def trap_id(r: int, c: int) -> int:
        return r * cols + c

    traps = [
        Trap(trap_id(r, c), capacities[trap_id(r, c)], name=f"G({r},{c})")
        for r in range(rows)
        for c in range(cols)
    ]
    connections: list[Connection] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connections.append(
                    Connection(trap_id(r, c), trap_id(r, c + 1), junctions=1, segments=2)
                )
            if r + 1 < rows:
                connections.append(
                    Connection(trap_id(r, c), trap_id(r + 1, c), junctions=1, segments=2)
                )
    return QCCDDevice(traps, connections, name=name or f"G-{rows}x{cols}")


def hex_device(
    rows: int, cols: int, capacity: "int | Sequence[int]", name: str | None = None
) -> QCCDDevice:
    """Build an H-series device: a honeycomb ("brick-wall") trap lattice.

    Traps sit on an ``rows x cols`` brick-wall grid: every horizontal
    neighbour pair is connected, but a vertical rung between rows ``r``
    and ``r + 1`` exists only at columns where ``r + c`` is even.  Every
    trap therefore meets at most three shuttle paths — the degree-3
    discipline of hexagonal QCCD proposals, where junctions are cheaper
    Y-junctions.  Each connection crosses one junction (``junctions=1``).

    ``cols`` must be at least 2 when ``rows > 1`` so the brick-wall stays
    connected (a single column would only link every other row pair).
    """
    if rows < 1 or cols < 1:
        raise DeviceError("hex dimensions must be positive")
    if rows * cols < 2:
        raise DeviceError("a hex device needs at least two traps")
    if rows > 1 and cols < 2:
        raise DeviceError("a multi-row hex device needs at least two columns")
    capacities = trap_capacities(rows * cols, capacity)

    def trap_id(r: int, c: int) -> int:
        return r * cols + c

    traps = [
        Trap(trap_id(r, c), capacities[trap_id(r, c)], name=f"H({r},{c})")
        for r in range(rows)
        for c in range(cols)
    ]
    connections: list[Connection] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connections.append(
                    Connection(trap_id(r, c), trap_id(r, c + 1), junctions=1, segments=2)
                )
            if r + 1 < rows and (r + c) % 2 == 0:
                connections.append(
                    Connection(trap_id(r, c), trap_id(r + 1, c), junctions=1, segments=2)
                )
    return QCCDDevice(traps, connections, name=name or f"H-{rows}x{cols}")


def star_device(
    num_traps: int, capacity: "int | Sequence[int]", name: str | None = None
) -> QCCDDevice:
    """Build an S-series device: ``num_traps`` traps around a switching hub.

    The hub itself stores no ions; it is modelled as one junction on the
    direct path between every pair of traps, so any trap reaches any
    other in a single shuttle that crosses one junction.
    """
    if num_traps < 2:
        raise DeviceError("a star device needs at least two traps")
    capacities = trap_capacities(num_traps, capacity)
    traps = [Trap(i, capacities[i], name=f"S{i}") for i in range(num_traps)]
    connections = [
        Connection(a, b, junctions=1, segments=2)
        for a in range(num_traps)
        for b in range(a + 1, num_traps)
    ]
    return QCCDDevice(traps, connections, name=name or f"S-{num_traps}")


def build_topology(kind: str, capacity: "int | Sequence[int]", **kwargs: int) -> QCCDDevice:
    """Dispatch on a topology family name.

    ``kind`` is one of ``"linear"``, ``"ring"``, ``"grid"``, ``"hex"``
    or ``"star"`` (plus single-letter aliases).
    """
    kind = kind.lower()
    if kind in {"linear", "l"}:
        return linear_device(kwargs.get("num_traps", 4), capacity)
    if kind in {"grid", "g"}:
        return grid_device(kwargs.get("rows", 2), kwargs.get("cols", 2), capacity)
    if kind in {"hex", "h", "honeycomb"}:
        return hex_device(kwargs.get("rows", 2), kwargs.get("cols", 2), capacity)
    if kind in {"star", "s", "full"}:
        return star_device(kwargs.get("num_traps", 4), capacity)
    if kind in {"ring", "r", "racetrack"}:
        return ring_device(kwargs.get("num_traps", 4), capacity)
    raise DeviceError(f"unknown topology kind {kind!r}")
