"""Topology factories: linear (L-series), grid (G-series), star/fully-connected (S-series).

Figure 7 of the paper evaluates three architectural families inspired by
Quantinuum's roadmap:

* **L-n** — ``n`` traps in a line ("H2"-like racetrack unrolled); adjacent
  traps are connected by a straight shuttle segment with no junction.
* **G-RxC** — an R-by-C grid of traps ("SOL"/"APOLLO"-like); neighbouring
  traps are connected through one X-junction each.
* **S-n** — ``n`` traps around a central switching hub ("HELIOS"-like
  fully-connected variant); every pair of traps is reachable through the
  hub, modelled as a direct connection crossing one junction.

Capacities default to the paper's per-preset values (see
:mod:`repro.hardware.presets`) but every factory takes an explicit
``capacity`` so the Fig. 11 capacity sweeps can be reproduced.
"""

from __future__ import annotations

from repro.exceptions import DeviceError
from repro.hardware.device import QCCDDevice
from repro.hardware.trap import Connection, Trap


def linear_device(num_traps: int, capacity: int, name: str | None = None) -> QCCDDevice:
    """Build an L-series device: ``num_traps`` traps in a line.

    Adjacent traps share a junction-free straight shuttle path.
    """
    if num_traps < 1:
        raise DeviceError("a linear device needs at least one trap")
    if capacity < 1:
        raise DeviceError("trap capacity must be positive")
    traps = [Trap(i, capacity, name=f"L{i}") for i in range(num_traps)]
    connections = [Connection(i, i + 1, junctions=0, segments=1) for i in range(num_traps - 1)]
    return QCCDDevice(traps, connections, name=name or f"L-{num_traps}")


def ring_device(num_traps: int, capacity: int, name: str | None = None) -> QCCDDevice:
    """Build a ring ("racetrack") device: a linear device with wrap-around."""
    if num_traps < 3:
        raise DeviceError("a ring device needs at least three traps")
    if capacity < 1:
        raise DeviceError("trap capacity must be positive")
    traps = [Trap(i, capacity, name=f"R{i}") for i in range(num_traps)]
    connections = [Connection(i, (i + 1) % num_traps, junctions=0, segments=1) for i in range(num_traps)]
    return QCCDDevice(traps, connections, name=name or f"R-{num_traps}")


def grid_device(rows: int, cols: int, capacity: int, name: str | None = None) -> QCCDDevice:
    """Build a G-series device: an ``rows x cols`` grid of traps.

    Each nearest-neighbour pair of traps is connected through a single
    X-junction (``junctions=1``), following the paper's weight example
    where a one-junction path has weight 2.
    """
    if rows < 1 or cols < 1:
        raise DeviceError("grid dimensions must be positive")
    if rows * cols < 2:
        raise DeviceError("a grid device needs at least two traps")
    if capacity < 1:
        raise DeviceError("trap capacity must be positive")

    def trap_id(r: int, c: int) -> int:
        return r * cols + c

    traps = [
        Trap(trap_id(r, c), capacity, name=f"G({r},{c})") for r in range(rows) for c in range(cols)
    ]
    connections: list[Connection] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connections.append(
                    Connection(trap_id(r, c), trap_id(r, c + 1), junctions=1, segments=2)
                )
            if r + 1 < rows:
                connections.append(
                    Connection(trap_id(r, c), trap_id(r + 1, c), junctions=1, segments=2)
                )
    return QCCDDevice(traps, connections, name=name or f"G-{rows}x{cols}")


def star_device(num_traps: int, capacity: int, name: str | None = None) -> QCCDDevice:
    """Build an S-series device: ``num_traps`` traps around a switching hub.

    The hub itself stores no ions; it is modelled as one junction on the
    direct path between every pair of traps, so any trap reaches any
    other in a single shuttle that crosses one junction.
    """
    if num_traps < 2:
        raise DeviceError("a star device needs at least two traps")
    if capacity < 1:
        raise DeviceError("trap capacity must be positive")
    traps = [Trap(i, capacity, name=f"S{i}") for i in range(num_traps)]
    connections = [
        Connection(a, b, junctions=1, segments=2)
        for a in range(num_traps)
        for b in range(a + 1, num_traps)
    ]
    return QCCDDevice(traps, connections, name=name or f"S-{num_traps}")


def build_topology(kind: str, capacity: int, **kwargs: int) -> QCCDDevice:
    """Dispatch on a topology family name (``"linear"``, ``"grid"``, ``"star"``, ``"ring"``)."""
    kind = kind.lower()
    if kind in {"linear", "l"}:
        return linear_device(kwargs.get("num_traps", 4), capacity)
    if kind in {"grid", "g"}:
        return grid_device(kwargs.get("rows", 2), kwargs.get("cols", 2), capacity)
    if kind in {"star", "s", "full"}:
        return star_device(kwargs.get("num_traps", 4), capacity)
    if kind in {"ring", "r", "racetrack"}:
        return ring_device(kwargs.get("num_traps", 4), capacity)
    raise DeviceError(f"unknown topology kind {kind!r}")
