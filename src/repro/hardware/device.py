"""The QCCD device model: traps, connections and trap-level routing.

:class:`QCCDDevice` is the static hardware description the compiler works
against.  Besides holding the traps and shuttle paths it precomputes the
all-pairs trap-level shortest paths under the paper's shuttle weights
(``junctions + 1`` per hop), which both the heuristic cost function and
the baselines use constantly.

The all-pairs results are flattened into dense matrices at construction
time — a distance matrix plus first-hop (:meth:`next_hop`) and last-hop
(:meth:`penultimate_hop`) matrices derived from the *same* Dijkstra run
— so the scheduler's innermost loops (the heuristic's ``pair_distance``
and the stall force-route) are plain list indexing instead of graph
queries and path-list copies.  Because the hop matrices are read off the
stored shortest paths, routing decisions are bit-for-bit identical to
walking the full paths.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence

import networkx as nx

from repro.exceptions import DeviceError
from repro.hardware.trap import Connection, Trap


class QCCDDevice:
    """A static QCCD hardware description.

    Parameters
    ----------
    traps:
        The device's traps; trap ids must be the integers
        ``0..len(traps)-1`` (in any order).
    connections:
        Shuttle paths between traps.  The trap-level connectivity graph
        must be connected, otherwise some two-qubit gates could never be
        executed.
    name:
        Human-readable topology name (``"G-2x3"``...).
    junction_weight:
        Additional graph weight per junction crossed on a connection
        (paper §4 uses 1.0: a path through ``j`` junctions weighs
        ``j + 1``).
    """

    def __init__(
        self,
        traps: Sequence[Trap],
        connections: Iterable[Connection],
        name: str = "qccd",
        junction_weight: float = 1.0,
    ) -> None:
        if not traps:
            raise DeviceError("a device needs at least one trap")
        self._traps: dict[int, Trap] = {}
        for trap in traps:
            if trap.trap_id in self._traps:
                raise DeviceError(f"duplicate trap id {trap.trap_id}")
            self._traps[trap.trap_id] = trap
        expected_ids = set(range(len(self._traps)))
        if set(self._traps) != expected_ids:
            raise DeviceError("trap ids must be exactly 0..num_traps-1")

        self.name = name
        self.junction_weight = float(junction_weight)
        self._connections: list[Connection] = []
        self._graph: nx.Graph = nx.Graph()
        self._graph.add_nodes_from(self._traps)
        for connection in connections:
            if connection.trap_a not in self._traps or connection.trap_b not in self._traps:
                raise DeviceError(f"connection {connection} references an unknown trap")
            if self._graph.has_edge(connection.trap_a, connection.trap_b):
                raise DeviceError(
                    f"duplicate connection between traps {connection.trap_a} and {connection.trap_b}"
                )
            self._connections.append(connection)
            self._graph.add_edge(
                connection.trap_a,
                connection.trap_b,
                connection=connection,
                weight=connection.shuttle_weight(self.junction_weight),
            )
        if len(self._traps) > 1 and not nx.is_connected(self._graph):
            raise DeviceError("the trap connectivity graph must be connected")

        distances: dict[int, dict[int, float]] = dict(
            nx.all_pairs_dijkstra_path_length(self._graph, weight="weight")
        )
        self._paths: dict[int, dict[int, list[int]]] = dict(
            nx.all_pairs_dijkstra_path(self._graph, weight="weight")
        )
        # Dense all-pairs matrices for the hot paths.  The hop matrices
        # are read off the stored shortest paths (path[1] / path[-2]), so
        # they agree with trap_path() on every tie-break; -1 marks the
        # diagonal (no hop needed).
        n = len(self._traps)
        self._distance_matrix: list[list[float]] = [
            [distances[a][b] for b in range(n)] for a in range(n)
        ]
        self._next_hop: list[list[int]] = [
            [self._paths[a][b][1] if a != b else -1 for b in range(n)] for a in range(n)
        ]
        self._penultimate_hop: list[list[int]] = [
            [self._paths[a][b][-2] if a != b else -1 for b in range(n)] for a in range(n)
        ]
        # Sorted adjacency, precomputed once: neighbors() sits inside the
        # candidate generator and the force-route BFS.
        self._neighbor_lists: list[tuple[int, ...]] = [
            tuple(sorted(self._graph.neighbors(trap_id))) for trap_id in range(n)
        ]
        # Dense direct-connection lookup (None off-edges): the candidate
        # generator and the shuttle emitter read connections per
        # candidate, and a list indexing beats a networkx edge lookup.
        self._connection_matrix: list[list[Connection | None]] = [
            [None] * n for _ in range(n)
        ]
        for connection in self._connections:
            self._connection_matrix[connection.trap_a][connection.trap_b] = connection
            self._connection_matrix[connection.trap_b][connection.trap_a] = connection
        # Flattened routing tables (built lazily by flat_routing_tables).
        self._flat_tables: "tuple[array, array, array] | None" = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def traps(self) -> tuple[Trap, ...]:
        """All traps ordered by id."""
        return tuple(self._traps[i] for i in sorted(self._traps))

    @property
    def num_traps(self) -> int:
        """Number of traps in the device."""
        return len(self._traps)

    @property
    def connections(self) -> tuple[Connection, ...]:
        """All inter-trap shuttle paths."""
        return tuple(self._connections)

    @property
    def total_capacity(self) -> int:
        """Total number of ion slots across all traps."""
        return sum(trap.capacity for trap in self._traps.values())

    @property
    def trap_graph(self) -> nx.Graph:
        """The trap-level connectivity graph (a copy; mutations are safe)."""
        return self._graph.copy()

    def trap(self, trap_id: int) -> Trap:
        """Return the trap with the given id."""
        try:
            return self._traps[trap_id]
        except KeyError as exc:
            raise DeviceError(f"unknown trap id {trap_id}") from exc

    def capacity(self, trap_id: int) -> int:
        """Capacity of one trap."""
        return self.trap(trap_id).capacity

    def neighbors(self, trap_id: int) -> list[int]:
        """Traps directly connected to ``trap_id``, in ascending id order."""
        self.trap(trap_id)
        return list(self._neighbor_lists[trap_id])

    def connection_between(self, trap_a: int, trap_b: int) -> Connection:
        """The direct connection between two traps (raises if absent)."""
        connection = None
        if 0 <= trap_a < len(self._connection_matrix) and 0 <= trap_b < len(self._connection_matrix):
            connection = self._connection_matrix[trap_a][trap_b]
        if connection is None:
            raise DeviceError(f"traps {trap_a} and {trap_b} are not directly connected")
        return connection

    @property
    def connection_matrix(self) -> "list[list[Connection | None]]":
        """The live dense direct-connection table (do not mutate)."""
        return self._connection_matrix

    def are_connected(self, trap_a: int, trap_b: int) -> bool:
        """True when the two traps share a direct shuttle path."""
        return self._graph.has_edge(trap_a, trap_b)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def trap_distance(self, trap_a: int, trap_b: int) -> float:
        """Shortest-path shuttle weight between two traps (0 if equal)."""
        self.trap(trap_a)
        self.trap(trap_b)
        return self._distance_matrix[trap_a][trap_b]

    def trap_path(self, trap_a: int, trap_b: int) -> list[int]:
        """Trap ids along the cheapest shuttle route, endpoints included."""
        self.trap(trap_a)
        self.trap(trap_b)
        return list(self._paths[trap_a][trap_b])

    def next_hop(self, trap_a: int, trap_b: int) -> int:
        """First trap after ``trap_a`` on the cheapest route to ``trap_b``.

        Equivalent to ``trap_path(trap_a, trap_b)[1]`` without building
        the path list; raises :class:`DeviceError` when the traps are
        equal (there is no hop to take).
        """
        self.trap(trap_a)
        self.trap(trap_b)
        hop = self._next_hop[trap_a][trap_b]
        if hop < 0:
            raise DeviceError(f"trap {trap_a} routes to itself; there is no next hop")
        return hop

    def penultimate_hop(self, trap_a: int, trap_b: int) -> int:
        """Last trap before ``trap_b`` on the cheapest route from ``trap_a``.

        Equivalent to ``trap_path(trap_a, trap_b)[-2]`` without building
        the path list.
        """
        self.trap(trap_a)
        self.trap(trap_b)
        hop = self._penultimate_hop[trap_a][trap_b]
        if hop < 0:
            raise DeviceError(f"trap {trap_a} routes to itself; there is no penultimate hop")
        return hop

    @property
    def distance_matrix(self) -> list[list[float]]:
        """The all-pairs shuttle-weight matrix (a copy; mutations are safe)."""
        return [row[:] for row in self._distance_matrix]

    @property
    def routing_tables(self) -> tuple[list[list[float]], list[list[int]], list[list[int]]]:
        """The live (distance, next-hop, penultimate-hop) matrices.

        Shared references handed to the scheduler's innermost loops so a
        pair score is three list indexings — callers must not mutate
        them (use :attr:`distance_matrix` for a safe copy).
        """
        return self._distance_matrix, self._next_hop, self._penultimate_hop

    @property
    def flat_routing_tables(self) -> "tuple[array, array, array]":
        """Row-major flattened ``(distance, next-hop, penultimate-hop)`` arrays.

        The flat scheduler backend indexes ``table[trap_a * num_traps +
        trap_b]`` on contiguous :class:`array.array` buffers instead of
        nested lists.  The arrays are built once on first access and the
        same objects are returned on every subsequent call (zero-copy);
        the float values are the exact entries of
        :attr:`routing_tables`, so trap distances agree bit-for-bit
        across backends.  Callers must not mutate them.
        """
        tables = self._flat_tables
        if tables is None:
            n = len(self._traps)
            indices = range(n)
            distances = array(
                "d", (self._distance_matrix[a][b] for a in indices for b in indices)
            )
            next_hops = array("i", (self._next_hop[a][b] for a in indices for b in indices))
            penultimate_hops = array(
                "i", (self._penultimate_hop[a][b] for a in indices for b in indices)
            )
            self._flat_tables = tables = (distances, next_hops, penultimate_hops)
        return tables

    def path_connections(self, trap_a: int, trap_b: int) -> list[Connection]:
        """Connections traversed along the cheapest route between two traps."""
        path = self.trap_path(trap_a, trap_b)
        return [self.connection_between(u, v) for u, v in zip(path, path[1:])]

    def path_junctions(self, trap_a: int, trap_b: int) -> int:
        """Total junction crossings along the cheapest route."""
        return sum(c.junctions for c in self.path_connections(trap_a, trap_b))

    def path_segments(self, trap_a: int, trap_b: int) -> int:
        """Total straight segments traversed along the cheapest route."""
        return sum(c.segments for c in self.path_connections(trap_a, trap_b))

    def max_trap_distance(self) -> float:
        """Diameter of the trap graph under shuttle weights."""
        return max(max(row) for row in self._distance_matrix)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def with_capacity(self, capacity: int) -> "QCCDDevice":
        """Return a copy of this device with every trap capacity replaced."""
        traps = [Trap(t.trap_id, capacity, t.name) for t in self.traps]
        return QCCDDevice(traps, self._connections, name=self.name, junction_weight=self.junction_weight)

    def __repr__(self) -> str:
        return (
            f"QCCDDevice(name={self.name!r}, traps={self.num_traps}, "
            f"capacity={self.total_capacity}, connections={len(self._connections)})"
        )
