"""QCCD hardware model: traps, devices, topologies, presets, slot graph."""

from repro.hardware.device import QCCDDevice
from repro.hardware.graph import GraphWeights, SlotGraph
from repro.hardware.presets import (
    PAPER_PRESETS,
    DevicePreset,
    device_for_circuit,
    paper_device,
    paper_device_catalog,
    paper_preset,
    preset_names,
)
from repro.hardware.topologies import (
    build_topology,
    grid_device,
    hex_device,
    linear_device,
    ring_device,
    star_device,
    trap_capacities,
)
from repro.hardware.trap import Connection, JunctionCrossing, Trap

__all__ = [
    "Connection",
    "DevicePreset",
    "GraphWeights",
    "JunctionCrossing",
    "PAPER_PRESETS",
    "QCCDDevice",
    "SlotGraph",
    "Trap",
    "build_topology",
    "device_for_circuit",
    "grid_device",
    "hex_device",
    "linear_device",
    "paper_device",
    "paper_device_catalog",
    "paper_preset",
    "preset_names",
    "ring_device",
    "star_device",
    "trap_capacities",
]
