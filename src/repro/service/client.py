"""A thin stdlib client for the compilation service.

:class:`ServiceClient` wraps the HTTP API in Python calls returning the
parsed JSON payloads; :meth:`ServiceClient.stream_results` exposes the
chunked JSON-lines endpoint as a generator, yielding each result object
the moment the service flushes it.  Error responses raise the typed
:class:`~repro.exceptions.ServiceError` with the HTTP status and the
structured error payload attached.

The transport **keeps connections alive**: requests run over a small
pool of persistent :class:`http.client.HTTPConnection` objects instead
of one ``urllib`` socket per call, so a loadgen worker (or a fleet
router proxying thousands of submissions) pays TCP setup once per
connection, not once per request.  A response that is read to the end
returns its connection to the pool; a request that fails on a *reused*
connection is retried once on a fresh socket — the server may simply
have closed an idle keep-alive connection between calls.  The pool is
thread-safe: concurrent threads draw distinct connections.

Used by the test suite, ``examples/service_client.py`` and CI's service
smoke step; applications embedding the service in-process can skip HTTP
entirely and talk to :class:`~repro.service.app.CompilationService`.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.exceptions import ServiceError

#: Idle connections kept per client beyond which extras are closed.
MAX_IDLE_CONNECTIONS = 8

#: Transport failures that mark a pooled connection stale (the server
#: closed its side) rather than the service unreachable.
_STALE_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


class _PooledResponse:
    """One HTTP response tied to its pooled connection.

    Mimics the slice of the ``urllib`` response API the client (and its
    callers) use: ``read``, line iteration, ``close`` and the context
    manager.  Closing after the body was fully consumed returns the
    connection to the owner's idle pool; closing early (an abandoned
    stream) discards the connection — the unread body would poison the
    next request on that socket.
    """

    def __init__(
        self,
        owner: "ServiceClient",
        connection: http.client.HTTPConnection,
        response: http.client.HTTPResponse,
    ) -> None:
        self._owner = owner
        self._connection = connection
        self.raw = response
        self.status = response.status
        self.headers = response.headers

    def read(self, amt: "int | None" = None) -> bytes:
        return self.raw.read(amt)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.raw)

    def close(self) -> None:
        connection, self._connection = self._connection, None
        if connection is None:
            return
        if self.raw.isclosed() and not self.raw.will_close:
            self._owner._release(connection)
        else:
            connection.close()

    def __enter__(self) -> "_PooledResponse":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServiceClient:
    """Talks to one service at ``base_url`` (e.g. ``http://127.0.0.1:8000``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("", "http"):
            raise ServiceError(f"the service client speaks plain http, got {base_url!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._base_path = parsed.path.rstrip("/")
        self._pool_lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        #: Fresh TCP connections opened (reuse delta shows in loadgen).
        self.connections_opened = 0

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------
    def _acquire(self) -> "tuple[http.client.HTTPConnection, bool]":
        """An idle pooled connection, or a fresh one; ``(conn, reused)``."""
        with self._pool_lock:
            if self._idle:
                return self._idle.pop(), True
        self.connections_opened += 1
        return (
            http.client.HTTPConnection(self._host, self._port, timeout=self.timeout),
            False,
        )

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            if len(self._idle) < MAX_IDLE_CONNECTIONS:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        """Close every idle pooled connection (idempotent)."""
        with self._pool_lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _open(
        self, method: str, path: str, body: bytes | None = None
    ) -> _PooledResponse:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        last_error: "Exception | None" = None
        for attempt in range(2):
            connection, reused = self._acquire()
            try:
                connection.request(
                    method, self._base_path + path, body=body, headers=headers
                )
                response = connection.getresponse()
            except _STALE_ERRORS as exc:
                connection.close()
                last_error = exc
                if reused:
                    # The server closed this idle keep-alive socket under
                    # us; the request never ran — retry it on a fresh
                    # connection (safe even for POST).
                    continue
                raise ServiceError(
                    f"cannot reach {self.base_url}: {exc}"
                ) from exc
            except OSError as exc:
                connection.close()
                raise ServiceError(
                    f"cannot reach {self.base_url}: "
                    f"{getattr(exc, 'strerror', None) or exc}"
                ) from exc
            if response.status >= 400:
                raw = response.read()  # drains: the connection stays reusable
                if response.will_close:
                    connection.close()
                else:
                    self._release(connection)
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    payload = {}
                error = payload.get("error", {}) if isinstance(payload, dict) else {}
                message = error.get("message") or f"{response.status} {response.reason}"
                raise ServiceError(message, status=response.status, payload=payload)
            return _PooledResponse(self, connection, response)
        raise ServiceError(
            f"cannot reach {self.base_url}: {last_error}"
        ) from last_error  # pragma: no cover - both attempts were stale reuses

    def _json(self, method: str, path: str, body: bytes | None = None) -> Any:
        with self._open(method, path, body) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        manifest: "Mapping | Sequence | str | bytes",
        priority: int | None = None,
    ) -> dict[str, Any]:
        """POST a manifest (dict/list, or raw JSON text) to ``/v1/jobs``.

        ``priority`` orders the job in the scheduler queue (larger runs
        earlier; default 0).  Returns the submission receipt: ``job_id``,
        ``status``, ``resubmitted`` and the results path.
        """
        if isinstance(manifest, bytes):
            body = manifest
        elif isinstance(manifest, str):
            body = manifest.encode("utf-8")
        else:
            body = json.dumps(manifest).encode("utf-8")
        path = "/v1/jobs"
        if priority is not None:
            path += f"?priority={int(priority)}"
        return self._json("POST", path, body)

    def submit_file(
        self, path: "Path | str", priority: int | None = None
    ) -> dict[str, Any]:
        """Submit a JSON manifest file from disk."""
        return self.submit(Path(path).read_bytes(), priority=priority)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cancel a queued or running job.

        Queued jobs land in ``cancelled`` immediately; running jobs stop
        cooperatively at their next outcome boundary.  Raises
        :class:`ServiceError` with status 409 when the job already
        finished, 404 when the id is unknown.
        """
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def stream_results(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield result lines for a job as the service flushes them.

        Each yielded object is either an ``outcome`` (one per compile
        job, in job order) or the terminal ``end`` object.  ``timeout``
        is forwarded to the server, bounding how long the stream may
        stay open overall.
        """
        path = f"/v1/jobs/{job_id}/results"
        if timeout is not None:
            path += f"?timeout={timeout}"
        with self._open("GET", path) as response:
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def results(self, job_id: str, timeout: float | None = None) -> list[dict[str, Any]]:
        """Collect every outcome of a job, blocking until it finishes.

        Raises :class:`ServiceError` when the job failed server-side
        (the error payload carries the failure detail).
        """
        outcomes: list[dict[str, Any]] = []
        for line in self.stream_results(job_id, timeout=timeout):
            if line.get("type") == "outcome":
                outcomes.append(line)
            elif line.get("type") == "end" and line.get("status") == "failed":
                error = line.get("error") or {}
                raise ServiceError(
                    f"job {job_id} failed: {error.get('message', 'unknown error')}",
                    payload=line,
                )
        return outcomes

    def records(self, job_id: str, timeout: float | None = None) -> list[dict[str, Any]]:
        """Just the deterministic result records, in job order."""
        return [outcome["record"] for outcome in self.results(job_id, timeout=timeout)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> dict[str, Any]:
        """One job's status payload (404 raises :class:`ServiceError`)."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self, offset: int = 0, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Status payloads of submitted jobs, oldest first (one page)."""
        return self.jobs_page(offset=offset, limit=limit)["jobs"]

    def jobs_page(
        self, offset: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        """The full paginated listing: ``jobs``, ``total``, ``offset``,
        ``count`` — for walking a long job table page by page."""
        path = f"/v1/jobs?offset={int(offset)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self._json("GET", path)

    def schedule(self, compile_fingerprint: str) -> dict[str, Any]:
        """The cached compilation stored under a compile fingerprint."""
        return self._json("GET", f"/v1/schedules/{compile_fingerprint}")

    def compilers(self) -> list[dict[str, Any]]:
        """The registry listing (name, aliases, passes, description)."""
        return self._json("GET", "/v1/compilers")["compilers"]

    def health(self) -> dict[str, Any]:
        """The health payload (status, version, job counts, cache stats)."""
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /v1/metrics``.

        Returned as text because that *is* the interchange format; feed
        it to :func:`repro.obs.parse_exposition` for structured access
        (``repro jobs --metrics`` does exactly that).
        """
        with self._open("GET", "/v1/metrics") as response:
            return response.read().decode("utf-8")
