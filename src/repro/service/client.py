"""A thin stdlib client for the compilation service.

:class:`ServiceClient` wraps the HTTP API in Python calls returning the
parsed JSON payloads; :meth:`ServiceClient.stream_results` exposes the
chunked JSON-lines endpoint as a generator, yielding each result object
the moment the service flushes it.  Error responses raise the typed
:class:`~repro.exceptions.ServiceError` with the HTTP status and the
structured error payload attached.

Used by the test suite, ``examples/service_client.py`` and CI's service
smoke step; applications embedding the service in-process can skip HTTP
entirely and talk to :class:`~repro.service.app.CompilationService`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.exceptions import ServiceError


class ServiceClient:
    """Talks to one service at ``base_url`` (e.g. ``http://127.0.0.1:8000``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, body: bytes | None = None):
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {}
            error = payload.get("error", {}) if isinstance(payload, dict) else {}
            message = error.get("message") or f"{exc.code} {exc.reason}"
            raise ServiceError(message, status=exc.code, payload=payload) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc.reason}") from exc

    def _json(self, method: str, path: str, body: bytes | None = None) -> Any:
        with self._open(method, path, body) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        manifest: "Mapping | Sequence | str | bytes",
        priority: int | None = None,
    ) -> dict[str, Any]:
        """POST a manifest (dict/list, or raw JSON text) to ``/v1/jobs``.

        ``priority`` orders the job in the scheduler queue (larger runs
        earlier; default 0).  Returns the submission receipt: ``job_id``,
        ``status``, ``resubmitted`` and the results path.
        """
        if isinstance(manifest, bytes):
            body = manifest
        elif isinstance(manifest, str):
            body = manifest.encode("utf-8")
        else:
            body = json.dumps(manifest).encode("utf-8")
        path = "/v1/jobs"
        if priority is not None:
            path += f"?priority={int(priority)}"
        return self._json("POST", path, body)

    def submit_file(
        self, path: "Path | str", priority: int | None = None
    ) -> dict[str, Any]:
        """Submit a JSON manifest file from disk."""
        return self.submit(Path(path).read_bytes(), priority=priority)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cancel a queued or running job.

        Queued jobs land in ``cancelled`` immediately; running jobs stop
        cooperatively at their next outcome boundary.  Raises
        :class:`ServiceError` with status 409 when the job already
        finished, 404 when the id is unknown.
        """
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def stream_results(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield result lines for a job as the service flushes them.

        Each yielded object is either an ``outcome`` (one per compile
        job, in job order) or the terminal ``end`` object.  ``timeout``
        is forwarded to the server, bounding how long the stream may
        stay open overall.
        """
        path = f"/v1/jobs/{job_id}/results"
        if timeout is not None:
            path += f"?timeout={timeout}"
        with self._open("GET", path) as response:
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def results(self, job_id: str, timeout: float | None = None) -> list[dict[str, Any]]:
        """Collect every outcome of a job, blocking until it finishes.

        Raises :class:`ServiceError` when the job failed server-side
        (the error payload carries the failure detail).
        """
        outcomes: list[dict[str, Any]] = []
        for line in self.stream_results(job_id, timeout=timeout):
            if line.get("type") == "outcome":
                outcomes.append(line)
            elif line.get("type") == "end" and line.get("status") == "failed":
                error = line.get("error") or {}
                raise ServiceError(
                    f"job {job_id} failed: {error.get('message', 'unknown error')}",
                    payload=line,
                )
        return outcomes

    def records(self, job_id: str, timeout: float | None = None) -> list[dict[str, Any]]:
        """Just the deterministic result records, in job order."""
        return [outcome["record"] for outcome in self.results(job_id, timeout=timeout)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> dict[str, Any]:
        """One job's status payload (404 raises :class:`ServiceError`)."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self, offset: int = 0, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Status payloads of submitted jobs, oldest first (one page)."""
        return self.jobs_page(offset=offset, limit=limit)["jobs"]

    def jobs_page(
        self, offset: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        """The full paginated listing: ``jobs``, ``total``, ``offset``,
        ``count`` — for walking a long job table page by page."""
        path = f"/v1/jobs?offset={int(offset)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self._json("GET", path)

    def schedule(self, compile_fingerprint: str) -> dict[str, Any]:
        """The cached compilation stored under a compile fingerprint."""
        return self._json("GET", f"/v1/schedules/{compile_fingerprint}")

    def compilers(self) -> list[dict[str, Any]]:
        """The registry listing (name, aliases, passes, description)."""
        return self._json("GET", "/v1/compilers")["compilers"]

    def health(self) -> dict[str, Any]:
        """The health payload (status, version, job counts, cache stats)."""
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /v1/metrics``.

        Returned as text because that *is* the interchange format; feed
        it to :func:`repro.obs.parse_exposition` for structured access
        (``repro jobs --metrics`` does exactly that).
        """
        with self._open("GET", "/v1/metrics") as response:
            return response.read().decode("utf-8")
