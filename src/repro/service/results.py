"""Durable, content-addressed storage of streamed job results.

The service streams each job's results as pre-encoded JSON lines
(:meth:`ServiceJob.add_outcome` builds every outcome line exactly once).
:class:`ResultStore` makes that stream **durable**: the same bytes are
appended to ``<job_id>.part`` as they land, and when the job completes
the terminal ``end`` line is appended and the file atomically renamed to
``<job_id>.results``.  After a restart, ``GET /v1/jobs/<id>/results``
for a finished job replays the stored file verbatim — byte-identical to
the original stream, with **zero** recompilation — and any node holding
the file can serve it.

Files are keyed by the job's fingerprint-derived id, so the store is
content-addressed the same way the schedule cache is: a byte-identical
resubmission maps to the same file.

Eviction follows the schedule cache's ``max_disk_bytes`` discipline:
after each finalisation, least-recently-used ``.results`` files (by
mtime — replays refresh it) are deleted until the store fits its
budget.  Only **finalised** files are candidates: an actively-streaming
job's ``.part`` file is never considered, so GC cannot yank a stream
out from under a writer.  Stale ``.part`` files from a previous process
are removed at startup — their jobs are resubmitted from the journal
anyway.

Failed and cancelled jobs are *abandoned*, not stored: their ids are
retryable, so keeping a partial stream would shadow the retry's fresh
results.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError

__all__ = ["ResultStore", "ResultWriter"]

#: Suffix of a finalised (complete, servable) result file.
RESULT_SUFFIX = ".results"

#: Suffix of an in-flight stream (never served, never evicted).
PART_SUFFIX = ".part"


class ResultWriter:
    """Append-as-they-stream writer for one job's result lines.

    Owned by a :class:`ResultStore`; not constructed directly.  Appends
    are flushed per line, so the ``.part`` file always holds every line
    already streamed to clients — a crash loses at most the not-yet-
    terminal tail, and the journal resubmits such jobs anyway.
    """

    def __init__(self, store: "ResultStore", job_id: str) -> None:
        self._store = store
        self.job_id = job_id
        self.path = store.directory / f"{job_id}{PART_SUFFIX}"
        self._file: "Any | None" = open(self.path, "wb")
        self._lock = threading.Lock()
        self.lines_written = 0

    def append(self, line: bytes) -> None:
        """Persist one encoded result line (with its newline)."""
        with self._lock:
            if self._file is None:  # finished/abandoned already
                return
            self._file.write(line + b"\n")
            self._file.flush()
            self.lines_written += 1
            self._store._bytes_written += len(line) + 1

    def finish(self, end_line: bytes) -> "Path | None":
        """Append the terminal line and promote ``.part`` → ``.results``."""
        with self._lock:
            if self._file is None:
                return None
            self._file.write(end_line + b"\n")
            self._file.flush()
            self._file.close()
            self._file = None
            self._store._bytes_written += len(end_line) + 1
        final = self.path.with_suffix(RESULT_SUFFIX)
        self.path.replace(final)
        return final

    def abandon(self) -> None:
        """Close and delete the partial file (failed/cancelled jobs)."""
        with self._lock:
            if self._file is None:
                return
            self._file.close()
            self._file = None
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


class ResultStore:
    """Content-addressed result files under one directory, with LRU GC.

    Parameters
    ----------
    directory:
        Where the ``<job_id>.results`` files live (created if missing).
    max_disk_bytes:
        Byte budget over the **finalised** files; ``None`` leaves the
        store unbounded.  In-flight ``.part`` files never count and are
        never evicted.
    """

    def __init__(
        self, directory: "Path | str", max_disk_bytes: "int | None" = None
    ) -> None:
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ReproError("the result-store byte budget must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_disk_bytes = max_disk_bytes
        self._lock = threading.Lock()
        self._writers: dict[str, ResultWriter] = {}
        # Counters mirrored into metrics by the scrape-time collector.
        self._bytes_written = 0
        self.stores = 0
        self.evictions = 0
        self.replays = 0
        self.abandoned = 0
        # A previous process's in-flight streams are unfinishable.
        for stale in self.directory.glob(f"*{PART_SUFFIX}"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # ------------------------------------------------------------------
    # writer lifecycle (scheduler side)
    # ------------------------------------------------------------------
    def open_writer(self, job_id: str) -> ResultWriter:
        """Start (or restart, truncating) the stream file for a job."""
        writer = ResultWriter(self, job_id)
        with self._lock:
            previous = self._writers.get(job_id)
            self._writers[job_id] = writer
        if previous is not None:  # a retry superseded the old attempt
            previous.abandon()
        return writer

    def finalize(self, job_id: str, end_line: bytes) -> None:
        """Seal a finished job's stream and enforce the byte budget."""
        with self._lock:
            writer = self._writers.pop(job_id, None)
        if writer is None:
            return
        final = writer.finish(end_line)
        if final is None:
            return
        self.stores += 1
        if self.max_disk_bytes is not None:
            evicted = self._enforce_budget(keep=final)
            if evicted:
                with self._lock:
                    self.evictions += evicted

    def abandon(self, job_id: str) -> None:
        """Drop the partial stream of a failed/cancelled job."""
        with self._lock:
            writer = self._writers.pop(job_id, None)
        if writer is not None:
            writer.abandon()
            self.abandoned += 1

    def close(self) -> None:
        """Abandon every still-open writer (service shutdown)."""
        with self._lock:
            writers = list(self._writers.values())
            self._writers.clear()
        for writer in writers:
            writer.abandon()

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def result_path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}{RESULT_SUFFIX}"

    def load(self, job_id: str) -> "list[bytes] | None":
        """The stored stream as its original lines, or ``None``.

        Refreshes the file's mtime, so replays count as uses under the
        LRU budget (a frequently re-fetched job outlives a colder one).
        The returned lines include the terminal ``end`` line and carry
        no trailing newlines — exactly what the streaming transport
        appends per line.
        """
        path = self.result_path(job_id)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if not raw.endswith(b"\n"):  # torn finalisation; unservable
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - raced with eviction
            pass
        with self._lock:
            self.replays += 1
        return raw[:-1].split(b"\n")

    def entries(self) -> int:
        """How many finalised result files the store holds."""
        return len(list(self.directory.glob(f"*{RESULT_SUFFIX}")))

    def disk_bytes(self) -> int:
        """Total size of the finalised result files."""
        total = 0
        for path in self.directory.glob(f"*{RESULT_SUFFIX}"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                continue
        return total

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def bind_metrics(self, registry: "Any") -> None:
        """Register a scrape-time collector for the store's counters."""
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> "list[Any]":
        from repro.obs.metrics import Counter, Gauge

        events = Counter(
            "repro_result_store_events_total",
            "Result-store lifecycle events, by kind.",
            ("kind",),
        )
        events.labels(kind="store").inc(self.stores)
        events.labels(kind="replay").inc(self.replays)
        events.labels(kind="eviction").inc(self.evictions)
        events.labels(kind="abandon").inc(self.abandoned)
        written = Counter(
            "repro_result_store_bytes_written_total",
            "Result-line bytes appended to the store (including .part).",
        )
        written.inc(self._bytes_written)
        files = Gauge(
            "repro_result_store_entries", "Finalised result files on disk."
        )
        files.set(self.entries())
        size = Gauge(
            "repro_result_store_disk_bytes", "Bytes used by finalised result files."
        )
        size.set(self.disk_bytes())
        return [events, written, files, size]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _enforce_budget(self, keep: Path) -> int:
        """Delete LRU ``.results`` files until the budget fits.

        Mirrors :meth:`ScheduleCache._enforce_disk_budget`: mtime-ordered,
        the just-finalised file exempt, ``.part`` files invisible.
        """
        assert self.max_disk_bytes is not None
        candidates: list[tuple[float, int, Path]] = []
        total = 0
        deleted = 0
        for path in self.directory.glob(f"*{RESULT_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total += stat.st_size
            if path != keep:
                candidates.append((stat.st_mtime, stat.st_size, path))
        if total <= self.max_disk_bytes:
            return 0
        candidates.sort()
        for _, size, path in candidates:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            deleted += 1
            if total <= self.max_disk_bytes:
                break
        return deleted
